"""Pure-Python DSA (Digital Signature Algorithm).

The paper's prototype signed agent states with DSA using 512-bit keys
from the pure-Java IAIK-JCE library.  This module is the analogous
substrate for the reproduction: a from-scratch DSA implementation
(key generation, signing, verification) over :mod:`hashlib` digests.

Two kinds of domain parameters are supported:

* **Pre-generated parameters** for 512-bit and 1024-bit moduli
  (:data:`PARAMETERS_512`, :data:`PARAMETERS_1024`).  These are the
  defaults used by the library and the benchmarks, mirroring the
  paper's "DSA using a key length of 512 bits" configuration without
  paying prime-generation cost at import time.
* **Parameter generation** (:func:`generate_parameters`) for arbitrary
  sizes.  Tests exercise this with small toy sizes so the generation
  path stays correct without slowing down the suite.

Determinism: signatures use a deterministic per-message nonce derived
from the private key and the message digest (in the spirit of RFC 6979)
so that re-running an experiment with the same seed produces identical
byte-level protocol traffic.  This matters for reproducibility of the
benchmark harness and for property tests.

.. warning::
   This implementation is for simulation and research reproduction.  It
   has not been hardened against side channels and must not be used to
   protect real systems.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.backend import ModArith, get_backend
from repro.crypto.tablecache import TableCache, get_table_cache
from repro.exceptions import CryptoError

__all__ = [
    "DSAParameters",
    "DSAPrivateKey",
    "DSAPublicKey",
    "DSASignature",
    "RecoverableSignature",
    "FixedBaseTable",
    "PARAMETERS_512",
    "PARAMETERS_1024",
    "generate_parameters",
    "generate_keypair",
    "is_probable_prime",
    "batch_verify",
    "find_invalid",
]


# ---------------------------------------------------------------------------
# primality testing
# ---------------------------------------------------------------------------

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)


def is_probable_prime(candidate: int, rounds: int = 40,
                      rng: Optional[random.Random] = None) -> bool:
    """Miller-Rabin primality test.

    Parameters
    ----------
    candidate:
        The integer to test.
    rounds:
        Number of Miller-Rabin witnesses to try.  40 rounds give an
        error probability below 2**-80 for random candidates.
    rng:
        Optional random source for witness selection; defaults to a
        module-level deterministic generator so the library's behaviour
        is reproducible.
    """
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate % prime == 0:
            return candidate == prime
    rng = rng or random.Random(0x5EED)
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        witness = rng.randrange(2, candidate - 1)
        x = pow(witness, d, candidate)
        if x == 1 or x == candidate - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


# ---------------------------------------------------------------------------
# fixed-base exponentiation
# ---------------------------------------------------------------------------


class FixedBaseTable:
    """Windowed precomputation for modular powers of one fixed base.

    DSA spends almost all of its time on three exponentiations whose
    *base* never changes: ``g^k`` when signing, ``g^u1`` and ``y^u2``
    when verifying.  For a fixed base the square-and-multiply ladder is
    wasteful — all the squarings recompute powers that can be tabulated
    once.  This table stores ``base^(j * 2^(w*i))`` for every window
    position ``i`` and window digit ``j``, so one exponentiation with an
    ``n``-bit exponent costs at most ``ceil(n / w)`` modular
    multiplications and **no squarings** (Brickell et al., Eurocrypt
    '92), versus roughly ``n`` squarings plus ``n/2`` multiplications
    for a cold ``pow()``.

    Tables are sized for exponents up to ``exponent_bits`` (the bit
    length of the subgroup order ``q`` for DSA); larger or negative
    exponents transparently fall back to a plain modular
    exponentiation, so the table is always a drop-in replacement.

    The arithmetic engine is pluggable (``backend``, defaulting to the
    process-wide :func:`~repro.crypto.backend.get_backend`), and the
    column build consults the persistent table cache when one is
    enabled (``cache="default"``; pass ``cache=False`` to force a local
    rebuild, or an explicit :class:`~repro.crypto.tablecache.TableCache`
    to target a specific directory).  Loaded or built, the columns are
    identical integers — the cache and the backend can change *when*
    work happens, never *what* the table computes.
    """

    __slots__ = ("base", "modulus", "window", "capacity_bits",
                 "_columns", "_backend")

    def __init__(self, base: int, modulus: int, exponent_bits: int,
                 window: int = 5, backend: Optional[ModArith] = None,
                 cache: object = "default") -> None:
        if modulus <= 1:
            raise CryptoError("fixed-base table needs a modulus > 1")
        if window < 1:
            raise CryptoError("fixed-base window must be positive")
        self.base = base % modulus
        self.modulus = modulus
        self.window = window
        num_windows = (max(1, exponent_bits) + window - 1) // window
        self.capacity_bits = num_windows * window
        engine = backend if backend is not None else get_backend()
        self._backend = engine
        table_cache = self._resolve_cache(cache)
        columns = None
        key = None
        if table_cache is not None:
            key = TableCache.entry_key(
                self.base, modulus, window, num_windows, engine.name
            )
            plain = table_cache.load(key)
            if plain is not None:
                columns = engine.prepare_columns(plain)
        if columns is None:
            columns = engine.build_table(
                self.base, modulus, window, num_windows
            )
            if table_cache is not None:
                table_cache.store(key, engine.export_columns(columns))
        self._columns = columns

    @staticmethod
    def _resolve_cache(cache: object) -> Optional[TableCache]:
        if cache == "default":
            return get_table_cache()
        if isinstance(cache, TableCache):
            return cache
        return None

    def pow(self, exponent: int) -> int:
        """``base ** exponent % modulus`` via table lookups."""
        if exponent < 0 or exponent.bit_length() > self.capacity_bits:
            return self._backend.modexp(self.base, exponent, self.modulus)
        return self._backend.table_pow(
            self._columns, self.window, exponent, self.modulus
        )


#: Individual verifications before a per-public-key table pays for
#: itself (building one costs roughly five exponentiations); one-shot
#: verifies stay on the built-in ``pow`` path.
_Y_TABLE_THRESHOLD = 3


# ---------------------------------------------------------------------------
# domain parameters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DSAParameters:
    """DSA domain parameters ``(p, q, g)``.

    ``p`` is the prime modulus, ``q`` the prime order of the subgroup
    (``q`` divides ``p - 1``), and ``g`` a generator of that subgroup.
    """

    p: int
    q: int
    g: int

    def validate(self) -> None:
        """Check structural soundness of the parameters.

        Raises
        ------
        CryptoError
            If ``q`` does not divide ``p - 1`` or ``g`` does not
            generate a subgroup of order ``q``.
        """
        if (self.p - 1) % self.q != 0:
            raise CryptoError("invalid DSA parameters: q does not divide p-1")
        if not (1 < self.g < self.p):
            raise CryptoError("invalid DSA parameters: generator out of range")
        if pow(self.g, self.q, self.p) != 1:
            raise CryptoError("invalid DSA parameters: g^q != 1 mod p")

    @property
    def key_bits(self) -> int:
        """Bit length of the modulus ``p`` (the advertised key size)."""
        return self.p.bit_length()

    def generator_table(self) -> FixedBaseTable:
        """Fixed-base table for ``g``, built lazily and cached.

        The table is shared by every signer and verifier using this
        parameter set (the generator is public, common knowledge), so
        process-wide its construction cost amortizes to nothing.
        """
        table = self.__dict__.get("_g_table")
        if table is None:
            table = FixedBaseTable(self.g, self.p, self.q.bit_length())
            object.__setattr__(self, "_g_table", table)
        return table

    def powg(self, exponent: int) -> int:
        """``g ** exponent % p`` through the cached fixed-base table."""
        return self.generator_table().pow(exponent)

    def __getstate__(self) -> dict:
        # Fixed-base tables are caches, not state: they are megabytes of
        # derived integers that every process can rebuild lazily, so
        # they must never ride along in pickles (shard specs cross the
        # process boundary with their FleetConfig-adjacent key material).
        return {"p": self.p, "q": self.q, "g": self.g}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    def to_canonical(self) -> dict:
        return {"p": self.p, "q": self.q, "g": self.g}


#: 512-bit parameters matching the paper's measurement configuration.
PARAMETERS_512 = DSAParameters(
    p=int(
        "8d3aed99711c21c9bdc14f1f295d6fbf430f801dfad409e2a319dcb4217d65a0"
        "c56811cd5563f61600e85ecd8e021522869b76116ae5fd8ca28d93886be51729",
        16,
    ),
    q=int("c7294739614ff3d719db3ad0ddd1dfb23b982ef9", 16),
    g=int(
        "88d9df0ac2ec8e41194ec25efe2d2400a19d7a6ae862e183fe5208d5ad2f2596"
        "b7a5253ecf7e35016f67501786308b9460f603b5b32addb2dd6ab258311619da",
        16,
    ),
)

#: Larger 1024-bit parameters, offered for overhead ablations.
PARAMETERS_1024 = DSAParameters(
    p=int(
        "a837f4186f27c1b9e3c6dedb9b792afa2a3d418da754a29ff143e5456e6b34b9"
        "07ef2ba8b45a6ab37b94a34de4aa786d9d17d218fc3b0de5981262ac5683ede0"
        "17d5b563fa60ede1e5eb772df11c0ac58c0b393a13335bc9bb635ff529310971"
        "601e0211e34f76b42b8c03be0e13b3fcf4be1677e71f56617631c58c32279639",
        16,
    ),
    q=int("c7294739614ff3d719db3ad0ddd1dfb23b982ef9", 16),
    g=int(
        "19f41e6ab4b1cfef5f6621e3e05fc512e97f2662b6c9041d44e842888d059833"
        "bd38264bf1dd7ea0e4b89ebe7e85beb1edca8bf930279a3f538fb4c26317c6a1"
        "d0beccb4970938ef66118ac21b9d8559e3a1205594518235f0fad854f2ff9bc0"
        "289cff0662fdfba9320026be02963bdc260b4470491f3642e1d063d8089d49f2",
        16,
    ),
)


def generate_parameters(modulus_bits: int = 512, subgroup_bits: int = 160,
                        seed: Optional[int] = None) -> DSAParameters:
    """Generate fresh DSA domain parameters.

    The search is seeded so that the same seed always yields the same
    parameters.  This function is exercised by the tests with small
    sizes; production callers should prefer the pre-generated
    :data:`PARAMETERS_512` / :data:`PARAMETERS_1024`.
    """
    if subgroup_bits >= modulus_bits:
        raise CryptoError("subgroup size must be smaller than modulus size")
    rng = random.Random(seed if seed is not None else 0xDA7A)
    while True:
        q = rng.getrandbits(subgroup_bits) | (1 << (subgroup_bits - 1)) | 1
        if not is_probable_prime(q, rng=rng):
            continue
        for _ in range(4096):
            m = rng.getrandbits(modulus_bits) | (1 << (modulus_bits - 1))
            p = m - (m % (2 * q)) + 1
            if p.bit_length() != modulus_bits:
                continue
            if is_probable_prime(p, rng=rng):
                h = 2
                while True:
                    g = pow(h, (p - 1) // q, p)
                    if g > 1:
                        params = DSAParameters(p=p, q=q, g=g)
                        params.validate()
                        return params
                    h += 1


# ---------------------------------------------------------------------------
# keys and signatures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DSASignature:
    """A DSA signature pair ``(r, s)``."""

    r: int
    s: int

    def to_canonical(self) -> dict:
        return {"r": self.r, "s": self.s}

    @classmethod
    def from_canonical(cls, data: dict) -> "DSASignature":
        return cls(r=int(data["r"]), s=int(data["s"]))


@dataclass(frozen=True)
class RecoverableSignature:
    """A DSA signature extended with the full nonce commitment.

    ``commitment`` is the whole group element ``R = g^k mod p`` whose
    reduction ``R mod q`` is the classic ``r`` component.  Standard DSA
    discards ``R``, which is exactly what makes DSA signatures
    impossible to verify in bulk (the outer ``mod q`` destroys the
    group structure).  Keeping ``R`` enables the small-exponent batch
    test of :func:`batch_verify` (Naccache et al., Eurocrypt '94) at
    the cost of one extra group element per signature.

    A recoverable signature always embeds a valid plain signature;
    :meth:`to_signature` downgrades to it losslessly.
    """

    r: int
    s: int
    commitment: int

    def to_signature(self) -> DSASignature:
        """Drop the commitment, yielding the classic ``(r, s)`` pair."""
        return DSASignature(r=self.r, s=self.s)

    def to_canonical(self) -> dict:
        return {"r": self.r, "s": self.s, "commitment": self.commitment}

    @classmethod
    def from_canonical(cls, data: dict) -> "RecoverableSignature":
        return cls(
            r=int(data["r"]), s=int(data["s"]),
            commitment=int(data["commitment"]),
        )


@dataclass(frozen=True)
class DSAPublicKey:
    """A DSA public key ``y = g^x mod p`` with its domain parameters."""

    parameters: DSAParameters
    y: int

    def _y_power(self, exponent: int) -> int:
        """``y ** exponent % p``, table-accelerated after a few uses.

        The first :data:`_Y_TABLE_THRESHOLD` calls use the built-in
        ``pow`` (a one-shot verification should not pay for a table);
        sustained use — every fleet host key — flips to a cached
        :class:`FixedBaseTable`.
        """
        table = self.__dict__.get("_y_table")
        if table is None:
            uses = self.__dict__.get("_y_uses", 0) + 1
            if uses <= _Y_TABLE_THRESHOLD:
                object.__setattr__(self, "_y_uses", uses)
                return get_backend().modexp(
                    self.y, exponent, self.parameters.p
                )
            table = self.precompute()
        return table.pow(exponent)

    def precompute(self) -> FixedBaseTable:
        """Build (or return) the fixed-base table for ``y`` eagerly.

        Worker-pool initializers call this so shard execution starts
        with hot tables instead of paying the build inside the first
        measured verifications.
        """
        table = self.__dict__.get("_y_table")
        if table is None:
            table = FixedBaseTable(
                self.y, self.parameters.p, self.parameters.q.bit_length()
            )
            object.__setattr__(self, "_y_table", table)
        return table

    def __getstate__(self) -> dict:
        # Cached y-tables (and their use counter) are derived data —
        # see DSAParameters.__getstate__; pickles carry key material only.
        return {"parameters": self.parameters, "y": self.y}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    def verify(self, message: bytes, signature: DSASignature,
               hash_algorithm: str = "sha256") -> bool:
        """Verify ``signature`` over ``message``.

        Returns ``True`` when the signature is valid, ``False`` when it
        is structurally well-formed but does not verify.  Malformed
        signatures (values out of range) also return ``False`` rather
        than raising, because from the verifier's point of view they are
        simply invalid.
        """
        p, q = self.parameters.p, self.parameters.q
        r, s = signature.r, signature.s
        if not (0 < r < q and 0 < s < q):
            return False
        digest = _message_digest(message, q, hash_algorithm)
        try:
            w = get_backend().invert(s, q)
        except ValueError:  # pragma: no cover - s coprime to prime q always
            return False
        u1 = (digest * w) % q
        u2 = (r * w) % q
        v = ((self.parameters.powg(u1) * self._y_power(u2)) % p) % q
        return v == r

    def verify_recoverable(self, message: bytes,
                           signature: RecoverableSignature,
                           hash_algorithm: str = "sha256") -> bool:
        """Verify a commitment-carrying signature.

        Equivalent to :meth:`verify` on the embedded ``(r, s)`` pair,
        plus the structural check that the transmitted commitment
        really is the group element behind ``r`` — a forged commitment
        would otherwise let a batch pass signatures the plain verifier
        rejects.
        """
        p, q = self.parameters.p, self.parameters.q
        r, s, R = signature.r, signature.s, signature.commitment
        if not (0 < r < q and 0 < s < q and 1 < R < p):
            return False
        if R % q != r:
            return False
        digest = _message_digest(message, q, hash_algorithm)
        try:
            w = get_backend().invert(s, q)
        except ValueError:  # pragma: no cover - s coprime to prime q always
            return False
        u1 = (digest * w) % q
        u2 = (r * w) % q
        return (self.parameters.powg(u1) * self._y_power(u2)) % p == R

    def to_canonical(self) -> dict:
        return {"parameters": self.parameters.to_canonical(), "y": self.y}

    def fingerprint(self) -> str:
        """Short hex fingerprint of the public key, used as a key id."""
        material = ("%x:%x:%x:%x" % (
            self.parameters.p, self.parameters.q, self.parameters.g, self.y,
        )).encode("ascii")
        return hashlib.sha256(material).hexdigest()[:16]


@dataclass(frozen=True)
class DSAPrivateKey:
    """A DSA private key ``x`` with its public counterpart."""

    parameters: DSAParameters
    x: int
    public_key: DSAPublicKey

    def sign(self, message: bytes,
             hash_algorithm: str = "sha256") -> DSASignature:
        """Sign ``message`` and return the ``(r, s)`` signature.

        The per-message nonce ``k`` is derived deterministically from
        the private key and the message digest via HMAC, so signing is
        repeatable and never reuses a nonce across different messages.
        """
        r, s, _ = self._sign_core(message, hash_algorithm)
        return DSASignature(r=r, s=s)

    def sign_recoverable(self, message: bytes,
                         hash_algorithm: str = "sha256") -> RecoverableSignature:
        """Sign ``message`` keeping the full nonce commitment.

        Produces the same ``(r, s)`` pair as :meth:`sign` (the nonce
        derivation is shared), plus the group element ``R = g^k mod p``
        that :func:`batch_verify` needs.
        """
        r, s, commitment = self._sign_core(message, hash_algorithm)
        return RecoverableSignature(r=r, s=s, commitment=commitment)

    def _sign_core(self, message: bytes,
                   hash_algorithm: str) -> Tuple[int, int, int]:
        q = self.parameters.q
        digest = _message_digest(message, q, hash_algorithm)
        counter = 0
        while True:
            k = _deterministic_nonce(self.x, digest, q, counter)
            commitment = self.parameters.powg(k)
            r = commitment % q
            if r == 0:
                counter += 1
                continue
            k_inv = get_backend().invert(k, q)
            s = (k_inv * (digest + self.x * r)) % q
            if s == 0:
                counter += 1
                continue
            return r, s, commitment

    def to_canonical(self) -> dict:
        return {
            "parameters": self.parameters.to_canonical(),
            "x": self.x,
            "y": self.public_key.y,
        }


def _message_digest(message: bytes, q: int, hash_algorithm: str) -> int:
    """Hash a message and truncate the digest to the bit length of q."""
    hasher = hashlib.new(hash_algorithm)
    hasher.update(message)
    digest = int.from_bytes(hasher.digest(), "big")
    excess = digest.bit_length() - q.bit_length()
    if excess > 0:
        digest >>= excess
    return digest


def _deterministic_nonce(x: int, digest: int, q: int, counter: int) -> int:
    """Derive a deterministic nonce in ``[1, q-1]`` (RFC 6979 flavoured)."""
    qlen = (q.bit_length() + 7) // 8
    key = x.to_bytes((x.bit_length() + 7) // 8 or 1, "big")
    msg = digest.to_bytes((digest.bit_length() + 7) // 8 or 1, "big")
    attempt = 0
    while True:
        material = hmac.new(
            key,
            msg + counter.to_bytes(4, "big") + attempt.to_bytes(4, "big"),
            hashlib.sha256,
        ).digest()
        while len(material) < qlen:
            material += hmac.new(key, material, hashlib.sha256).digest()
        k = int.from_bytes(material[:qlen], "big") % q
        if k > 0:
            return k
        attempt += 1


def generate_keypair(parameters: DSAParameters = PARAMETERS_512,
                     seed: Optional[int] = None) -> Tuple[DSAPrivateKey, DSAPublicKey]:
    """Generate a DSA key pair for the given domain parameters.

    Parameters
    ----------
    parameters:
        Domain parameters to use; defaults to the paper-equivalent
        512-bit set.
    seed:
        Optional seed for deterministic key generation.  Hosts in the
        simulation derive their seed from their name so that a scenario
        is byte-for-byte reproducible.
    """
    rng = random.Random(seed if seed is not None else 0xC0FFEE)
    x = rng.randrange(1, parameters.q)
    y = parameters.powg(x)
    public = DSAPublicKey(parameters=parameters, y=y)
    private = DSAPrivateKey(parameters=parameters, x=x, public_key=public)
    return private, public


# ---------------------------------------------------------------------------
# batch verification
# ---------------------------------------------------------------------------

#: One unit of batch-verification work: who signed what.
BatchItem = Tuple[DSAPublicKey, bytes, RecoverableSignature]


def _invert_all(values: Sequence[int], q: int) -> List[int]:
    """Invert many nonzero residues mod prime ``q`` with one inversion.

    Montgomery's batch-inversion trick: one prefix-product sweep, a
    single :func:`pow`-based inversion of the total, and one backward
    sweep — three multiplications per value instead of one extended-gcd
    inversion each.  All values must be nonzero mod ``q`` (DSA's range
    checks guarantee this for signature components).  Delegates to the
    active arithmetic backend.
    """
    return get_backend().invert_all(values, q)


def _product_of_powers(bases: Sequence[int], exponents: Sequence[int],
                       modulus: int, exponent_bits: int) -> int:
    """``Π bases[i] ** exponents[i] mod modulus`` with shared squarings.

    Interleaved multi-exponentiation: one square-and-multiply ladder
    walks all exponents at once, so the ``exponent_bits`` squarings are
    paid **once for the whole product** instead of once per base, and
    each base contributes only its multiply steps (about half its
    exponent bits).  For the batch test's small exponents this beats
    per-item ``pow()`` several-fold — the commitment powers are the
    dominant per-item cost of a batch.  Delegates to the active
    arithmetic backend.
    """
    return get_backend().product_of_powers(
        bases, exponents, modulus, exponent_bits
    )


def batch_verify(items: Sequence[BatchItem],
                 rng: Optional[random.Random] = None,
                 security_bits: int = 32,
                 hash_algorithm: str = "sha256") -> bool:
    """Verify many recoverable signatures with one randomized batch test.

    The small-exponent test: draw random odd ``z_i`` of
    ``security_bits`` bits and accept iff ::

        g^(Σ u1_i·z_i)  ·  Π y^(Σ u2_i·z_i)  ==  Π R_i^(z_i)   (mod p)

    where the middle product groups items by public key, so verifying a
    stream of signatures from few distinct signers costs roughly *one*
    full-size exponentiation per signer plus one ``security_bits``-wide
    exponentiation per signature — instead of two full-size
    exponentiations per signature for individual verification.  An
    adversary who cannot predict the ``z_i`` slips a bad signature past
    the test with probability about ``2^-security_bits`` — which is why
    the default randomness source is :class:`random.SystemRandom`.
    Pass a seeded ``rng`` only when the caller needs reproducible runs
    and the signature stream is not adversarial (e.g. deterministic
    simulation); a predictable ``z`` sequence lets an attacker craft
    invalid signatures whose error terms cancel in the batch equation.

    All items must share domain parameters; mixed-parameter batches
    fall back to individual verification.  Structural checks (range,
    ``R mod q == r``) always run per item.  Returns ``True`` iff every
    signature in the batch is valid; use :func:`find_invalid` to
    identify culprits after a failed batch.
    """
    if not items:
        return True
    parameters = items[0][0].parameters
    if any(key.parameters != parameters for key, _, _ in items):
        return all(
            key.verify_recoverable(message, signature, hash_algorithm)
            for key, message, signature in items
        )
    p, q = parameters.p, parameters.q
    rng = rng or random.SystemRandom()

    checked = []
    for key, message, signature in items:
        r, s, commitment = signature.r, signature.s, signature.commitment
        if not (0 < r < q and 0 < s < q and 1 < commitment < p):
            return False
        if commitment % q != r:
            return False
        digest = _message_digest(message, q, hash_algorithm)
        z = rng.getrandbits(security_bits) | 1
        checked.append((key, digest, r, s, commitment, z))

    # One batched inversion replaces a per-item extended gcd.
    inverses = _invert_all([entry[3] for entry in checked], q)

    g_exponent = 0
    y_exponents: dict = {}
    key_for_y: dict = {}
    for (key, digest, r, _s, _commitment, z), w in zip(checked, inverses):
        g_exponent = (g_exponent + digest * w * z) % q
        y_exponents[key.y] = (y_exponents.get(key.y, 0) + r * w * z) % q
        key_for_y.setdefault(key.y, key)

    # Commitments are message-specific bases no table can help with,
    # but their exponents are only ``security_bits`` wide: one
    # interleaved ladder shares the squarings across the whole batch.
    rhs = _product_of_powers(
        [entry[4] for entry in checked],
        [entry[5] for entry in checked],
        p, security_bits,
    )

    lhs = parameters.powg(g_exponent)
    for y, exponent in y_exponents.items():
        lhs = lhs * key_for_y[y]._y_power(exponent) % p
    return lhs == rhs


def find_invalid(items: Sequence[BatchItem],
                 hash_algorithm: str = "sha256") -> List[int]:
    """Indices of the items that fail individual verification.

    The slow path after :func:`batch_verify` returned ``False``: each
    signature is checked on its own so the caller can attribute the
    failure (e.g. blame the host whose transfer signature is bad).
    """
    return [
        index for index, (key, message, signature) in enumerate(items)
        if not key.verify_recoverable(message, signature, hash_algorithm)
    ]

"""Signed envelopes: the wire format for authenticated reference data.

The paper's example mechanism requires several signing patterns:

* a host signs the *hash* of a resulting agent state,
* a host signs a whole message (the "plain" agents in Table 1 are
  "signed and verified as a whole"),
* an initial state is signed by **both** the checked host and the
  checking host ("initial states have to be signed by both the checking
  host and the checked host"), i.e. counter-signing,
* input elements may be signed by the party that produced them
  (Section 4.3 "possible extensions").

This module provides :class:`SignedEnvelope` (one signer) and
:class:`MultiSignedEnvelope` (several signers over the same payload),
plus a :class:`Signer` facade that binds an identity to a key store for
verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.crypto.canonical import canonical_encode
from repro.crypto.dsa import DSASignature, RecoverableSignature
from repro.crypto.hashing import StateDigest, hash_bytes
from repro.crypto.keys import Identity, KeyStore
from repro.exceptions import SignatureError

__all__ = [
    "SignedEnvelope",
    "RecoverableEnvelope",
    "MultiSignedEnvelope",
    "Signer",
]


@dataclass(frozen=True)
class SignedEnvelope:
    """A payload together with a single signer's signature.

    The signature is computed over the canonical encoding of
    ``payload``.  The payload itself travels in the clear — the
    mechanisms in the paper provide *integrity and attribution*, not
    confidentiality.
    """

    payload: Any
    signer: str
    signature: DSASignature

    def payload_digest(self) -> StateDigest:
        """Digest of the canonical payload (useful for logging)."""
        return hash_bytes(canonical_encode(self.payload))

    def to_canonical(self) -> dict:
        return {
            "payload": self.payload,
            "signer": self.signer,
            "signature": self.signature.to_canonical(),
        }

    def verify(self, keystore: KeyStore,
               message: Optional[bytes] = None) -> bool:
        """Verify the signature against the signer's registered key.

        ``message`` lets a caller that already holds the canonical
        encoding of the payload (e.g. the migration path, which encodes
        the transfer once for the wire) skip re-encoding it here.
        """
        public_key = keystore.maybe_get(self.signer)
        if public_key is None:
            return False
        if message is None:
            message = canonical_encode(self.payload)
        return public_key.verify(message, self.signature)

    def verify_or_raise(self, keystore: KeyStore) -> None:
        """Verify and raise :class:`SignatureError` on failure."""
        if not self.verify(keystore):
            raise SignatureError(
                "signature by %r over payload %s does not verify"
                % (self.signer, self.payload_digest())
            )


@dataclass(frozen=True)
class RecoverableEnvelope:
    """A payload signed with a commitment-carrying DSA signature.

    Same trust semantics as :class:`SignedEnvelope`, but the signature
    keeps the full nonce commitment so many envelopes can be verified
    together via :func:`repro.crypto.dsa.batch_verify` (see
    :class:`repro.crypto.batch.BatchVerifier`).  :meth:`to_envelope`
    downgrades to a plain envelope for consumers that do not batch.
    """

    payload: Any
    signer: str
    signature: RecoverableSignature

    def message(self) -> bytes:
        """The canonical byte string the signature covers.

        Memoized on the instance: the batch path needs these bytes at
        enqueue time and the signer already computed them at signing
        time, so the envelope carries them along (outside the dataclass
        fields and outside pickles — see ``__getstate__``).
        """
        cached = self.__dict__.get("_message_cache")
        if cached is None:
            cached = canonical_encode(self.payload)
            object.__setattr__(self, "_message_cache", cached)
        return cached

    def __getstate__(self) -> dict:
        return {
            "payload": self.payload,
            "signer": self.signer,
            "signature": self.signature,
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    def to_envelope(self) -> SignedEnvelope:
        """Drop the commitment, yielding a plain signed envelope."""
        return SignedEnvelope(
            payload=self.payload,
            signer=self.signer,
            signature=self.signature.to_signature(),
        )

    def to_canonical(self) -> dict:
        return {
            "payload": self.payload,
            "signer": self.signer,
            "signature": self.signature.to_canonical(),
        }

    def verify(self, keystore: KeyStore) -> bool:
        """Verify individually (commitment consistency included)."""
        public_key = keystore.maybe_get(self.signer)
        if public_key is None:
            return False
        return public_key.verify_recoverable(self.message(), self.signature)


@dataclass
class MultiSignedEnvelope:
    """A payload counter-signed by several principals.

    Used for the dual commitment on initial states in the example
    protocol: the sending (checked) host and the receiving (checking)
    host both sign the same initial state so that neither can later
    claim a different state was handed over.
    """

    payload: Any
    signatures: Dict[str, DSASignature] = field(default_factory=dict)

    def add_signature(self, identity: Identity) -> None:
        """Append ``identity``'s signature over the payload."""
        message = canonical_encode(self.payload)
        self.signatures[identity.name] = identity.private_key.sign(message)

    def signers(self) -> Tuple[str, ...]:
        """Names of all principals that have signed, sorted."""
        return tuple(sorted(self.signatures))

    def verify_all(self, keystore: KeyStore) -> bool:
        """Return whether every attached signature verifies."""
        if not self.signatures:
            return False
        message = canonical_encode(self.payload)
        for signer, signature in self.signatures.items():
            public_key = keystore.maybe_get(signer)
            if public_key is None or not public_key.verify(message, signature):
                return False
        return True

    def verify_signer(self, signer: str, keystore: KeyStore) -> bool:
        """Return whether a specific principal's signature verifies."""
        signature = self.signatures.get(signer)
        if signature is None:
            return False
        public_key = keystore.maybe_get(signer)
        if public_key is None:
            return False
        return public_key.verify(canonical_encode(self.payload), signature)

    def require_signers(self, required: Tuple[str, ...], keystore: KeyStore) -> None:
        """Raise unless all of ``required`` have valid signatures."""
        for signer in required:
            if not self.verify_signer(signer, keystore):
                raise SignatureError(
                    "required counter-signature by %r is missing or invalid"
                    % signer
                )

    def to_canonical(self) -> dict:
        return {
            "payload": self.payload,
            "signatures": {
                name: sig.to_canonical() for name, sig in self.signatures.items()
            },
        }


class Signer:
    """Facade binding an :class:`Identity` to a :class:`KeyStore`.

    Hosts and owners use a :class:`Signer` to produce envelopes and to
    verify envelopes produced by others, without passing the keystore
    around every call site.
    """

    def __init__(self, identity: Identity, keystore: KeyStore) -> None:
        self._identity = identity
        self._keystore = keystore

    @property
    def name(self) -> str:
        """The signing principal's name."""
        return self._identity.name

    @property
    def keystore(self) -> KeyStore:
        """The key store used for verification."""
        return self._keystore

    def sign(self, payload: Any,
             message: Optional[bytes] = None) -> SignedEnvelope:
        """Sign ``payload`` and return a single-signer envelope.

        ``message`` optionally supplies the precomputed canonical
        encoding of ``payload`` (callers that also ship the payload over
        the wire encode it exactly once).
        """
        if message is None:
            message = canonical_encode(payload)
        signature = self._identity.private_key.sign(message)
        return SignedEnvelope(
            payload=payload, signer=self._identity.name, signature=signature
        )

    def sign_recoverable(self, payload: Any,
                         message: Optional[bytes] = None) -> RecoverableEnvelope:
        """Sign ``payload`` keeping the nonce commitment for batching."""
        if message is None:
            message = canonical_encode(payload)
        signature = self._identity.private_key.sign_recoverable(message)
        envelope = RecoverableEnvelope(
            payload=payload, signer=self._identity.name, signature=signature
        )
        object.__setattr__(envelope, "_message_cache", message)
        return envelope

    def counter_sign(self, envelope: MultiSignedEnvelope) -> MultiSignedEnvelope:
        """Add this principal's signature to an existing multi-envelope."""
        envelope.add_signature(self._identity)
        return envelope

    def start_multi_signature(self, payload: Any) -> MultiSignedEnvelope:
        """Create a multi-signer envelope with this principal's signature."""
        envelope = MultiSignedEnvelope(payload=payload)
        envelope.add_signature(self._identity)
        return envelope

    def verify(self, envelope: SignedEnvelope,
               expected_signer: Optional[str] = None,
               message: Optional[bytes] = None) -> bool:
        """Verify an envelope, optionally pinning the expected signer."""
        if expected_signer is not None and envelope.signer != expected_signer:
            return False
        return envelope.verify(self._keystore, message=message)

    def verify_or_raise(self, envelope: SignedEnvelope,
                        expected_signer: Optional[str] = None) -> None:
        """Verify an envelope, raising :class:`SignatureError` on failure."""
        if expected_signer is not None and envelope.signer != expected_signer:
            raise SignatureError(
                "expected envelope signed by %r, got %r"
                % (expected_signer, envelope.signer)
            )
        envelope.verify_or_raise(self._keystore)

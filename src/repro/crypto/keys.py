"""Key pairs, identities, and key stores.

Every principal in the simulation (hosts, agent owners, trusted third
parties, input-producing shops) owns a DSA key pair and is known to the
others by name.  The :class:`KeyStore` plays the role of the public-key
infrastructure directory the paper implicitly assumes: verifiers look up
the public key of the host that claims to have signed a state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.crypto.dsa import (
    DSAParameters,
    DSAPrivateKey,
    DSAPublicKey,
    PARAMETERS_512,
    generate_keypair,
)
from repro.exceptions import KeyError_

__all__ = ["Identity", "KeyStore", "derive_seed"]


#: Process-wide memo of deterministically generated identities, keyed by
#: ``(name, p, q, g)``.  Bounded FIFO so unbounded name streams (property
#: tests) cannot grow it without limit.
_IDENTITY_CACHE: Dict[Tuple[str, int, int, int], "Identity"] = {}
_IDENTITY_CACHE_MAX = 8192


def derive_seed(name: str) -> int:
    """Derive a deterministic integer seed from a principal name.

    Identical scenario definitions then yield identical keys, which in
    turn makes protocol transcripts reproducible across runs.
    """
    import hashlib

    return int.from_bytes(hashlib.sha256(name.encode("utf-8")).digest()[:8], "big")


@dataclass(frozen=True)
class Identity:
    """A named principal with a DSA key pair.

    Attributes
    ----------
    name:
        Globally unique principal name (host address, owner name, ...).
    private_key:
        The principal's private signing key.  Only the principal itself
        holds an :class:`Identity`; everyone else sees just the
        public key through the :class:`KeyStore`.
    """

    name: str
    private_key: DSAPrivateKey

    @property
    def public_key(self) -> DSAPublicKey:
        """The public counterpart of the private key."""
        return self.private_key.public_key

    @property
    def fingerprint(self) -> str:
        """Stable identifier for the public key."""
        return self.public_key.fingerprint()

    @classmethod
    def generate(cls, name: str,
                 parameters: DSAParameters = PARAMETERS_512) -> "Identity":
        """Create an identity with a key pair derived from ``name``.

        Generation is a pure function of ``(name, parameters)`` — the
        key-derivation seed comes from the name alone — so results are
        memoized process-wide.  Every fleet (and every harness section)
        that rebuilds the same topology therefore reuses one key pair
        per host instead of re-running key generation, and reuses that
        key's cached fixed-base tables with it.
        """
        cache_key = (name, parameters.p, parameters.q, parameters.g)
        identity = _IDENTITY_CACHE.get(cache_key)
        if identity is None:
            private, _public = generate_keypair(parameters, seed=derive_seed(name))
            identity = cls(name=name, private_key=private)
            if len(_IDENTITY_CACHE) >= _IDENTITY_CACHE_MAX:
                _IDENTITY_CACHE.pop(next(iter(_IDENTITY_CACHE)))
            _IDENTITY_CACHE[cache_key] = identity
        return identity


class KeyStore:
    """Directory mapping principal names to public keys.

    The key store models the PKI assumption of the paper: "the mechanism
    uses digital signatures ... to authenticate the data a host
    produces" presumes every checker can resolve a host name to a
    trusted public key.  In the simulation this is a plain in-memory
    registry shared (by reference or by copy) between hosts.
    """

    def __init__(self) -> None:
        self._public_keys: Dict[str, DSAPublicKey] = {}

    def register(self, name: str, public_key: DSAPublicKey) -> None:
        """Register (or re-register) a principal's public key."""
        self._public_keys[name] = public_key

    def register_identity(self, identity: Identity) -> None:
        """Register the public half of an :class:`Identity`."""
        self.register(identity.name, identity.public_key)

    def get(self, name: str) -> DSAPublicKey:
        """Return the public key registered for ``name``.

        Raises
        ------
        KeyError_
            If the principal is unknown.
        """
        try:
            return self._public_keys[name]
        except KeyError as exc:
            raise KeyError_("no public key registered for %r" % name) from exc

    def maybe_get(self, name: str) -> Optional[DSAPublicKey]:
        """Return the public key for ``name`` or ``None`` if unknown."""
        return self._public_keys.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._public_keys

    def __len__(self) -> int:
        return len(self._public_keys)

    def __iter__(self) -> Iterator[Tuple[str, DSAPublicKey]]:
        return iter(self._public_keys.items())

    def names(self) -> Tuple[str, ...]:
        """Return the registered principal names, sorted."""
        return tuple(sorted(self._public_keys))

    def copy(self) -> "KeyStore":
        """Return a shallow copy of the key store.

        Used when handing a snapshot of the PKI to an agent so that a
        malicious host mutating its own view does not silently change
        what honest verifiers see.
        """
        clone = KeyStore()
        clone._public_keys.update(self._public_keys)
        return clone


@dataclass
class IdentityRing:
    """A collection of identities owned by a single process.

    Convenience container for simulation setups that create many
    principals at once (e.g. the benchmark harness creating three hosts
    and an owner).
    """

    parameters: DSAParameters = PARAMETERS_512
    _identities: Dict[str, Identity] = field(default_factory=dict)

    def create(self, name: str) -> Identity:
        """Create and remember an identity for ``name``."""
        if name in self._identities:
            return self._identities[name]
        identity = Identity.generate(name, parameters=self.parameters)
        self._identities[name] = identity
        return identity

    def get(self, name: str) -> Identity:
        """Return a previously created identity."""
        try:
            return self._identities[name]
        except KeyError as exc:
            raise KeyError_("no identity created for %r" % name) from exc

    def export_keystore(self) -> KeyStore:
        """Build a :class:`KeyStore` holding all public keys in the ring."""
        store = KeyStore()
        for identity in self._identities.values():
            store.register_identity(identity)
        return store

    def __contains__(self, name: str) -> bool:
        return name in self._identities

    def __len__(self) -> int:
        return len(self._identities)


__all__.append("IdentityRing")

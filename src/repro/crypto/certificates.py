"""Minimal certificate authority and trust anchors.

The paper assumes agent owners can authenticate hosts and hosts can
authenticate each other ("the mechanism uses digital signatures and
secure hash algorithms to authenticate the data a host produces").  In a
real deployment that assumption is discharged by a PKI.  This module
provides a deliberately small certificate model so that scenarios can
exercise trust decisions (trusted vs. untrusted hosts, revoked hosts,
unknown hosts) without pulling in a full X.509 stack.

A :class:`Certificate` binds a principal name to a DSA public key and a
role, signed by a :class:`CertificateAuthority`.  The
:class:`TrustAnchorSet` validates certificate chains of depth one (CA →
principal) which is all the scenarios need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.crypto.canonical import canonical_encode
from repro.crypto.dsa import DSAPublicKey, DSASignature
from repro.crypto.keys import Identity, KeyStore
from repro.exceptions import CertificateError

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "TrustAnchorSet",
    "ROLE_HOST",
    "ROLE_OWNER",
    "ROLE_TTP",
    "ROLE_INPUT_PROVIDER",
]

#: Certificate role for agent platforms (hosts / places).
ROLE_HOST = "host"
#: Certificate role for agent owners (home hosts).
ROLE_OWNER = "owner"
#: Certificate role for trusted third parties (Section 4.3 extensions).
ROLE_TTP = "trusted-third-party"
#: Certificate role for parties that produce signed input (Section 4.3).
ROLE_INPUT_PROVIDER = "input-provider"

_VALID_ROLES = frozenset({ROLE_HOST, ROLE_OWNER, ROLE_TTP, ROLE_INPUT_PROVIDER})


@dataclass(frozen=True)
class Certificate:
    """A statement "``issuer`` vouches that ``subject`` owns ``public_key``".

    ``serial`` orders certificates from one issuer; revocation is by
    serial number.
    """

    subject: str
    role: str
    public_key: DSAPublicKey
    issuer: str
    serial: int
    signature: DSASignature

    def tbs(self) -> dict:
        """The to-be-signed portion of the certificate."""
        return {
            "subject": self.subject,
            "role": self.role,
            "public_key": self.public_key.to_canonical(),
            "issuer": self.issuer,
            "serial": self.serial,
        }

    def to_canonical(self) -> dict:
        data = self.tbs()
        data["signature"] = self.signature.to_canonical()
        return data

    def verify(self, issuer_key: DSAPublicKey) -> bool:
        """Verify the issuer signature over the to-be-signed portion."""
        return issuer_key.verify(canonical_encode(self.tbs()), self.signature)


class CertificateAuthority:
    """Issues and revokes certificates for simulation principals."""

    def __init__(self, identity: Identity) -> None:
        self._identity = identity
        self._next_serial = 1
        self._issued: Dict[str, Certificate] = {}
        self._revoked_serials: set = set()

    @property
    def name(self) -> str:
        """Name of the CA principal."""
        return self._identity.name

    @property
    def public_key(self) -> DSAPublicKey:
        """Public key principals use to verify issued certificates."""
        return self._identity.public_key

    def issue(self, subject: str, role: str,
              public_key: DSAPublicKey) -> Certificate:
        """Issue a certificate binding ``subject`` to ``public_key``.

        Raises
        ------
        CertificateError
            If the role is unknown.
        """
        if role not in _VALID_ROLES:
            raise CertificateError("unknown certificate role %r" % role)
        serial = self._next_serial
        self._next_serial += 1
        tbs = {
            "subject": subject,
            "role": role,
            "public_key": public_key.to_canonical(),
            "issuer": self._identity.name,
            "serial": serial,
        }
        signature = self._identity.private_key.sign(canonical_encode(tbs))
        certificate = Certificate(
            subject=subject,
            role=role,
            public_key=public_key,
            issuer=self._identity.name,
            serial=serial,
            signature=signature,
        )
        self._issued[subject] = certificate
        return certificate

    def issue_for_identity(self, identity: Identity, role: str) -> Certificate:
        """Issue a certificate for an :class:`Identity`'s public key."""
        return self.issue(identity.name, role, identity.public_key)

    def revoke(self, certificate: Certificate) -> None:
        """Mark a previously issued certificate as revoked."""
        self._revoked_serials.add(certificate.serial)

    def is_revoked(self, certificate: Certificate) -> bool:
        """Return whether the CA has revoked ``certificate``."""
        return certificate.serial in self._revoked_serials

    def issued_for(self, subject: str) -> Optional[Certificate]:
        """Return the most recent certificate issued for ``subject``."""
        return self._issued.get(subject)


class TrustAnchorSet:
    """The verifier-side view: trusted CAs plus revocation knowledge.

    Hosts and owners hold a :class:`TrustAnchorSet` and use it to decide
    whether a certificate presented by a peer is acceptable.
    """

    def __init__(self) -> None:
        self._anchors: Dict[str, DSAPublicKey] = {}
        self._revoked: Dict[str, set] = {}

    def add_anchor(self, ca: CertificateAuthority) -> None:
        """Trust a certificate authority."""
        self._anchors[ca.name] = ca.public_key
        self._revoked.setdefault(ca.name, set())

    def add_anchor_key(self, name: str, public_key: DSAPublicKey) -> None:
        """Trust a CA known only by name and public key."""
        self._anchors[name] = public_key
        self._revoked.setdefault(name, set())

    def note_revocation(self, issuer: str, serial: int) -> None:
        """Record that ``issuer`` revoked certificate ``serial``."""
        self._revoked.setdefault(issuer, set()).add(serial)

    def validate(self, certificate: Certificate,
                 expected_role: Optional[str] = None) -> None:
        """Validate a certificate against the trust anchors.

        Raises
        ------
        CertificateError
            If the issuer is not trusted, the signature is invalid, the
            certificate is revoked, or the role does not match
            ``expected_role``.
        """
        issuer_key = self._anchors.get(certificate.issuer)
        if issuer_key is None:
            raise CertificateError(
                "certificate issuer %r is not a trust anchor" % certificate.issuer
            )
        if not certificate.verify(issuer_key):
            raise CertificateError(
                "certificate for %r has an invalid issuer signature"
                % certificate.subject
            )
        if certificate.serial in self._revoked.get(certificate.issuer, set()):
            raise CertificateError(
                "certificate for %r (serial %d) has been revoked"
                % (certificate.subject, certificate.serial)
            )
        if expected_role is not None and certificate.role != expected_role:
            raise CertificateError(
                "certificate for %r has role %r, expected %r"
                % (certificate.subject, certificate.role, expected_role)
            )

    def is_valid(self, certificate: Certificate,
                 expected_role: Optional[str] = None) -> bool:
        """Boolean wrapper around :meth:`validate`."""
        try:
            self.validate(certificate, expected_role=expected_role)
        except CertificateError:
            return False
        return True

    def build_keystore(self, certificates: Iterable[Certificate]) -> KeyStore:
        """Build a :class:`KeyStore` from validated certificates.

        Certificates that fail validation are skipped; this mirrors how
        a verifier would only ever import keys it can vouch for.
        """
        store = KeyStore()
        for certificate in certificates:
            if self.is_valid(certificate):
                store.register(certificate.subject, certificate.public_key)
        return store

    def anchors(self) -> Tuple[str, ...]:
        """Names of trusted certificate authorities."""
        return tuple(sorted(self._anchors))

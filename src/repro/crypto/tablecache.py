"""Persistent on-disk cache for fixed-base precomputation tables.

Every worker process the fleet spawns used to rebuild the same
:class:`~repro.crypto.dsa.FixedBaseTable` columns from scratch — the
generator table plus one table per warm host key, a few hundred modular
multiplications each, repaid per process, per run, forever.  The
columns are pure functions of ``(base, modulus, window, num_windows)``,
so a host-level cache pays the build exactly once and every subsequent
process (worker pools, the verification service, benchmark runs) loads
the integers back in microseconds.

Design constraints, in order:

* **Correctness over availability.**  A cache entry is trusted only if
  its payload hashes to the digest in its header; any mismatch, short
  read, bad magic, or unparsable header makes :meth:`TableCache.load`
  return ``None`` (and best-effort delete the bad file) so the caller
  silently recomputes.  A corrupt cache can cost time, never wrong
  arithmetic.
* **Concurrent writers are safe.**  Entries are written to a uniquely
  named temporary file in the cache directory and published with
  :func:`os.replace`, so readers observe either the old complete entry
  or the new complete entry, never a torn write.  Racing writers both
  produce identical bytes (the entry is deterministic), so last-writer-
  wins is harmless.
* **No pickle.**  Entries are a fixed-width big-endian integer array
  behind a small struct header.  Loading a cache file can allocate
  integers and nothing else — a poisoned cache directory cannot execute
  code.

The file name doubles as the key: a SHA-256 over the base, modulus,
window geometry, and backend id (the ISSUE keys entries per backend so
an engine with a different native layout can never be fed another
engine's file; today all backends share the plain-int export format,
which just means a fleet mixing backends stores each table twice).

Caching is **disabled by default** for library users — importing
:mod:`repro.crypto` must not touch the filesystem.  Entry points opt
in: worker-pool warmup, ``python -m repro.service``, and the bench
harness call :func:`enable_table_cache`; everyone else can opt in with
the ``REPRO_TABLE_CACHE`` environment variable (``0``/``off`` disables,
``1``/``on`` selects the default ``~/.cache/repro/tables``, anything
else is used as a directory path).
"""

from __future__ import annotations

import hashlib
import os
import struct
import threading
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "TableCache",
    "TABLE_CACHE_ENV_VAR",
    "default_cache_dir",
    "resolve_cache_setting",
    "get_table_cache",
    "set_table_cache",
    "enable_table_cache",
    "table_cache_info",
]

#: Environment variable controlling the process-wide cache:
#: ``0``/``off``/``false``/``no`` disable it, ``1``/``on``/``true``/
#: ``yes``/``default`` select :func:`default_cache_dir`, any other
#: value is taken as a directory path.
TABLE_CACHE_ENV_VAR = "REPRO_TABLE_CACHE"

_MAGIC = b"REPRO-TBL1\n"
#: window, bytes per value, number of columns, values per column.
_HEADER = struct.Struct(">HHII")
_DIGEST_BYTES = 32

_FALSEY = frozenset({"0", "off", "false", "no", "disabled"})
_TRUTHY = frozenset({"1", "on", "true", "yes", "default"})


def default_cache_dir() -> str:
    """The conventional per-user cache directory for table entries."""
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "tables"
    )


def resolve_cache_setting(value: Optional[str]) -> Optional[str]:
    """Map an env-var style setting to a cache directory (or ``None``)."""
    if value is None:
        return None
    stripped = value.strip()
    lowered = stripped.lower()
    if not stripped or lowered in _FALSEY:
        return None
    if lowered in _TRUTHY:
        return default_cache_dir()
    return stripped


class TableCache:
    """A directory of precomputed fixed-base tables, one file per key."""

    def __init__(self, directory: Union[str, os.PathLike]) -> None:
        self.directory = os.fspath(directory)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._errors = 0

    # -- keying -----------------------------------------------------------

    @staticmethod
    def entry_key(base: int, modulus: int, window: int, num_windows: int,
                  backend: str) -> str:
        """Content key for one table: parameters digest + backend id."""
        material = ("tbl1|%x|%x|%d|%d|%s" % (
            base, modulus, window, num_windows, backend,
        )).encode("ascii")
        return hashlib.sha256(material).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + ".tbl")

    # -- load / store -----------------------------------------------------

    def load(self, key: str) -> Optional[List[List[int]]]:
        """Return the cached columns for ``key``, or ``None``.

        Every failure mode — missing file, truncation, bad magic,
        header/payload mismatch, digest mismatch — counts as a miss
        (plus an error for anything other than a clean absence) and
        returns ``None``; corrupt files are deleted best-effort so the
        recomputed entry heals the cache.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            with self._lock:
                self._misses += 1
            return None
        columns = self._decode(blob)
        if columns is None:
            with self._lock:
                self._misses += 1
                self._errors += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        with self._lock:
            self._hits += 1
        return columns

    def store(self, key: str, columns: List[List[int]]) -> bool:
        """Atomically publish ``columns`` under ``key``.

        Returns ``True`` on success; any filesystem failure is recorded
        and swallowed — a read-only or full cache directory degrades to
        recomputation, never to an exception on the hot path.
        """
        blob = self._encode(columns)
        path = self._path(key)
        # Unique temp name per writer: concurrent stores never collide,
        # and os.replace publishes each complete file atomically.
        tmp = "%s.tmp.%d.%d.%s" % (
            path, os.getpid(), threading.get_ident(),
            os.urandom(4).hex(),
        )
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:
            with self._lock:
                self._errors += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        with self._lock:
            self._stores += 1
        return True

    # -- wire format ------------------------------------------------------

    @staticmethod
    def _encode(columns: List[List[int]]) -> bytes:
        num_columns = len(columns)
        column_size = len(columns[0]) if columns else 0
        width = 1
        for column in columns:
            for value in column:
                bits = value.bit_length()
                if bits > width * 8:
                    width = (bits + 7) // 8
        payload = bytearray()
        for column in columns:
            for value in column:
                payload += value.to_bytes(width, "big")
        header = _HEADER.pack(0, width, num_columns, column_size)
        digest = hashlib.sha256(bytes(payload)).digest()
        return _MAGIC + header + digest + bytes(payload)

    @staticmethod
    def _decode(blob: bytes) -> Optional[List[List[int]]]:
        prefix = len(_MAGIC) + _HEADER.size + _DIGEST_BYTES
        if len(blob) < prefix or not blob.startswith(_MAGIC):
            return None
        header = blob[len(_MAGIC):len(_MAGIC) + _HEADER.size]
        _reserved, width, num_columns, column_size = _HEADER.unpack(header)
        digest = blob[len(_MAGIC) + _HEADER.size:prefix]
        payload = blob[prefix:]
        if width < 1 or len(payload) != num_columns * column_size * width:
            return None
        if hashlib.sha256(payload).digest() != digest:
            return None
        columns: List[List[int]] = []
        offset = 0
        for _ in range(num_columns):
            column = []
            for _ in range(column_size):
                column.append(
                    int.from_bytes(payload[offset:offset + width], "big")
                )
                offset += width
            columns.append(column)
        return columns

    # -- reporting --------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "path": self.directory,
                "hits": self._hits,
                "misses": self._misses,
                "stores": self._stores,
                "errors": self._errors,
            }


# ---------------------------------------------------------------------------
# process-wide cache selection
# ---------------------------------------------------------------------------

_lock = threading.Lock()
_cache: Optional[TableCache] = None
_configured = False


def get_table_cache() -> Optional[TableCache]:
    """The process-wide cache, or ``None`` when caching is disabled.

    Resolved once from ``REPRO_TABLE_CACHE`` on first use; an unset
    variable leaves caching off (libraries must not write to the user's
    filesystem uninvited).
    """
    global _cache, _configured
    if not _configured:
        with _lock:
            if not _configured:
                directory = resolve_cache_setting(
                    os.environ.get(TABLE_CACHE_ENV_VAR)
                )
                _cache = TableCache(directory) if directory else None
                _configured = True
    return _cache


def set_table_cache(
    setting: Union[TableCache, str, os.PathLike, None]
) -> Optional[TableCache]:
    """Pin the process-wide cache explicitly; returns the new value.

    ``None`` (or ``False``) disables caching; a :class:`TableCache`
    instance is used as-is; a string/path selects that directory (env
    style values like ``"off"`` are honoured too).
    """
    global _cache, _configured
    with _lock:
        if setting is None or setting is False:
            _cache = None
        elif isinstance(setting, TableCache):
            _cache = setting
        else:
            directory = resolve_cache_setting(os.fspath(setting))
            _cache = TableCache(directory) if directory else None
        _configured = True
        return _cache


def enable_table_cache(
    directory: Union[TableCache, str, os.PathLike, None] = None
) -> Optional[TableCache]:
    """Turn persistent caching on, the way entry points should.

    Precedence: an explicit ``directory`` argument wins; otherwise a set
    ``REPRO_TABLE_CACHE`` is honoured (including an explicit *disable*);
    otherwise the default per-user directory is used.  Returns the
    active cache (``None`` when the environment disabled it).
    """
    if directory is not None:
        return set_table_cache(directory)
    env = os.environ.get(TABLE_CACHE_ENV_VAR)
    if env is not None:
        return set_table_cache(resolve_cache_setting(env))
    return set_table_cache(default_cache_dir())


def table_cache_info() -> Dict[str, Any]:
    """Report-friendly snapshot of the process-wide cache state."""
    cache = get_table_cache()
    if cache is None:
        return {"enabled": False, "path": None,
                "hits": 0, "misses": 0, "stores": 0, "errors": 0}
    info: Dict[str, Any] = {"enabled": True}
    info.update(cache.stats())
    return info

"""Batched and memoized signature verification.

Fleet-scale simulation turns signature verification into the dominant
cost: every migration is signed and verified as a whole, and every
protection-protocol commitment is verified again by the next host.
This module amortizes that cost two ways:

* :class:`BatchVerifier` queues commitment-carrying envelopes and
  settles many of them with one randomized batch equation
  (:func:`repro.crypto.dsa.batch_verify`), falling back to individual
  verification only to attribute failures;
* :class:`VerificationCache` memoizes verification outcomes by content,
  so re-verifying the same envelope (e.g. the owner re-checking
  commitments the journey already checked) is a dictionary lookup.

:class:`BatchedTransferVerifier` packages both behind the
``verify_transfer`` hook of
:class:`~repro.platform.registry.JourneyRunner`, deferring transfer
signature failures to flush time — the right trade for a discrete-event
fleet, where a bad transfer signature surfaces as a reported failure
rather than an exception on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random, SystemRandom
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.crypto.backend import get_backend
from repro.crypto.dsa import (
    DSAPublicKey,
    RecoverableSignature,
    batch_verify,
    find_invalid,
)
from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import KeyStore
from repro.crypto.signing import RecoverableEnvelope

__all__ = [
    "VerificationCache",
    "BatchReport",
    "BatchVerifier",
    "BatchedTransferVerifier",
]

#: Content key of one verification: (signer, message digest, r, s, R).
CacheKey = Tuple[str, bytes, int, int, int]


class VerificationCache:
    """Memoizes signature-verification outcomes by content.

    Signatures are deterministic functions of (signer, message), so an
    outcome observed once holds forever; the cache key is the signer
    name, the digest of the canonical message, and the full
    ``(r, s, commitment)`` triple — the commitment must participate,
    otherwise a forged commitment with a matching ``r`` would alias to
    a cached valid outcome (or a bogus one would poison the genuine
    signature).  A bounded FIFO eviction keeps memory flat on
    unbounded fleets.
    """

    def __init__(self, max_entries: int = 65536) -> None:
        self._entries: Dict[CacheKey, bool] = {}
        self._max_entries = max(1, int(max_entries))
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(signer: str, message: bytes,
            signature: RecoverableSignature) -> CacheKey:
        digest = hash_bytes(message).digest
        return (signer, digest, signature.r, signature.s,
                signature.commitment)

    def get(self, key: CacheKey) -> Optional[bool]:
        """Cached outcome for ``key``, or ``None`` when unknown."""
        outcome = self._entries.get(key)
        if outcome is None:
            self.misses += 1
        else:
            self.hits += 1
        return outcome

    def put(self, key: CacheKey, outcome: bool) -> None:
        """Record an outcome, evicting oldest entries beyond the cap."""
        if key not in self._entries and len(self._entries) >= self._max_entries:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = outcome

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        """Hit/miss counters, current size, and the lifetime hit rate."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self),
            "hit_rate": (self.hits / total) if total else 0.0,
        }


@dataclass
class BatchReport:
    """What one :meth:`BatchVerifier.flush` call settled."""

    verified: int = 0
    failed: int = 0
    batches: int = 0
    #: ``(signer, payload digest hex)`` of every failed verification.
    failures: List[Tuple[str, str]] = field(default_factory=list)

    def merge(self, other: "BatchReport") -> None:
        self.verified += other.verified
        self.failed += other.failed
        self.batches += other.batches
        self.failures.extend(other.failures)


@dataclass
class _Pending:
    public_key: DSAPublicKey
    message: bytes
    signature: RecoverableSignature
    key: CacheKey
    signer: str
    on_result: Optional[Callable[[bool], None]]


class BatchVerifier:
    """Queues recoverable-envelope verifications and settles them in bulk.

    Parameters
    ----------
    keystore:
        Directory resolving signer names to public keys.  An unknown
        signer fails immediately (never enters a batch).
    batch_size:
        Queue length that triggers an automatic flush on enqueue.
    rng:
        Source for the random batch exponents.  Defaults to
        :class:`random.SystemRandom` (unpredictable, as the batch
        test's soundness requires); pass a seeded generator only for
        reproducible simulation of non-adversarial streams.
    cache:
        Optional shared :class:`VerificationCache`.
    """

    def __init__(
        self,
        keystore: KeyStore,
        batch_size: int = 64,
        rng: Optional[Random] = None,
        cache: Optional[VerificationCache] = None,
    ) -> None:
        self.keystore = keystore
        self.batch_size = max(1, int(batch_size))
        self.rng = rng if rng is not None else SystemRandom()
        self.cache = cache if cache is not None else VerificationCache()
        self.report = BatchReport()
        self._pending: List[_Pending] = []

    @property
    def pending(self) -> int:
        """Number of queued, not-yet-settled verifications."""
        return len(self._pending)

    def enqueue(self, envelope: RecoverableEnvelope,
                on_result: Optional[Callable[[bool], None]] = None) -> Optional[bool]:
        """Queue one envelope for batched verification.

        Returns the outcome immediately when it is already known (cache
        hit or unknown signer); otherwise returns ``None`` and the
        outcome is delivered through ``on_result`` at flush time.
        """
        message = envelope.message()
        key = VerificationCache.key(envelope.signer, message, envelope.signature)
        cached = self.cache.get(key)
        if cached is not None:
            self._settle(envelope.signer, message, cached, on_result)
            return cached
        public_key = self.keystore.maybe_get(envelope.signer)
        if public_key is None:
            self.cache.put(key, False)
            self._settle(envelope.signer, message, False, on_result)
            return False
        self._pending.append(_Pending(
            public_key=public_key,
            message=message,
            signature=envelope.signature,
            key=key,
            signer=envelope.signer,
            on_result=on_result,
        ))
        if len(self._pending) >= self.batch_size:
            self.flush()
        return None

    def flush(self) -> BatchReport:
        """Settle every queued verification; returns this flush's report."""
        flush_report = BatchReport()
        if not self._pending:
            return flush_report
        pending, self._pending = self._pending, []
        items = [(p.public_key, p.message, p.signature) for p in pending]
        flush_report.batches = 1
        if batch_verify(items, rng=self.rng):
            outcomes = [True] * len(pending)
        else:
            bad = set(find_invalid(items))
            outcomes = [index not in bad for index in range(len(pending))]
        for entry, outcome in zip(pending, outcomes):
            self.cache.put(entry.key, outcome)
            if outcome:
                flush_report.verified += 1
            else:
                flush_report.failed += 1
                flush_report.failures.append(
                    (entry.signer, hash_bytes(entry.message).hex()[:16])
                )
            if entry.on_result is not None:
                entry.on_result(outcome)
        self.report.merge(flush_report)
        return flush_report

    def _settle(self, signer: str, message: bytes, outcome: bool,
                on_result: Optional[Callable[[bool], None]]) -> None:
        if outcome:
            self.report.verified += 1
        else:
            self.report.failed += 1
            self.report.failures.append(
                (signer, hash_bytes(message).hex()[:16])
            )
        if on_result is not None:
            on_result(outcome)


class BatchedTransferVerifier:
    """Whole-transfer signing/verification with deferred batch settling.

    Drop-in for the eager sign-and-verify pair of
    :class:`~repro.platform.registry.JourneyRunner`: the sender signs
    the transfer with a recoverable signature, the verification is
    queued, and ``verify_transfer`` returns optimistically.  Failures
    surface through :attr:`deferred_failures` after :meth:`flush` —
    callers that need per-journey attribution pass a ``journey`` label
    via :meth:`bind`.
    """

    def __init__(
        self,
        keystore: KeyStore,
        batch_size: int = 64,
        rng: Optional[Random] = None,
        cache: Optional[VerificationCache] = None,
        observer: Optional[Callable[..., None]] = None,
    ) -> None:
        self.verifier = BatchVerifier(
            keystore, batch_size=batch_size, rng=rng, cache=cache
        )
        #: ``{"journey": ..., "sender": ..., "receiver": ...}`` per failure.
        self.deferred_failures: List[Dict[str, Any]] = []
        self._journey: Optional[str] = None
        #: Optional tap called with ``(envelope, journey)`` for every
        #: transfer queued for verification.  The verification service's
        #: journey-replay source (:mod:`repro.sim.requests`) uses it to
        #: capture the exact signed wire traffic of a fleet run.
        self.observer = observer

    def bind(self, journey: Optional[str]) -> None:
        """Attribute subsequently queued transfers to ``journey``."""
        self._journey = journey

    def verify_transfer(self, sender: Any, receiver: Any, payload: Any,
                        message: Optional[bytes] = None) -> bool:
        """Sign ``payload`` as ``sender``, queue the receiver-side check.

        ``message`` optionally supplies the canonical encoding of
        ``payload``; the migration path passes the wire bytes it already
        computed, so the transfer is encoded exactly once per hop.
        """
        if message is None:
            # Duck-typed hosts (test fakes) may not accept the keyword.
            envelope = sender.sign_recoverable(payload, category="sign_verify")
        else:
            envelope = sender.sign_recoverable(
                payload, category="sign_verify", message=message
            )
        context = {
            "journey": self._journey,
            "sender": sender.name,
            "receiver": receiver.name,
        }

        def on_result(outcome: bool, context: Dict[str, Any] = context) -> None:
            if not outcome:
                self.deferred_failures.append(context)

        if self.observer is not None:
            self.observer(envelope, self._journey)
        self.verifier.enqueue(envelope, on_result=on_result)
        return True

    def flush(self) -> BatchReport:
        """Settle all queued transfer verifications."""
        return self.verifier.flush()

    def stats(self) -> Dict[str, Any]:
        """Aggregate verifier statistics for reporting."""
        report = self.verifier.report
        return {
            "verified": report.verified,
            "failed": report.failed,
            "batches": report.batches,
            "cache": self.verifier.cache.stats(),
            "deferred_failures": len(self.deferred_failures),
            # The arithmetic engine behind every verification above —
            # throughput numbers are meaningless without it.
            "backend": get_backend().name,
        }

"""Cryptographic substrate for the reference-states framework.

The paper's prototype relied on a pure-Java crypto provider (IAIK-JCE)
for DSA signatures and secure hashes.  This package is the equivalent
substrate for the reproduction, implemented from scratch:

* :mod:`repro.crypto.canonical` — deterministic serialization of agent
  states and protocol payloads,
* :mod:`repro.crypto.hashing` — secure hashes of states and traces,
* :mod:`repro.crypto.dsa` — DSA key generation, signing, verification,
* :mod:`repro.crypto.keys` — identities and key stores,
* :mod:`repro.crypto.signing` — signed and counter-signed envelopes,
* :mod:`repro.crypto.certificates` — a minimal CA / trust-anchor model.
"""

from repro.crypto.canonical import (
    CanonicalDecoder,
    CanonicalEncoder,
    canonical_decode,
    canonical_encode,
    canonical_equal,
)
from repro.crypto.certificates import (
    Certificate,
    CertificateAuthority,
    ROLE_HOST,
    ROLE_INPUT_PROVIDER,
    ROLE_OWNER,
    ROLE_TTP,
    TrustAnchorSet,
)
from repro.crypto.dsa import (
    DSAParameters,
    DSAPrivateKey,
    DSAPublicKey,
    DSASignature,
    PARAMETERS_512,
    PARAMETERS_1024,
    generate_keypair,
    generate_parameters,
    is_probable_prime,
)
from repro.crypto.hashing import (
    DEFAULT_HASH_ALGORITHM,
    StateDigest,
    constant_time_equal,
    digest_hex,
    hash_bytes,
    hash_chain,
    hash_value,
)
from repro.crypto.keys import Identity, IdentityRing, KeyStore, derive_seed
from repro.crypto.signing import MultiSignedEnvelope, SignedEnvelope, Signer

__all__ = [
    "CanonicalDecoder",
    "CanonicalEncoder",
    "canonical_decode",
    "canonical_encode",
    "canonical_equal",
    "Certificate",
    "CertificateAuthority",
    "ROLE_HOST",
    "ROLE_INPUT_PROVIDER",
    "ROLE_OWNER",
    "ROLE_TTP",
    "TrustAnchorSet",
    "DSAParameters",
    "DSAPrivateKey",
    "DSAPublicKey",
    "DSASignature",
    "PARAMETERS_512",
    "PARAMETERS_1024",
    "generate_keypair",
    "generate_parameters",
    "is_probable_prime",
    "DEFAULT_HASH_ALGORITHM",
    "StateDigest",
    "constant_time_equal",
    "digest_hex",
    "hash_bytes",
    "hash_chain",
    "hash_value",
    "Identity",
    "IdentityRing",
    "KeyStore",
    "derive_seed",
    "MultiSignedEnvelope",
    "SignedEnvelope",
    "Signer",
]

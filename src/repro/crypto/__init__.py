"""Cryptographic substrate for the reference-states framework.

The paper's prototype relied on a pure-Java crypto provider (IAIK-JCE)
for DSA signatures and secure hashes.  This package is the equivalent
substrate for the reproduction, implemented from scratch:

* :mod:`repro.crypto.backend` — pluggable modular-arithmetic engines
  (pure Python, optional gmpy2) with enforced cross-backend
  bit-identity,
* :mod:`repro.crypto.tablecache` — persistent on-disk cache for
  fixed-base precomputation tables, shared across processes,
* :mod:`repro.crypto.canonical` — deterministic serialization of agent
  states and protocol payloads,
* :mod:`repro.crypto.hashing` — secure hashes of states and traces,
* :mod:`repro.crypto.dsa` — DSA key generation, signing, verification,
  and randomized batch verification,
* :mod:`repro.crypto.batch` — verification queues and memo caches that
  amortize signature cost across fleet-scale simulation runs,
* :mod:`repro.crypto.keys` — identities and key stores,
* :mod:`repro.crypto.signing` — signed and counter-signed envelopes,
* :mod:`repro.crypto.certificates` — a minimal CA / trust-anchor model.
"""

from repro.crypto.backend import (
    BACKEND_ENV_VAR,
    Gmpy2Backend,
    ModArith,
    PythonBackend,
    available_backends,
    backend_info,
    get_backend,
    set_backend,
    use_backend,
)
from repro.crypto.batch import (
    BatchReport,
    BatchVerifier,
    BatchedTransferVerifier,
    VerificationCache,
)
from repro.crypto.canonical import (
    CanonicalDecoder,
    CanonicalEncoder,
    canonical_decode,
    canonical_encode,
    canonical_equal,
)
from repro.crypto.certificates import (
    Certificate,
    CertificateAuthority,
    ROLE_HOST,
    ROLE_INPUT_PROVIDER,
    ROLE_OWNER,
    ROLE_TTP,
    TrustAnchorSet,
)
from repro.crypto.dsa import (
    DSAParameters,
    DSAPrivateKey,
    DSAPublicKey,
    DSASignature,
    PARAMETERS_512,
    PARAMETERS_1024,
    RecoverableSignature,
    batch_verify,
    find_invalid,
    generate_keypair,
    generate_parameters,
    is_probable_prime,
)
from repro.crypto.hashing import (
    DEFAULT_HASH_ALGORITHM,
    HashCache,
    StateDigest,
    constant_time_equal,
    digest_hex,
    hash_bytes,
    hash_chain,
    hash_value,
)
from repro.crypto.keys import Identity, IdentityRing, KeyStore, derive_seed
from repro.crypto.signing import (
    MultiSignedEnvelope,
    RecoverableEnvelope,
    SignedEnvelope,
    Signer,
)
from repro.crypto.tablecache import (
    TABLE_CACHE_ENV_VAR,
    TableCache,
    default_cache_dir,
    enable_table_cache,
    get_table_cache,
    set_table_cache,
    table_cache_info,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "Gmpy2Backend",
    "ModArith",
    "PythonBackend",
    "available_backends",
    "backend_info",
    "get_backend",
    "set_backend",
    "use_backend",
    "TABLE_CACHE_ENV_VAR",
    "TableCache",
    "default_cache_dir",
    "enable_table_cache",
    "get_table_cache",
    "set_table_cache",
    "table_cache_info",
    "BatchReport",
    "BatchVerifier",
    "BatchedTransferVerifier",
    "VerificationCache",
    "CanonicalDecoder",
    "CanonicalEncoder",
    "canonical_decode",
    "canonical_encode",
    "canonical_equal",
    "Certificate",
    "CertificateAuthority",
    "ROLE_HOST",
    "ROLE_INPUT_PROVIDER",
    "ROLE_OWNER",
    "ROLE_TTP",
    "TrustAnchorSet",
    "DSAParameters",
    "DSAPrivateKey",
    "DSAPublicKey",
    "DSASignature",
    "PARAMETERS_512",
    "PARAMETERS_1024",
    "RecoverableSignature",
    "batch_verify",
    "find_invalid",
    "generate_keypair",
    "generate_parameters",
    "is_probable_prime",
    "DEFAULT_HASH_ALGORITHM",
    "HashCache",
    "StateDigest",
    "constant_time_equal",
    "digest_hex",
    "hash_bytes",
    "hash_chain",
    "hash_value",
    "Identity",
    "IdentityRing",
    "KeyStore",
    "derive_seed",
    "MultiSignedEnvelope",
    "RecoverableEnvelope",
    "SignedEnvelope",
    "Signer",
]

"""Deterministic canonical serialization.

Every protection mechanism in the paper ultimately compares, hashes, or
signs *agent states*.  For that to be meaningful the encoding of a state
must be deterministic: two structurally equal states must serialize to
the same byte string regardless of dictionary insertion order, process
hash randomization, or platform.

This module provides :func:`canonical_encode`, a small, explicit
serializer for the value universe the library uses for agent data
states, inputs, and execution logs:

* ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``
* ``list`` / ``tuple`` (encoded identically, as sequences)
* ``dict`` with string keys (encoded with keys sorted)
* ``set`` / ``frozenset`` of encodable values (encoded sorted by their
  canonical encoding)
* any object exposing ``to_canonical()`` returning an encodable value

The format is a length-prefixed tagged binary encoding, loosely
following the spirit of bencoding/ASN.1 DER: a one-byte tag, a decimal
ASCII length, ``:``, then the payload.  It is intentionally simple so
that the encoding itself can be property-tested (see
``tests/crypto/test_canonical.py``).
"""

from __future__ import annotations

import math
import struct
from typing import Any

from repro.exceptions import SerializationError

__all__ = [
    "canonical_encode",
    "canonical_decode",
    "canonical_equal",
    "CanonicalEncoder",
    "CanonicalDecoder",
]


_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_DICT = b"d"
_TAG_SET = b"e"


def _frame(tag: bytes, payload: bytes) -> bytes:
    """Frame ``payload`` with ``tag`` and an ASCII decimal length prefix."""
    return tag + str(len(payload)).encode("ascii") + b":" + payload


class CanonicalEncoder:
    """Encoder for the canonical byte representation of library values.

    The encoder is stateless; the class exists so that callers can
    subclass it to extend the value universe (for example to teach the
    encoder about an application-specific record type) without
    monkey-patching module functions.
    """

    #: Maximum recursion depth accepted before the encoder assumes a
    #: cyclic structure and raises :class:`SerializationError`.
    max_depth = 64

    def encode(self, value: Any) -> bytes:
        """Return the canonical byte encoding of ``value``.

        Raises
        ------
        SerializationError
            If the value (or one of its elements) is not encodable, or
            the structure is nested deeper than :attr:`max_depth`.
        """
        return self._encode(value, depth=0)

    # -- internal helpers -------------------------------------------------

    def _encode(self, value: Any, depth: int) -> bytes:
        if depth > self.max_depth:
            raise SerializationError(
                "value is nested deeper than %d levels; refusing to encode "
                "(possible cycle)" % self.max_depth
            )

        if value is None:
            return _frame(_TAG_NONE, b"")
        if value is True:
            return _frame(_TAG_TRUE, b"")
        if value is False:
            return _frame(_TAG_FALSE, b"")
        if isinstance(value, int):
            return _frame(_TAG_INT, str(value).encode("ascii"))
        if isinstance(value, float):
            return self._encode_float(value)
        if isinstance(value, str):
            return _frame(_TAG_STR, value.encode("utf-8"))
        if isinstance(value, (bytes, bytearray)):
            return _frame(_TAG_BYTES, bytes(value))
        if isinstance(value, (list, tuple)):
            parts = [self._encode(item, depth + 1) for item in value]
            return _frame(_TAG_LIST, b"".join(parts))
        if isinstance(value, dict):
            return self._encode_dict(value, depth)
        if isinstance(value, (set, frozenset)):
            parts = sorted(self._encode(item, depth + 1) for item in value)
            return _frame(_TAG_SET, b"".join(parts))

        # Memoized-encoding splice point: immutable snapshot types
        # (agent states, packed transfers) expose ``__canonical_bytes__``
        # returning their already-framed canonical encoding, so a value
        # that appears in several enclosing payloads per hop — signed,
        # wire-encoded, compared — is only ever encoded once.  The hook
        # must return exactly what encoding ``to_canonical()`` would
        # produce; implementations memoize through
        # :meth:`repro.crypto.hashing.HashCache.encode_object`.
        cached_bytes = getattr(value, "__canonical_bytes__", None)
        if callable(cached_bytes):
            return cached_bytes()

        to_canonical = getattr(value, "to_canonical", None)
        if callable(to_canonical):
            return self._encode(to_canonical(), depth + 1)

        raise SerializationError(
            "cannot canonically encode value of type %r: %r"
            % (type(value).__name__, value)
        )

    def _encode_float(self, value: float) -> bytes:
        if math.isnan(value):
            raise SerializationError("NaN is not canonically encodable")
        # Use the IEEE-754 big-endian bit pattern so that e.g. 1.0 and
        # 1 encode differently (they are different values to an agent),
        # while -0.0 is normalised to 0.0 to keep equality sensible.
        if value == 0.0:
            value = 0.0
        payload = struct.pack(">d", value)
        return _frame(_TAG_FLOAT, payload)

    def _encode_dict(self, value: dict, depth: int) -> bytes:
        items = []
        for key in value:
            if not isinstance(key, str):
                raise SerializationError(
                    "canonical dictionaries require string keys, got %r"
                    % (key,)
                )
        for key in sorted(value):
            encoded_key = self._encode(key, depth + 1)
            encoded_val = self._encode(value[key], depth + 1)
            items.append(encoded_key + encoded_val)
        return _frame(_TAG_DICT, b"".join(items))


class CanonicalDecoder:
    """Decoder for the canonical byte format produced by the encoder.

    Decoding is lossy in one deliberate way: tuples were encoded as
    sequences and therefore decode as lists.  Everything else round
    trips exactly, which is property-tested in
    ``tests/crypto/test_canonical.py``.
    """

    def decode(self, data: bytes) -> Any:
        """Decode a canonical byte string back into a Python value.

        Raises
        ------
        SerializationError
            If the byte string is malformed or has trailing garbage.
        """
        value, offset = self._decode(data, 0)
        if offset != len(data):
            raise SerializationError(
                "trailing bytes after canonical value (%d of %d consumed)"
                % (offset, len(data))
            )
        return value

    # -- internal helpers -------------------------------------------------

    def _decode(self, data: bytes, offset: int) -> tuple:
        if offset >= len(data):
            raise SerializationError("truncated canonical value")
        tag = data[offset:offset + 1]
        colon = data.find(b":", offset + 1)
        if colon < 0:
            raise SerializationError("missing length separator in canonical value")
        try:
            length = int(data[offset + 1:colon].decode("ascii"))
        except ValueError as exc:
            raise SerializationError("invalid length prefix") from exc
        start = colon + 1
        end = start + length
        if end > len(data):
            raise SerializationError("canonical payload shorter than declared")
        payload = data[start:end]

        if tag == _TAG_NONE:
            return None, end
        if tag == _TAG_TRUE:
            return True, end
        if tag == _TAG_FALSE:
            return False, end
        if tag == _TAG_INT:
            return int(payload.decode("ascii")), end
        if tag == _TAG_FLOAT:
            return struct.unpack(">d", payload)[0], end
        if tag == _TAG_STR:
            return payload.decode("utf-8"), end
        if tag == _TAG_BYTES:
            return bytes(payload), end
        if tag == _TAG_LIST:
            return self._decode_sequence(payload), end
        if tag == _TAG_SET:
            return set(self._decode_sequence(payload)), end
        if tag == _TAG_DICT:
            return self._decode_dict(payload), end
        raise SerializationError("unknown canonical tag %r" % tag)

    def _decode_sequence(self, payload: bytes) -> list:
        items = []
        offset = 0
        while offset < len(payload):
            value, offset = self._decode(payload, offset)
            items.append(value)
        return items

    def _decode_dict(self, payload: bytes) -> dict:
        result = {}
        offset = 0
        while offset < len(payload):
            key, offset = self._decode(payload, offset)
            value, offset = self._decode(payload, offset)
            if not isinstance(key, str):
                raise SerializationError("canonical dict key is not a string")
            result[key] = value
        return result


_DEFAULT_ENCODER = CanonicalEncoder()
_DEFAULT_DECODER = CanonicalDecoder()


def canonical_encode(value: Any) -> bytes:
    """Encode ``value`` using the default :class:`CanonicalEncoder`."""
    return _DEFAULT_ENCODER.encode(value)


def canonical_decode(data: bytes) -> Any:
    """Decode canonical bytes using the default :class:`CanonicalDecoder`."""
    return _DEFAULT_DECODER.decode(data)


def canonical_equal(left: Any, right: Any) -> bool:
    """Return whether two values have identical canonical encodings.

    This is the equality notion used when comparing a resulting agent
    state against a reference state: it ignores dict ordering and
    list/tuple distinctions but distinguishes ``1`` from ``1.0`` and
    ``True`` from ``1``.
    """
    return canonical_encode(left) == canonical_encode(right)

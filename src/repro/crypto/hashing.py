"""Secure hashing of agent states, inputs, and traces.

The protection mechanisms of the paper never transport full reference
data when a commitment suffices: Vigna's traces approach sends only a
*hash* of the trace and of the resulting agent state to the next host;
Hohl's example protocol signs hashes of initial and resulting states.

This module wraps :mod:`hashlib` with the library's canonical encoding
so that "hash of an agent state" is a single, well-defined operation.
"""

from __future__ import annotations

import hashlib
import hmac
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Tuple

from repro.crypto.canonical import canonical_encode

__all__ = [
    "StateDigest",
    "HashCache",
    "hash_bytes",
    "hash_value",
    "hash_chain",
    "digest_hex",
    "constant_time_equal",
    "DEFAULT_HASH_ALGORITHM",
]

#: Hash algorithm used throughout the library.  The paper's prototype
#: used SHA-1 via IAIK-JCE; we default to SHA-256 which preserves the
#: protocol structure while being a respectable modern choice.
DEFAULT_HASH_ALGORITHM = "sha256"


@dataclass(frozen=True)
class StateDigest:
    """A digest of a canonical value together with its algorithm.

    Instances are immutable and hashable so they can be used as keys in
    bookkeeping tables (e.g. "which host committed to which resulting
    state").
    """

    algorithm: str
    digest: bytes

    def hex(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest.hex()

    def to_canonical(self) -> dict:
        """Canonical representation, so digests can themselves be signed."""
        return {"algorithm": self.algorithm, "digest": self.digest}

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return "%s:%s" % (self.algorithm, self.hex()[:16])


def hash_bytes(data: bytes, algorithm: str = DEFAULT_HASH_ALGORITHM) -> StateDigest:
    """Hash raw bytes with ``algorithm`` and return a :class:`StateDigest`."""
    hasher = hashlib.new(algorithm)
    hasher.update(data)
    return StateDigest(algorithm=algorithm, digest=hasher.digest())


def hash_value(value: Any, algorithm: str = DEFAULT_HASH_ALGORITHM) -> StateDigest:
    """Hash an arbitrary encodable value via its canonical encoding.

    This is the operation the paper calls "a hash of the resulting agent
    state": the state is first brought into the deterministic canonical
    form, then hashed.
    """
    return hash_bytes(canonical_encode(value), algorithm=algorithm)


def hash_chain(
    values: Iterable[Any], algorithm: str = DEFAULT_HASH_ALGORITHM
) -> StateDigest:
    """Hash a sequence of values as a chain.

    Each element is canonically encoded and fed into the hash preceded
    by its length, so the chain hash distinguishes ``["ab", "c"]`` from
    ``["a", "bc"]``.  Used for execution traces, where the trace grows
    with every statement and we want an incremental commitment.
    """
    hasher = hashlib.new(algorithm)
    for value in values:
        encoded = canonical_encode(value)
        hasher.update(str(len(encoded)).encode("ascii"))
        hasher.update(b":")
        hasher.update(encoded)
    return StateDigest(algorithm=algorithm, digest=hasher.digest())


def digest_hex(value: Any, algorithm: str = DEFAULT_HASH_ALGORITHM) -> str:
    """Convenience wrapper returning the hex digest of ``value``."""
    return hash_value(value, algorithm=algorithm).hex()


class HashCache:
    """Identity-keyed memo for canonical encodings and digests.

    Fleet-scale runs canonically encode the *same* snapshot objects
    over and over — an arriving state is encoded for the dual
    commitment, for the arrival-consistency comparison, and again for
    the re-execution verdict.  The cache keys by object identity
    (guarded by a weak reference so a recycled ``id`` can never alias a
    dead object) and therefore must only be used for values treated as
    immutable snapshots, which is the library-wide contract for
    :class:`~repro.agents.state.AgentState` and reference data.

    Values that cannot be weak-referenced (plain dicts, lists) are
    encoded directly without caching — correct, just not accelerated.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, Tuple[weakref.ref, bytes]] = {}
        self.hits = 0
        self.misses = 0

    def encode(self, value: Any) -> bytes:
        """Canonical encoding of ``value``, memoized per object."""
        return self.encode_object(value, lambda: canonical_encode(value))

    def encode_object(self, value: Any, build: "Callable[[], bytes]") -> bytes:
        """Memoized encoding with a caller-supplied encoder thunk.

        This is the primitive behind the ``__canonical_bytes__`` splice
        hook of :class:`~repro.crypto.canonical.CanonicalEncoder`: a
        snapshot class memoizes the encoding of its ``to_canonical()``
        form here, and ``build`` exists precisely so the hook's
        implementation can encode that form *without* re-entering the
        hook (which would recurse forever).
        """
        key = id(value)
        entry = self._entries.get(key)
        if entry is not None and entry[0]() is value:
            self.hits += 1
            return entry[1]
        encoded = build()
        try:
            ref = weakref.ref(value, lambda _, key=key: self._entries.pop(key, None))
        except TypeError:
            return encoded
        self.misses += 1
        self._entries[key] = (ref, encoded)
        return encoded

    def digest(self, value: Any,
               algorithm: str = DEFAULT_HASH_ALGORITHM) -> StateDigest:
        """Memoized equivalent of :func:`hash_value`."""
        return hash_bytes(self.encode(value), algorithm=algorithm)

    def clear(self) -> None:
        """Drop all memoized encodings (counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        """Hit/miss counters, current size, and the lifetime hit rate."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self),
            "hit_rate": (self.hits / total) if total else 0.0,
        }


def constant_time_equal(left: StateDigest, right: StateDigest) -> bool:
    """Compare two digests without leaking timing information.

    The simulation does not have a realistic timing side channel, but
    the comparison is still routed through :func:`hmac.compare_digest`
    so the public API has the right shape for a real deployment.
    """
    if left.algorithm != right.algorithm:
        return False
    return hmac.compare_digest(left.digest, right.digest)

"""Pluggable modular-arithmetic backends for the crypto hot path.

Every expensive operation of the DSA layer — modular exponentiation,
fixed-base table construction and lookup, Montgomery batch inversion,
and the interleaved multi-exponentiation of :func:`batch_verify` —
funnels through one small interface, :class:`ModArith`, so the
number-theoretic engine can be swapped without touching a single
protocol or simulation line:

* :class:`PythonBackend` — the pure-Python implementation (built-in
  ``pow`` and int arithmetic).  Always available, always the reference.
* :class:`Gmpy2Backend` — the same algorithms over :mod:`gmpy2`'s GMP
  ``mpz`` integers, several times faster on 512-bit operands.  Loaded
  only when gmpy2 is importable *and* actually selected.

**The contract is bit-identity**: every backend returns plain Python
``int`` results that are equal, bit for bit, to the pure-Python
backend's for the same operands.  ``tests/crypto/test_backend.py``
enforces this with cross-backend property tests over keygen, sign,
verify, and batch verification; a backend that is merely "almost
right" must fail the suite, never silently change a verdict (detection
semantics are part of the reproduction's claims, not an implementation
detail).

Selection order:

1. an explicit :func:`set_backend` call (tests, services, benchmarks
   pin the engine they report numbers for);
2. the ``REPRO_CRYPTO_BACKEND`` environment variable (``python``,
   ``gmpy2``, or ``auto``);
3. auto-detection: gmpy2 when importable, pure Python otherwise.

Requesting ``gmpy2`` explicitly when it is not installed is a hard
:class:`~repro.exceptions.CryptoError` — an explicit request must never
silently degrade to a slower engine.  Conversely, selecting ``python``
never imports gmpy2 at all (the CI backend matrix asserts this), so the
pure path stays pure.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import CryptoError

__all__ = [
    "ModArith",
    "PythonBackend",
    "Gmpy2Backend",
    "BACKEND_ENV_VAR",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "backend_info",
]

#: Environment variable naming the requested backend (``python``,
#: ``gmpy2``, or ``auto``; unset behaves like ``auto``).
BACKEND_ENV_VAR = "REPRO_CRYPTO_BACKEND"


class ModArith:
    """Interface every modular-arithmetic backend implements.

    All inputs and outputs are plain Python ``int`` — backends may use
    any native representation internally (GMP ``mpz``, …) but must
    convert at the boundary, because the integers flow straight into
    canonical encodings, signatures, and deterministic traces.
    ``columns`` values (fixed-base tables) are the one exception: they
    are backend-native opaque state produced by :meth:`build_table` or
    :meth:`prepare_columns` and consumed only by :meth:`table_pow` /
    :meth:`export_columns` of the *same* backend.
    """

    #: Stable identifier recorded in reports, service stats, and the
    #: persistent table cache key.
    name: str = "abstract"

    def modexp(self, base: int, exponent: int, modulus: int) -> int:
        """``base ** exponent % modulus`` (negative exponents invert)."""
        raise NotImplementedError

    def invert(self, value: int, modulus: int) -> int:
        """``value ** -1 % modulus``; ``ValueError`` when not invertible."""
        raise NotImplementedError

    def invert_all(self, values: Sequence[int], modulus: int) -> List[int]:
        """Montgomery batch inversion of nonzero residues mod a prime."""
        raise NotImplementedError

    def product_of_powers(self, bases: Sequence[int],
                          exponents: Sequence[int], modulus: int,
                          exponent_bits: int) -> int:
        """``Π bases[i] ** exponents[i] mod modulus``, shared squarings."""
        raise NotImplementedError

    def build_table(self, base: int, modulus: int, window: int,
                    num_windows: int) -> List[List[Any]]:
        """Build fixed-base table columns (backend-native entries)."""
        raise NotImplementedError

    def prepare_columns(self, columns: List[List[int]]) -> List[List[Any]]:
        """Convert plain-int columns (cache load) to the native form."""
        return columns

    def export_columns(self, columns: List[List[Any]]) -> List[List[int]]:
        """Convert native columns to plain ints (cache store)."""
        return [[int(value) for value in column] for column in columns]

    def table_pow(self, columns: List[List[Any]], window: int,
                  exponent: int, modulus: int) -> int:
        """``base ** exponent % modulus`` via the table's columns."""
        raise NotImplementedError


class PythonBackend(ModArith):
    """The pure-Python reference backend (built-in ``pow`` and ints)."""

    name = "python"

    def modexp(self, base: int, exponent: int, modulus: int) -> int:
        return pow(base, exponent, modulus)

    def invert(self, value: int, modulus: int) -> int:
        return pow(value, -1, modulus)

    def invert_all(self, values: Sequence[int], modulus: int) -> List[int]:
        # Montgomery's trick: one prefix-product sweep, a single
        # inversion of the total, one backward sweep — three
        # multiplications per value instead of one extended-gcd each.
        prefix = [1] * (len(values) + 1)
        acc = 1
        for index, value in enumerate(values):
            acc = acc * value % modulus
            prefix[index + 1] = acc
        inverses = [0] * len(values)
        running = pow(acc, -1, modulus)
        for index in range(len(values) - 1, -1, -1):
            inverses[index] = prefix[index] * running % modulus
            running = running * values[index] % modulus
        return inverses

    def product_of_powers(self, bases: Sequence[int],
                          exponents: Sequence[int], modulus: int,
                          exponent_bits: int) -> int:
        # Interleaved multi-exponentiation: one square-and-multiply
        # ladder walks all exponents at once, paying the squarings once
        # for the whole product.
        result = 1
        for bit in range(exponent_bits - 1, -1, -1):
            result = result * result % modulus
            mask = 1 << bit
            for base, exponent in zip(bases, exponents):
                if exponent & mask:
                    result = result * base % modulus
        return result

    def build_table(self, base: int, modulus: int, window: int,
                    num_windows: int) -> List[List[int]]:
        size = 1 << window
        columns = []
        b = base % modulus
        for _ in range(num_windows):
            column = [1] * size
            acc = 1
            for digit in range(1, size):
                acc = acc * b % modulus
                column[digit] = acc
            columns.append(column)
            b = acc * b % modulus  # base^(2^window) for the next column
        return columns

    def table_pow(self, columns: List[List[int]], window: int,
                  exponent: int, modulus: int) -> int:
        result = 1
        mask = (1 << window) - 1
        index = 0
        while exponent:
            digit = exponent & mask
            if digit:
                result = result * columns[index][digit] % modulus
            exponent >>= window
            index += 1
        return result


class Gmpy2Backend(ModArith):
    """GMP-accelerated backend over :mod:`gmpy2` ``mpz`` integers.

    Same algorithms as :class:`PythonBackend`, same plain-int results
    at the boundary; only the integer engine differs.  Construct via
    :func:`set_backend`/:func:`get_backend` rather than directly — the
    constructor imports gmpy2 and raises :class:`CryptoError` when it
    is unavailable.
    """

    name = "gmpy2"

    def __init__(self) -> None:
        try:
            import gmpy2
        except ImportError as exc:  # pragma: no cover - container lacks gmpy2
            raise CryptoError(
                "the gmpy2 crypto backend was requested but gmpy2 is "
                "not installed"
            ) from exc
        self._gmpy2 = gmpy2
        self._mpz = gmpy2.mpz

    def modexp(self, base: int, exponent: int, modulus: int) -> int:
        return int(self._gmpy2.powmod(base, exponent, modulus))

    def invert(self, value: int, modulus: int) -> int:
        try:
            return int(self._gmpy2.invert(value, modulus))
        except ZeroDivisionError as exc:
            # Match the built-in pow(value, -1, modulus) contract.
            raise ValueError(
                "base is not invertible for the given modulus"
            ) from exc

    def invert_all(self, values: Sequence[int], modulus: int) -> List[int]:
        mpz = self._mpz
        mod = mpz(modulus)
        prefix = [mpz(1)] * (len(values) + 1)
        acc = mpz(1)
        for index, value in enumerate(values):
            acc = acc * value % mod
            prefix[index + 1] = acc
        inverses: List[int] = [0] * len(values)
        running = self._gmpy2.invert(acc, mod)
        for index in range(len(values) - 1, -1, -1):
            inverses[index] = int(prefix[index] * running % mod)
            running = running * values[index] % mod
        return inverses

    def product_of_powers(self, bases: Sequence[int],
                          exponents: Sequence[int], modulus: int,
                          exponent_bits: int) -> int:
        mpz = self._mpz
        mod = mpz(modulus)
        native = [mpz(base) for base in bases]
        result = mpz(1)
        for bit in range(exponent_bits - 1, -1, -1):
            result = result * result % mod
            mask = 1 << bit
            for base, exponent in zip(native, exponents):
                if exponent & mask:
                    result = result * base % mod
        return int(result)

    def build_table(self, base: int, modulus: int, window: int,
                    num_windows: int) -> List[List[Any]]:
        mpz = self._mpz
        mod = mpz(modulus)
        size = 1 << window
        columns = []
        b = mpz(base) % mod
        one = mpz(1)
        for _ in range(num_windows):
            column = [one] * size
            acc = one
            for digit in range(1, size):
                acc = acc * b % mod
                column[digit] = acc
            columns.append(column)
            b = acc * b % mod
        return columns

    def prepare_columns(self, columns: List[List[int]]) -> List[List[Any]]:
        mpz = self._mpz
        return [[mpz(value) for value in column] for column in columns]

    def table_pow(self, columns: List[List[Any]], window: int,
                  exponent: int, modulus: int) -> int:
        result = self._mpz(1)
        mod = self._mpz(modulus)
        mask = (1 << window) - 1
        index = 0
        while exponent:
            digit = exponent & mask
            if digit:
                result = result * columns[index][digit] % mod
            exponent >>= window
            index += 1
        return int(result)


#: Factories for every known backend, in preference order for ``auto``.
_FACTORIES = {
    "gmpy2": Gmpy2Backend,
    "python": PythonBackend,
}

_AUTO_ORDER: Tuple[str, ...] = ("gmpy2", "python")

_lock = threading.Lock()
_active: Optional[ModArith] = None


def _gmpy2_importable() -> bool:
    """Whether gmpy2 can be imported (imports it to find out)."""
    try:
        import gmpy2  # noqa: F401
    except ImportError:
        return False
    return True


def available_backends() -> Tuple[str, ...]:
    """Names of the backends loadable in this environment.

    ``python`` is always present; ``gmpy2`` appears when importable.
    Note this *does* attempt the gmpy2 import — callers on the strictly
    pure path should consult :func:`get_backend` (which honours the
    ``python`` selection without probing gmpy2) instead.
    """
    names = ["python"]
    if _gmpy2_importable():
        names.insert(0, "gmpy2")
    return tuple(names)


def _resolve(requested: Optional[str]) -> ModArith:
    """Instantiate the backend for a request string (None = env/auto)."""
    if requested is None:
        requested = os.environ.get(BACKEND_ENV_VAR, "auto")
    requested = (requested or "auto").strip().lower()
    if requested == "auto":
        # Try the fast engines first; the pure-Python backend is the
        # fallback that always loads.
        for name in _AUTO_ORDER:
            try:
                return _FACTORIES[name]()
            except CryptoError:
                continue
        return PythonBackend()  # pragma: no cover - python never raises
    factory = _FACTORIES.get(requested)
    if factory is None:
        raise CryptoError(
            "unknown crypto backend %r (known: %s, auto)"
            % (requested, ", ".join(sorted(_FACTORIES)))
        )
    return factory()


def get_backend() -> ModArith:
    """The process-wide active backend, resolving it on first use."""
    global _active
    backend = _active
    if backend is None:
        with _lock:
            if _active is None:
                _active = _resolve(None)
            backend = _active
    return backend


def set_backend(backend: Optional[Any]) -> ModArith:
    """Pin the active backend explicitly; returns the new instance.

    ``backend`` may be a name (``"python"``, ``"gmpy2"``, ``"auto"``),
    a :class:`ModArith` instance, or ``None`` / ``"auto"`` to re-run
    the environment-variable/auto-detection logic.  Requesting a
    backend that cannot load raises :class:`CryptoError` — an explicit
    request never silently degrades.
    """
    global _active
    with _lock:
        if isinstance(backend, ModArith):
            _active = backend
        else:
            _active = _resolve(backend)
        return _active


@contextmanager
def use_backend(backend: Optional[Any]) -> Iterator[ModArith]:
    """Context manager pinning a backend, restoring the previous one.

    Used by cross-backend property tests and the backend benchmark so a
    temporary selection can never leak into the rest of the process.
    """
    global _active
    with _lock:
        previous = _active
    try:
        yield set_backend(backend)
    finally:
        with _lock:
            _active = previous


def backend_info() -> Dict[str, Any]:
    """Report-friendly description of the selection state.

    Resolves the active backend (if not already resolved) so reports
    always record a concrete engine name.
    """
    active = get_backend()
    info: Dict[str, Any] = {
        "backend": active.name,
        "requested": os.environ.get(BACKEND_ENV_VAR) or "auto",
        "available": list(available_backends()),
    }
    if active.name == "gmpy2":
        info["gmpy2_version"] = active._gmpy2.version()  # type: ignore[attr-defined]
    return info

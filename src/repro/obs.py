"""Unified observability: process-local metrics, spans, and telemetry.

Every tier of the stack keeps *some* accounting — the verification
server's request counters, the gateway's failover tallies, the fleet
pool's supervision record — but each invented its own shape, and none
of them can answer latency questions ("what was p99 verify time?",
"how long does a hop take?").  This module is the one shared substrate:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — the three
  primitive instruments.  Histograms keep a **bounded** reservoir
  (default 512 samples) plus exact count/sum/min/max, so a
  million-journey fleet pays a fixed memory cost per metric and still
  reports p50/p95/p99.
* :class:`MetricsRegistry` — a named bag of instruments with a
  versioned :meth:`~MetricsRegistry.snapshot` (the ``telemetry`` block
  the ``stats`` wire op returns) and snapshot *merging*, so per-worker
  registries collected over the fleet result channel fold into one
  fleet-wide view.
* spans — :meth:`MetricsRegistry.span` times a ``with`` block into a
  histogram; the hot paths that already measure phases
  (:class:`~repro.platform.registry.JourneyRunner`) feed their observed
  durations straight into histograms instead.

Zero dependencies, and near-zero cost when disabled: with
``REPRO_OBS_DISABLE=1`` (or :func:`set_obs_enabled(False)`),
:func:`new_registry` hands out the shared :data:`NULL_REGISTRY` whose
instruments are no-ops — the hot path pays one attribute lookup and an
empty call.  The fleet bench gates the *enabled* path at ≤2% overhead.

Everything here is wall-clock side-band data: telemetry never feeds
the deterministic surface (traces, signatures, outcomes) and two runs
of the same seed may legitimately report different latencies.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "TELEMETRY_SCHEMA",
    "STATS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "new_registry",
    "obs_enabled",
    "set_obs_enabled",
    "percentile",
    "merge_snapshots",
]

#: Version of the ``telemetry`` snapshot dict.  Bump on incompatible
#: structural changes so consumers (CLI renderers, CI artifacts) can
#: refuse to misread an old capture.
TELEMETRY_SCHEMA = "repro-telemetry/1"

#: Version of the unified ``stats()`` envelope every service-tier
#: endpoint (single verifier, :class:`~repro.service.server.ServiceThread`,
#: cluster gateway) returns: ``schema`` / ``role`` / ``instance`` /
#: ``wire`` / ``counters`` / ``telemetry`` / ``config`` are guaranteed
#: present with these exact keys.
STATS_SCHEMA = "repro-stats/1"

#: Default histogram reservoir size.  512 float samples ≈ 4KiB per
#: metric — small enough to hold dozens of histograms per process,
#: large enough that nearest-rank p99 rests on real observations.
DEFAULT_MAX_SAMPLES = 512


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS_DISABLE", "").strip().lower() not in (
        "1", "true", "yes", "on",
    )


_enabled = _env_enabled()


def obs_enabled() -> bool:
    """Whether new registries collect metrics (process-wide switch)."""
    return _enabled


def set_obs_enabled(flag: bool) -> bool:
    """Flip metrics collection on/off; returns the previous setting.

    Affects registries created *after* the call (the disabled path is a
    construction-time decision, which is what keeps the enabled check
    off the hot path entirely).
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over ``samples`` (same convention as the
    loadgen's latency reporting).  Empty input returns 0.0."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(fraction * len(ordered))))
    return ordered[rank]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time float (queue depth, hit rate, breaker state)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Bounded-reservoir distribution with exact count/sum/min/max.

    The first ``max_samples`` observations are kept verbatim; later
    ones overwrite the reservoir round-robin, so the buffer always
    holds a recent-biased sample of fixed size while ``count``/``sum``
    stay exact.  Percentiles are nearest-rank over the reservoir.
    """

    __slots__ = ("count", "total", "min", "max", "_samples", "_cursor",
                 "max_samples")

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.max_samples = max(1, int(max_samples))
        self._samples: List[float] = []
        self._cursor = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:
            self._samples[self._cursor] = value
            self._cursor = (self._cursor + 1) % self.max_samples

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def snapshot(self, include_samples: bool = False) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": (self.total / self.count) if self.count else None,
            "p50": percentile(self._samples, 0.50) if self._samples else None,
            "p95": percentile(self._samples, 0.95) if self._samples else None,
            "p99": percentile(self._samples, 0.99) if self._samples else None,
            "sampled": len(self._samples),
        }
        if include_samples:
            data["samples"] = list(self._samples)
        return data


class _SpanTimer:
    """``with`` block → one histogram observation of its wall time."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_SpanTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Instrument lookups are idempotent (``counter("x")`` twice returns
    the same object), so call sites may either cache the instrument —
    the hot-path idiom — or look it up ad hoc.  Thread-safe for
    instrument *creation*; individual updates are plain attribute
    arithmetic, which is atomic enough under the GIL for accounting
    data that is explicitly non-deterministic side-band output.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- instruments -------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter())
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge())
        return instrument

    def histogram(self, name: str,
                  max_samples: int = DEFAULT_MAX_SAMPLES) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(max_samples)
                )
        return instrument

    def span(self, name: str) -> _SpanTimer:
        """Time a ``with`` block into the ``<name>.seconds`` histogram."""
        return _SpanTimer(self.histogram(name + ".seconds"))

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self, include_samples: bool = False) -> Dict[str, Any]:
        """The versioned ``telemetry`` block.

        ``include_samples`` additionally embeds each histogram's raw
        reservoir — the form snapshots must travel in when they will be
        merged (percentiles cannot be merged, samples can).
        """
        return {
            "schema": TELEMETRY_SCHEMA,
            "enabled": True,
            "counters": {
                name: c.snapshot() for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.snapshot() for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot(include_samples=include_samples)
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Fold a snapshot (ideally sample-bearing) into this registry.

        Counters and histogram count/sum add; gauges keep the maximum
        observed value (a merged snapshot answers "worst seen across
        workers"); histogram reservoirs concatenate, truncated to the
        local bound round-robin like live observations.
        """
        if not snapshot:
            return
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, value in (snapshot.get("gauges") or {}).items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, float(value)))
        for name, data in (snapshot.get("histograms") or {}).items():
            histogram = self.histogram(name)
            samples = data.get("samples")
            count = int(data.get("count") or 0)
            if samples:
                for sample in samples:
                    histogram.observe(float(sample))
                # Samples carry their own count/sum contributions;
                # account for observations the bounded reservoir
                # dropped at the source.
                extra = count - len(samples)
                if extra > 0:
                    histogram.count += extra
                    histogram.total += float(data.get("sum") or 0.0) - sum(
                        float(s) for s in samples
                    )
            elif count:
                histogram.count += count
                histogram.total += float(data.get("sum") or 0.0)
                for bound in (data.get("min"), data.get("max")):
                    if bound is None:
                        continue
                    bound = float(bound)
                    if histogram.min is None or bound < histogram.min:
                        histogram.min = bound
                    if histogram.max is None or bound > histogram.max:
                        histogram.max = bound


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def snapshot(self) -> int:
        return 0


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def snapshot(self) -> float:
        return 0.0


class _NullHistogram:
    __slots__ = ()
    count = 0
    total = 0.0
    samples: List[float] = []

    def observe(self, value: float) -> None:
        pass

    def snapshot(self, include_samples: bool = False) -> Dict[str, Any]:
        return {"count": 0, "sum": 0.0, "min": None, "max": None,
                "mean": None, "p50": None, "p95": None, "p99": None,
                "sampled": 0}


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


class NullRegistry:
    """The disabled path: every instrument is a shared no-op.

    Call sites hold ordinary-looking instruments, so the only cost of
    disabled telemetry is an attribute access plus an empty method —
    no branches in the instrumented code itself.
    """

    enabled = False

    _counter = _NullCounter()
    _gauge = _NullGauge()
    _histogram = _NullHistogram()
    _span = _NullSpan()

    def counter(self, name: str) -> _NullCounter:
        return self._counter

    def gauge(self, name: str) -> _NullGauge:
        return self._gauge

    def histogram(self, name: str,
                  max_samples: int = DEFAULT_MAX_SAMPLES) -> _NullHistogram:
        return self._histogram

    def span(self, name: str) -> _NullSpan:
        return self._span

    def snapshot(self, include_samples: bool = False) -> Dict[str, Any]:
        return {"schema": TELEMETRY_SCHEMA, "enabled": False,
                "counters": {}, "gauges": {}, "histograms": {}}

    def merge_snapshot(self, snapshot: Optional[Dict[str, Any]]) -> None:
        pass


#: The shared disabled registry (:class:`NullRegistry` is stateless).
NULL_REGISTRY = NullRegistry()


def new_registry() -> Any:
    """A fresh live registry, or :data:`NULL_REGISTRY` when disabled."""
    return MetricsRegistry() if _enabled else NULL_REGISTRY


def merge_snapshots(
    snapshots: Iterable[Optional[Dict[str, Any]]],
) -> Dict[str, Any]:
    """Merge snapshot dicts (from workers, shards, or runs) into one.

    The result is a plain (sample-free) telemetry block; inputs that
    are ``None`` or disabled-empty contribute nothing.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()

"""Deterministic seeded fault injection for the whole stack.

The paper's subject is surviving misbehaving hosts; this module makes
our *own* execution substrate misbehave on demand so the supervision
machinery can be exercised deterministically.  A :class:`FaultPlan` is
an immutable, picklable description of every fault a run will suffer —
worker crashes, stalls, truncated result pipes, backend SIGKILLs,
table-cache corruption, slow frame delivery — and a
:class:`FaultInjector` applies one worker's share of the plan inside
that worker's process.

Determinism rules
-----------------
Fault plans are either written out literally or derived from a seed via
:meth:`FaultPlan.generate` (sha256-keyed, like
:func:`repro.sim.shard.derive_shard_seed`); nothing in this module
reads the wall clock or the global :mod:`random` state.  Faults target
*logical* positions — the ``at_unit``-th unit a worker leases, the
``backend``-th cluster verifier — never wall-clock instants, so the
same plan replays the same injuries run after run.

What a fault may NOT change is the run's output: the supervised pool
(:class:`repro.sim.shard.FleetWorkerPool`) must produce byte-identical
traces and ``deterministic_signature`` under any plan it survives.
Injection is allowed to cost wall time, never bits.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

__all__ = [
    "WORKER_CRASH",
    "WORKER_CRASH_MID_WRITE",
    "WORKER_STALL",
    "CHANNEL_TRUNCATION",
    "SLOW_FRAME",
    "BACKEND_SIGKILL",
    "TABLE_CACHE_CORRUPTION",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "corrupt_table_cache",
    "kill_self",
    "torn_prefix",
]

#: SIGKILL the worker the moment it leases its ``at_unit``-th unit —
#: the lease is announced, no events are written, the unit must be
#: requeued untouched.
WORKER_CRASH = "worker-crash"

#: Execute the unit, append only a *prefix* of its trace events (cut
#: mid-line), fsync, then SIGKILL — the classic crash-mid-write.  The
#: coordinator must drop the truncated tail and the unit's partial
#: events before re-executing it elsewhere.
WORKER_CRASH_MID_WRITE = "worker-crash-mid-write"

#: Sleep ``seconds`` before executing the unit.  Not a death at all —
#: it forces the adversarial schedule in which siblings steal the
#: stalled worker's share.
WORKER_STALL = "worker-stall"

#: Execute the unit (events land in the stream), then write a few
#: garbage bytes of a frame header to the result channel and die —
#: the coordinator sees a torn frame / EOF with the lease still held,
#: so the unit's already-written events must be scrubbed and the unit
#: re-run.
CHANNEL_TRUNCATION = "channel-truncation"

#: Execute the unit, sleep ``seconds``, then deliver the result frame
#: normally.  Exercises the coordinator's patience (poll loop), not its
#: recovery.
SLOW_FRAME = "slow-frame"

#: SIGKILL the ``backend``-th verifier of a cluster after ``seconds``.
#: Applied at the service tier (drills, chaos bench), not by pool
#: workers.
BACKEND_SIGKILL = "backend-sigkill"

#: Overwrite every entry of a fixed-base table cache directory with
#: garbage.  The cache layer treats unreadable entries as misses and
#: recomputes; this fault proves it.
TABLE_CACHE_CORRUPTION = "table-cache-corruption"

FAULT_KINDS = (
    WORKER_CRASH,
    WORKER_CRASH_MID_WRITE,
    WORKER_STALL,
    CHANNEL_TRUNCATION,
    SLOW_FRAME,
    BACKEND_SIGKILL,
    TABLE_CACHE_CORRUPTION,
)

#: Fault kinds applied inside pool worker processes (everything a
#: :class:`FaultInjector` understands).
WORKER_FAULT_KINDS = (
    WORKER_CRASH,
    WORKER_CRASH_MID_WRITE,
    WORKER_STALL,
    CHANNEL_TRUNCATION,
    SLOW_FRAME,
)

#: Fault kinds a worker does not survive (its process dies).
LETHAL_FAULT_KINDS = (
    WORKER_CRASH,
    WORKER_CRASH_MID_WRITE,
    CHANNEL_TRUNCATION,
)


@dataclass(frozen=True)
class Fault:
    """One injected injury.

    ``worker`` and ``at_unit`` address pool faults: the fault fires when
    worker ``worker`` leases its ``at_unit``-th unit (0-based count of
    that worker's own leases — the *schedule* decides which shard that
    is, but the surviving output may not depend on it).  ``backend``
    addresses service-tier faults.  ``seconds`` parameterizes stalls,
    slow frames, and backend kill delays; ``fraction`` picks where a
    mid-write crash tears the JSONL payload.
    """

    kind: str
    worker: Optional[int] = None
    at_unit: int = 0
    seconds: float = 0.0
    fraction: float = 0.5
    backend: int = 0

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                "unknown fault kind %r (expected one of %s)"
                % (self.kind, ", ".join(FAULT_KINDS))
            )
        if self.kind in WORKER_FAULT_KINDS and self.worker is None:
            raise ConfigurationError(
                "fault %r must name a worker" % (self.kind,)
            )
        if self.at_unit < 0:
            raise ConfigurationError("at_unit must be non-negative")
        if self.seconds < 0:
            raise ConfigurationError("seconds must be non-negative")
        if not (0.0 < self.fraction < 1.0):
            raise ConfigurationError(
                "fraction must fall strictly inside (0, 1)"
            )

    @property
    def lethal(self) -> bool:
        """Whether the injected worker process dies of this fault."""
        return self.kind in LETHAL_FAULT_KINDS

    def describe(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"kind": self.kind}
        if self.kind in WORKER_FAULT_KINDS:
            entry.update(worker=self.worker, at_unit=self.at_unit)
        if self.kind in (WORKER_STALL, SLOW_FRAME, BACKEND_SIGKILL):
            entry["seconds"] = self.seconds
        if self.kind == WORKER_CRASH_MID_WRITE:
            entry["fraction"] = self.fraction
        if self.kind == BACKEND_SIGKILL:
            entry["backend"] = self.backend
        return entry


def _derive_fault_seed(seed: int, index: int) -> int:
    material = "chaos|%d|%d" % (seed, index)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults for one run.

    Plans cross the ``spawn`` boundary inside worker process arguments,
    so they hold nothing but plain dataclasses.  ``seed`` records the
    generator seed for provenance when the plan came out of
    :meth:`generate`.
    """

    faults: Tuple[Fault, ...] = ()
    seed: Optional[int] = None

    def validate(self) -> None:
        for fault in self.faults:
            fault.validate()

    @classmethod
    def generate(
        cls,
        seed: int,
        workers: int,
        units_per_worker: int = 4,
        kinds: Sequence[str] = LETHAL_FAULT_KINDS,
        count: int = 1,
    ) -> "FaultPlan":
        """Derive ``count`` worker faults deterministically from a seed.

        Placement (which worker, which of its leases, which kind, where
        a mid-write tears) is a pure function of ``seed`` — no global
        RNG, no wall clock — so a generated plan names the same
        injuries on every machine, every run.
        """
        if workers < 1:
            raise ConfigurationError("workers must be positive")
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        for kind in kinds:
            if kind not in WORKER_FAULT_KINDS:
                raise ConfigurationError(
                    "generate only places worker faults, not %r" % (kind,)
                )
        faults = []
        for index in range(count):
            material = _derive_fault_seed(seed, index)
            kind = kinds[material % len(kinds)]
            worker = (material >> 8) % workers
            at_unit = (material >> 24) % max(1, units_per_worker)
            fraction = 0.25 + ((material >> 40) % 128) / 256.0
            faults.append(Fault(
                kind=kind,
                worker=worker,
                at_unit=at_unit,
                seconds=0.05 if kind in (WORKER_STALL, SLOW_FRAME) else 0.0,
                fraction=fraction,
            ))
        plan = cls(faults=tuple(faults), seed=seed)
        plan.validate()
        return plan

    def for_worker(self, worker_index: int) -> Tuple[Fault, ...]:
        """The faults one pool worker must inject on itself."""
        return tuple(
            fault for fault in self.faults
            if fault.kind in WORKER_FAULT_KINDS
            and fault.worker == worker_index
        )

    def worker_faults(self) -> Tuple[Fault, ...]:
        return tuple(
            f for f in self.faults if f.kind in WORKER_FAULT_KINDS
        )

    def backend_faults(self) -> Tuple[Fault, ...]:
        return tuple(
            f for f in self.faults if f.kind == BACKEND_SIGKILL
        )

    def without_worker(self, worker_index: int) -> "FaultPlan":
        """The plan minus one worker's faults (for respawned workers —
        a replacement process must not re-suffer its predecessor's
        injuries, or a crash-at-unit-k would loop forever)."""
        return replace(self, faults=tuple(
            fault for fault in self.faults
            if not (fault.kind in WORKER_FAULT_KINDS
                    and fault.worker == worker_index)
        ))

    def describe(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [fault.describe() for fault in self.faults],
        }


def kill_self() -> None:
    """Die the way a machine does: SIGKILL, no handlers, no cleanup."""
    os.kill(os.getpid(), signal.SIGKILL)
    # SIGKILL is not deliverable-but-ignorable; if we are somehow still
    # running (a race on some platforms), exit hard anyway.
    os._exit(137)


class FaultInjector:
    """Applies one worker's share of a :class:`FaultPlan` in-process.

    The pool's worker loop calls :meth:`fault_for_unit` with a 0-based
    count of the units this worker has leased, then hands the returned
    fault to the pre/post hooks around unit execution.  The injector is
    deliberately dumb — all policy lives in the plan.
    """

    def __init__(self, faults: Sequence[Fault] = ()) -> None:
        self._by_unit: Dict[int, Fault] = {}
        for fault in faults:
            fault.validate()
            if fault.kind not in WORKER_FAULT_KINDS:
                raise ConfigurationError(
                    "injector only applies worker faults, not %r"
                    % (fault.kind,)
                )
            self._by_unit.setdefault(fault.at_unit, fault)

    def __len__(self) -> int:
        return len(self._by_unit)

    def fault_for_unit(self, nth_lease: int) -> Optional[Fault]:
        """The fault (if any) scheduled for this worker's nth lease."""
        return self._by_unit.get(nth_lease)

    def apply_pre_execution(self, fault: Optional[Fault]) -> None:
        """Faults that fire after the lease, before the unit runs."""
        if fault is None:
            return
        if fault.kind == WORKER_STALL:
            time.sleep(fault.seconds)
        elif fault.kind == WORKER_CRASH:
            kill_self()

    def apply_post_execution(
        self, fault: Optional[Fault], channel: Any
    ) -> None:
        """Faults that fire after the unit ran, around frame delivery."""
        if fault is None:
            return
        if fault.kind == SLOW_FRAME:
            time.sleep(fault.seconds)
        elif fault.kind == CHANNEL_TRUNCATION:
            # A torn frame: three bytes of what claims to be a length
            # header, then death.  The coordinator must treat the torn
            # read exactly like an EOF.
            try:
                os.write(channel.fileno(), b"\x00\x00\x01")
            except OSError:
                pass
            kill_self()



def torn_prefix(payload: str, fraction: float) -> str:
    """The prefix of a JSONL payload a mid-write crash gets out.

    Cuts at ``fraction`` of the byte length, clamped so at least one
    byte is written and at least one byte is lost — a torn final line,
    never a clean boundary, unless the payload is empty.
    """
    if not payload:
        return payload
    cut = int(len(payload) * fraction)
    cut = max(1, min(cut, len(payload) - 1))
    return payload[:cut]


def corrupt_table_cache(directory: str, seed: int = 0) -> int:
    """Overwrite every cache entry in ``directory`` with garbage.

    Deterministic garbage (sha256 of the seed and filename) so the
    injury itself is replayable.  Returns the number of files
    scribbled over.  The table cache treats undecodable entries as
    misses, deletes them, and recomputes — corruption costs time, not
    correctness.
    """
    corrupted = 0
    if not os.path.isdir(directory):
        return corrupted
    for name in sorted(os.listdir(directory)):
        path = os.path.join(directory, name)
        if not os.path.isfile(path):
            continue
        garbage = hashlib.sha256(
            ("corrupt|%d|%s" % (seed, name)).encode("utf-8")
        ).digest()
        with open(path, "wb") as handle:
            handle.write(b"\x00chaos\x00" + garbage)
        corrupted += 1
    return corrupted

"""Benchmark harness: timing decomposition, table rendering, reporting."""

from repro.bench.fleet import (
    fleet_detection_report,
    fleet_latency_rows,
    fleet_summary_markdown,
)
from repro.bench.metrics import (
    CATEGORY_CYCLE,
    CATEGORY_SIGN_VERIFY,
    TimingBreakdown,
    TimingCollector,
)
from repro.bench.tables import (
    PAPER_OVERALL_FACTORS,
    PAPER_TABLE_1,
    PAPER_TABLE_2,
    format_overhead_table,
    format_table,
    overall_factors,
)

__all__ = [
    "fleet_detection_report",
    "fleet_latency_rows",
    "fleet_summary_markdown",
    "MeasurementResult",
    "measure_generic_agent",
    "run_measurement_grid",
    "CATEGORY_CYCLE",
    "CATEGORY_SIGN_VERIFY",
    "TimingBreakdown",
    "TimingCollector",
    "PAPER_OVERALL_FACTORS",
    "PAPER_TABLE_1",
    "PAPER_TABLE_2",
    "format_overhead_table",
    "format_table",
    "overall_factors",
]

#: Exports resolved lazily from :mod:`repro.bench.harness` (PEP 562).
#: The harness doubles as the ``python -m repro.bench.harness`` CLI;
#: importing it eagerly here would leave it in ``sys.modules`` before
#: ``runpy`` executes it and provoke a RuntimeWarning on every CLI run.
_HARNESS_EXPORTS = (
    "MeasurementResult",
    "measure_generic_agent",
    "run_measurement_grid",
)


def __getattr__(name):
    if name in _HARNESS_EXPORTS:
        from repro.bench import harness

        return getattr(harness, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))

"""Benchmark harness: timing decomposition, table rendering, reporting."""

from repro.bench.fleet import (
    fleet_detection_report,
    fleet_latency_rows,
    fleet_summary_markdown,
)
from repro.bench.harness import (
    MeasurementResult,
    measure_generic_agent,
    run_measurement_grid,
)
from repro.bench.metrics import (
    CATEGORY_CYCLE,
    CATEGORY_SIGN_VERIFY,
    TimingBreakdown,
    TimingCollector,
)
from repro.bench.tables import (
    PAPER_OVERALL_FACTORS,
    PAPER_TABLE_1,
    PAPER_TABLE_2,
    format_overhead_table,
    format_table,
    overall_factors,
)

__all__ = [
    "fleet_detection_report",
    "fleet_latency_rows",
    "fleet_summary_markdown",
    "MeasurementResult",
    "measure_generic_agent",
    "run_measurement_grid",
    "CATEGORY_CYCLE",
    "CATEGORY_SIGN_VERIFY",
    "TimingBreakdown",
    "TimingCollector",
    "PAPER_OVERALL_FACTORS",
    "PAPER_TABLE_1",
    "PAPER_TABLE_2",
    "format_overhead_table",
    "format_table",
    "overall_factors",
]

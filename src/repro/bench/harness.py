"""Measurement harness: paper tables and the perf-baseline runner.

The module plays two roles:

**Paper tables** — :func:`measure_generic_agent` /
:func:`run_measurement_grid` regenerate the measurements behind Tables 1
and 2: a *plain* agent runs the three-host path unprotected but "signed
and verified as a whole" at each migration, a *protected* agent runs the
same path under the
:class:`~repro.core.protocol.ReferenceStateProtocol`.  Timing is
decomposed into the paper's columns via
:class:`~repro.bench.metrics.TimingCollector`.

**Perf baseline** — ``python -m repro.bench.harness`` benchmarks the
production-scale machinery and emits a schema-versioned
``BENCH_fleet.json``:

* fleet throughput, single-process versus the sharded multiprocess pool
  of :func:`repro.sim.shard.run_fleet` (with a determinism cross-check:
  both runs must produce the same deterministic signature);
* batched versus individual DSA signature verification at the
  primitive level;
* canonical-hash cache hit rates observed during real fleet checking
  traffic (:func:`repro.agents.state.encoding_cache_stats`);
* an adversarial **campaign**: a fleet whose journeys carry attacks from
  the full standard catalogue (:mod:`repro.sim.campaign`), reporting the
  per-scenario precision / recall matrix, the detectability-class
  matrix, the adversarial throughput against a benign baseline of the
  same shape, and a workers 1-vs-N bit-identity cross-check;
* the **verification service** (:mod:`repro.service`): a live asyncio
  server replaying a fleet's verification traffic over TCP — batched
  versus batch-size-1 throughput, latency percentiles, cache hit rate,
  the batch-size histogram, and a hard bit-for-bit parity cross-check
  of every service verdict against the in-process one.

``--sections`` selects a subset of the benchmark sections (the CI perf
job runs only the sections it gates).

The emitted report carries environment metadata so recorded numbers are
comparable across machines, and :func:`compare_to_baseline` implements
the CI regression gate: throughput must not fall more than a configured
fraction below the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, replace
from random import Random
from typing import Any, Dict, List, Optional, Tuple

from repro.agents.state import encoding_cache_stats
from repro.bench.metrics import TimingBreakdown, TimingCollector
from repro.core.protocol import ReferenceStateProtocol
from repro.crypto.backend import (
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.crypto.dsa import batch_verify, generate_keypair
from repro.platform.registry import JourneyResult
from repro.sim.campaign import campaign_config, run_campaign
from repro.sim.fleet import FleetConfig
from repro.sim.shard import DEFAULT_START_METHOD, FleetWorkerPool, run_fleet
from repro.workloads.generators import build_generic_scenario, paper_parameter_grid

__all__ = [
    "MeasurementResult",
    "measure_generic_agent",
    "run_measurement_grid",
    "BENCH_SCHEMA",
    "ALL_SECTIONS",
    "collect_environment",
    "bench_fleet_throughput",
    "bench_telemetry_overhead",
    "bench_table_warmup",
    "bench_dsa_verification",
    "bench_crypto_backends",
    "bench_campaign",
    "bench_service",
    "bench_cluster",
    "bench_chaos",
    "build_report",
    "compare_to_baseline",
    "format_speedup_warning",
    "main",
]


@dataclass
class MeasurementResult:
    """Timing breakdown plus journey bookkeeping for one configuration."""

    breakdown: TimingBreakdown
    journey: JourneyResult
    protected: bool
    cycles: int
    inputs: int

    @property
    def detected_attack(self) -> bool:
        """Whether any verdict of the run reported an attack."""
        return self.journey.detected_attack()


def measure_generic_agent(
    cycles: int,
    inputs: int,
    protected: bool,
    use_fast_cycles: bool = False,
    label: Optional[str] = None,
    injectors: Optional[List[Any]] = None,
) -> MeasurementResult:
    """Run one cell of the measurement grid and return its breakdown.

    Parameters
    ----------
    cycles / inputs:
        The generic agent's two parameters.
    protected:
        Run under the reference-state protocol instead of plain.
    use_fast_cycles:
        Use the C-level cycle implementation (the "JIT" ablation).
    injectors:
        Optional attacks to mount on the untrusted middle host (used by
        detection-oriented benchmarks; the timing tables run honestly).
    """
    metrics = TimingCollector()
    scenario, agent = build_generic_scenario(
        cycles=cycles,
        input_elements=inputs,
        protected_agent=protected,
        use_fast_cycles=use_fast_cycles,
        metrics=metrics,
        middle_host_injectors=injectors,
    )
    protection = None
    if protected:
        protection = ReferenceStateProtocol(
            code_registry=scenario.system.code_registry,
            trusted_hosts=scenario.trusted_host_names,
        )

    started = time.perf_counter()
    journey = scenario.system.launch(agent, scenario.itinerary, protection=protection)
    overall_seconds = time.perf_counter() - started

    row_label = label or "%d input%s, %d cycle%s" % (
        inputs, "" if inputs == 1 else "s", cycles, "" if cycles == 1 else "s",
    )
    breakdown = TimingBreakdown.from_collector(row_label, metrics, overall_seconds)
    return MeasurementResult(
        breakdown=breakdown,
        journey=journey,
        protected=protected,
        cycles=cycles,
        inputs=inputs,
    )


def run_measurement_grid(protected: bool,
                         use_fast_cycles: bool = False) -> List[MeasurementResult]:
    """Run all four configurations of the paper's grid."""
    results = []
    for cell in paper_parameter_grid():
        results.append(
            measure_generic_agent(
                cycles=cell["cycles"],
                inputs=cell["inputs"],
                protected=protected,
                use_fast_cycles=use_fast_cycles,
                label=cell["label"],
            )
        )
    return results


# ---------------------------------------------------------------------------
# Perf-baseline runner (``python -m repro.bench.harness``)
# ---------------------------------------------------------------------------

#: Schema identifier of the emitted report.  Bump on incompatible
#: structural changes so baseline comparisons can refuse to compare
#: apples with oranges.  ``/2`` added the ``campaign`` section; ``/3``
#: covers the digest-commitment protocol rewrite (fixed-base DSA,
#: single-encode transfers, warmed worker pools) and the optional
#: ``profile`` section; ``/4`` adds the ``service`` section (the
#: verification service benchmarked against in-process ground truth),
#: the top-level ``sections`` list, and the batch-verification
#: rewrite (batched inversion, interleaved commitment powers); ``/5``
#: adds the ``crypto`` backend-comparison section, the fleet section's
#: ``warmup`` block (cold vs warm-host fixed-base table builds through
#: the persistent cache) and per-shard wall/utilization data, and the
#: pluggable-backend identifiers threaded through every section; ``/6``
#: adds the ``cluster`` section (a gateway over real verifier
#: subprocesses: single-vs-N scaling plus a mid-run SIGKILL failover
#: leg, all parity-checked against in-process ground truth); ``/7``
#: moves the fleet section onto the work-stealing scheduler: per-run
#: ``worker_utilization`` becomes the CPU-time useful-parallel-work
#: fraction (uniformly a float, workers=1 included), the wall-clock
#: busy metric moves to ``busy_fraction``, and runs gain the
#: per-worker warmup/compute/serialize/merge overhead split
#: (``workers_detail``, ``merge_seconds``, ``scheduler``) plus the
#: section-level ``cpu_count`` / ``cpu_limited`` scaling context; ``/8``
#: adds the ``chaos`` section (seeded fault injection through the
#: supervised worker pool: clean vs crash-injected vs degraded legs,
#: all required byte-identical, with recovery wall-time overhead) and
#: the fleet pool's ``supervision`` block in worker reports; ``/9``
#: adds the observability layer: the fleet section's
#: ``telemetry_overhead`` block (interleaved metrics-on vs metrics-off
#: single-process legs, best-of-N each) and the merged ``telemetry``
#: snapshot carried by multi-worker runs' worker reports.
BENCH_SCHEMA = "repro-bench-fleet/9"

#: Schema of the stand-alone per-worker overhead-split artifact
#: (``--workers-output``): the fleet runs' scheduling diagnostics only,
#: small enough to eyeball in a CI artifact listing.
WORKERS_SCHEMA = "repro-bench-workers/1"

#: Sections the harness can run, in run order.  ``--sections`` selects
#: a subset; the emitted report records which subset ran so the
#: baseline gate can tell "not requested" apart from "silently
#: dropped".
ALL_SECTIONS = (
    "fleet", "dsa", "crypto", "campaign", "service", "cluster", "chaos",
)


def collect_environment() -> Dict[str, Any]:
    """Machine and interpreter metadata recorded with every report."""
    try:
        commit: Optional[str] = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        commit = None
    return {
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_commit": commit,
        "crypto_backend": get_backend().name,
    }


def bench_fleet_throughput(
    config: FleetConfig,
    workers: int,
    start_method: Optional[str] = None,
    pool: Optional[FleetWorkerPool] = None,
    unit_size: Optional[int] = None,
) -> Dict[str, Any]:
    """Time the fleet single-process and across a ``workers``-wide pool.

    Also serves as an end-to-end determinism check: the sharded run's
    deterministic signature must equal the single-process run's, and a
    mismatch is a hard error, not a number in a report.  ``pool``
    optionally names a persistent pre-warmed worker pool; the harness
    passes one so no measured section pays worker spawn or crypto
    warm-up (production deployments hold a pool open the same way).
    ``unit_size`` overrides the work-stealing unit granularity of the
    multi-worker leg.
    """
    kwargs: Dict[str, Any] = {}
    if start_method is not None:
        kwargs["start_method"] = start_method

    runs: Dict[str, Any] = {}
    signatures: Dict[str, str] = {}
    telemetry_by_key: Dict[str, Any] = {}
    cache_before = encoding_cache_stats()
    cache_after = cache_before
    for worker_count in sorted({1, workers}):
        started = time.perf_counter()
        # run_fleet keeps workers=1 single-process even with a pool, so
        # the serial leg of the speedup comparison stays serial.
        result = run_fleet(
            config, workers=worker_count, pool=pool,
            unit_size=unit_size if worker_count > 1 else None,
            **kwargs,
        )
        wall = time.perf_counter() - started
        key = "workers_%d" % worker_count
        signatures[key] = result.deterministic_signature()
        telemetry_by_key[key] = (result.worker_report or {}).get("telemetry")
        shard_walls = [
            round(shard.get("wall_seconds", 0.0), 4)
            for shard in (result.shards or [])
        ]
        report = result.worker_report or {}
        worker_entries = report.get("workers", [])
        # Utilization: useful-parallel-work fraction — CPU seconds the
        # workers spent inside engine execution over the pool's
        # ``workers × wall`` envelope.  CPU time (process_time) is
        # immune to timesharing: four workers round-robining one core
        # read ~0.25, not the ~1.0 the old busy-wall metric showed, so
        # an oversubscribed machine no longer looks "fully utilized".
        # Well-defined for every run, including workers=1 (≈ 1.0 when
        # the single process keeps its core).
        compute_cpu = sum(
            entry.get("compute_cpu_seconds") or 0.0
            for entry in worker_entries
        )
        busy_wall = sum(
            entry.get("compute_seconds") or 0.0 for entry in worker_entries
        )
        utilization = compute_cpu / (worker_count * wall) if wall > 0 else 0.0
        busy_fraction = busy_wall / (worker_count * wall) if wall > 0 else 0.0
        runs[key] = {
            "workers": worker_count,
            "num_shards": len(result.shards or []) or 1,
            "wall_seconds": round(wall, 4),
            "throughput_journeys_per_second": round(
                config.num_agents / wall, 3
            ),
            "detection_rate": result.detection_rate,
            "false_positives": result.false_positives,
            "events_processed": result.events_processed,
            "shard_wall_seconds": shard_walls,
            "worker_utilization": round(utilization, 3),
            # The old semantics (wall-clock busy fraction), kept under
            # an honest name: high busy + low utilization = contention.
            "busy_fraction": round(busy_fraction, 3),
            "scheduler": report.get("mode"),
            "merge_seconds": report.get("merge_seconds"),
            "workers_detail": worker_entries,
        }
        if worker_count == 1:
            cache_after = encoding_cache_stats()
    if len(set(signatures.values())) != 1:
        raise RuntimeError(
            "sharded run diverged from the single-process run: %r"
            % signatures
        )

    single = runs["workers_1"]["wall_seconds"]
    multi_key = "workers_%d" % workers
    speedup = (
        single / runs[multi_key]["wall_seconds"] if workers > 1 else 1.0
    )
    hits = cache_after["hits"] - cache_before["hits"]
    misses = cache_after["misses"] - cache_before["misses"]
    section = {
        "num_agents": config.num_agents,
        "num_hosts": config.num_hosts,
        "hops_per_journey": config.hops_per_journey,
        "malicious_host_fraction": config.malicious_host_fraction,
        "seed": config.seed,
        "batched_verification": config.batched_verification,
        "deterministic_signature": signatures["workers_1"],
        "backend": get_backend().name,
        "runs": runs,
        "speedup_vs_single": round(speedup, 3),
        # Scaling numbers are meaningless without knowing whether the
        # machine could physically run the workers in parallel.
        "cpu_count": os.cpu_count(),
        "cpu_limited": bool((os.cpu_count() or 1) < workers),
        "unit_size": unit_size,
        "hash_cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / (hits + misses), 4)
            if hits + misses else 0.0,
        },
        "warmup": bench_table_warmup(config),
        "telemetry_overhead": bench_telemetry_overhead(config),
    }
    # The merged live-telemetry snapshot of the widest run (counters
    # and latency distributions across all workers) rides along so the
    # --metrics-out artifact needs no extra measured run.
    for key in ("workers_%d" % workers, "workers_1"):
        if telemetry_by_key.get(key) is not None:
            section["telemetry"] = telemetry_by_key[key]
            break
    else:
        section["telemetry"] = None
    if pool is not None and workers > 1:
        section["worker_warmup"] = pool.warmup_report()
    return section


def bench_telemetry_overhead(
    config: FleetConfig,
    repeats: int = 3,
    max_agents: int = 120,
) -> Dict[str, Any]:
    """Metrics-on vs metrics-off single-process fleet legs, interleaved.

    The observability layer claims to be effectively free; this leg
    measures the claim instead of asserting it.  ``repeats`` off/on
    pairs run back to back (interleaved, so machine drift lands on
    both sides equally) over a capped slice of the fleet workload, and
    the best wall of each side is compared.  ``overhead_fraction`` is
    the enabled side's fractional slowdown — the bench suite gates it
    at 2%.
    """
    from repro.obs import obs_enabled, set_obs_enabled

    leg_config = replace(
        config, num_agents=min(config.num_agents, max_agents),
        trace_path=None,
    )

    def one_run() -> float:
        started = time.perf_counter()
        run_fleet(leg_config, workers=1)
        return time.perf_counter() - started

    previous = obs_enabled()
    disabled_walls: List[float] = []
    enabled_walls: List[float] = []
    try:
        for _ in range(max(1, repeats)):
            set_obs_enabled(False)
            disabled_walls.append(one_run())
            set_obs_enabled(True)
            enabled_walls.append(one_run())
    finally:
        set_obs_enabled(previous)

    best_disabled = min(disabled_walls)
    best_enabled = min(enabled_walls)
    overhead = (
        (best_enabled - best_disabled) / best_disabled
        if best_disabled > 0 else 0.0
    )
    return {
        "num_agents": leg_config.num_agents,
        "repeats": repeats,
        "disabled_wall_seconds": round(best_disabled, 4),
        "enabled_wall_seconds": round(best_enabled, 4),
        "overhead_fraction": round(overhead, 4),
    }


def bench_table_warmup(config: FleetConfig) -> Dict[str, Any]:
    """Cold vs warm-host fixed-base warmup through the persistent cache.

    Builds the exact table set :func:`repro.sim.shard.warm_worker` pays
    for — the generator table plus one per host public key — twice
    against a scratch cache directory: the first (cold) pass computes
    and stores every table, the second (warm) pass loads them back, so
    the delta is precisely what the persistent cache saves each *later*
    process on the same host.
    """
    import tempfile

    from repro.crypto.dsa import FixedBaseTable, PARAMETERS_512
    from repro.crypto.keys import Identity
    from repro.crypto.tablecache import TableCache
    from repro.sim.fleet import fleet_host_names

    p, q = PARAMETERS_512.p, PARAMETERS_512.q
    bases = [PARAMETERS_512.g]
    bases.extend(
        Identity.generate(name).public_key.y
        for name in fleet_host_names(config)
    )

    def build_all(cache: TableCache) -> float:
        started = time.perf_counter()
        for base in bases:
            FixedBaseTable(base, p, q.bit_length(), cache=cache)
        return time.perf_counter() - started

    with tempfile.TemporaryDirectory(prefix="repro-tbl-") as scratch:
        cache = TableCache(scratch)
        cold_seconds = build_all(cache)
        warm_seconds = build_all(cache)
        stats = cache.stats()
    return {
        "tables": len(bases),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(cold_seconds / warm_seconds, 2)
        if warm_seconds > 0 else None,
        "cache_hits": stats["hits"],
        "cache_stores": stats["stores"],
    }


def bench_dsa_verification(
    signatures: int = 160,
    signers: int = 8,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Batched vs. individual DSA verification at the primitive level.

    The stream is shaped like fleet traffic (few signers, many
    messages); best-of-N wall times keep the numbers robust on loaded
    machines.
    """
    keys = [generate_keypair(seed=index) for index in range(signers)]
    items = []
    for index in range(signatures):
        private, public = keys[index % signers]
        message = b"fleet-transfer-%06d" % index
        items.append((public, message, private.sign_recoverable(message)))

    def individually() -> None:
        if not all(
            public.verify_recoverable(message, signature)
            for public, message, signature in items
        ):
            raise RuntimeError("individual verification failed")

    def batched() -> None:
        if not batch_verify(items, rng=Random(42)):
            raise RuntimeError("batched verification failed")

    def best_of(func) -> float:
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            func()
            best = min(best, time.perf_counter() - started)
        return best

    individual_seconds = best_of(individually)
    batched_seconds = best_of(batched)
    return {
        "signatures": signatures,
        "signers": signers,
        "repeats": repeats,
        "backend": get_backend().name,
        "individual_seconds": round(individual_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(individual_seconds / batched_seconds, 3),
    }


def bench_crypto_backends(
    signatures: int = 96,
    signers: int = 6,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Compare every loadable arithmetic backend on the DSA hot paths.

    For each backend a *fresh* parameter object (same ``p, q, g`` as
    :data:`~repro.crypto.dsa.PARAMETERS_512`, fresh table caches) is
    used, so each engine pays its own table builds and the timings are
    honest.  The signatures every backend produces must be bit-identical
    to the first backend's — a divergence is a hard ``RuntimeError``,
    never a number in a report (the batch test's verdicts are detection
    semantics, not an implementation detail).
    """
    from repro.crypto.dsa import DSAParameters, PARAMETERS_512

    def best_of(func) -> float:
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            func()
            best = min(best, time.perf_counter() - started)
        return best

    backends: Dict[str, Any] = {}
    reference: Optional[List[Any]] = None
    for name in available_backends():
        with use_backend(name):
            parameters = DSAParameters(
                p=PARAMETERS_512.p, q=PARAMETERS_512.q, g=PARAMETERS_512.g
            )
            keys = [
                generate_keypair(parameters=parameters, seed=index)
                for index in range(signers)
            ]
            items = []
            for index in range(signatures):
                private, public = keys[index % signers]
                message = b"backend-bench-%06d" % index
                items.append(
                    (public, message, private.sign_recoverable(message))
                )
            produced = [
                (sig.r, sig.s, sig.commitment) for _, _, sig in items
            ]
            if reference is None:
                reference = produced
            elif produced != reference:
                raise RuntimeError(
                    "backend %r produced signatures that differ from the "
                    "reference backend's — cross-backend bit-identity is "
                    "broken" % name
                )

            def signed() -> None:
                for index in range(signatures):
                    private, _public = keys[index % signers]
                    private.sign_recoverable(b"backend-bench-%06d" % index)

            def individually() -> None:
                if not all(
                    public.verify_recoverable(message, signature)
                    for public, message, signature in items
                ):
                    raise RuntimeError("individual verification failed")

            def batched() -> None:
                if not batch_verify(items, rng=Random(42)):
                    raise RuntimeError("batched verification failed")

            # One untimed pass so the lazily built y-tables exist
            # before the clocks start, same as sustained service use.
            individually()
            batched()
            sign_seconds = best_of(signed)
            verify_seconds = best_of(individually)
            batch_seconds = best_of(batched)
            backends[name] = {
                "sign_us_per_op": round(
                    sign_seconds / signatures * 1e6, 2
                ),
                "verify_us_per_item": round(
                    verify_seconds / signatures * 1e6, 2
                ),
                "batch_verify_us_per_item": round(
                    batch_seconds / signatures * 1e6, 2
                ),
            }
    return {
        "signatures": signatures,
        "signers": signers,
        "repeats": repeats,
        "active_backend": get_backend().name,
        "available_backends": list(backends),
        "identical_signatures": True,
        "backends": backends,
    }


def bench_campaign(
    config: FleetConfig,
    workers: int,
    start_method: Optional[str] = None,
    pool: Optional[FleetWorkerPool] = None,
) -> Dict[str, Any]:
    """Adversarial campaign versus a benign baseline of identical shape.

    ``config`` must be a campaign configuration (``attack_fraction`` >
    0).  Three runs: a benign twin (attacks stripped) for the overhead
    baseline, then the campaign at one worker and at ``workers`` — the
    two campaign runs must be bit-identical (deterministic signature),
    and a divergence is a hard error, not a number in a report.
    """
    if config.attack_fraction <= 0.0:
        raise ValueError("bench_campaign needs attack_fraction > 0")
    kwargs: Dict[str, Any] = {}
    if start_method is not None:
        kwargs["start_method"] = start_method
    if pool is not None:
        kwargs["pool"] = pool

    benign_config = replace(
        config, attack_fraction=0.0, journey_scenarios=()
    )
    started = time.perf_counter()
    run_fleet(benign_config, workers=workers, **kwargs)
    benign_wall = time.perf_counter() - started
    benign_throughput = config.num_agents / benign_wall

    runs: Dict[str, Any] = {}
    signatures: Dict[str, str] = {}
    campaign = None
    for worker_count in sorted({1, workers}):
        started = time.perf_counter()
        campaign = run_campaign(config, workers=worker_count, **kwargs)
        wall = time.perf_counter() - started
        key = "workers_%d" % worker_count
        signatures[key] = campaign.deterministic_signature()
        runs[key] = {
            "workers": worker_count,
            "wall_seconds": round(wall, 4),
            "throughput_journeys_per_second": round(
                config.num_agents / wall, 3
            ),
        }
    if len(set(signatures.values())) != 1:
        raise RuntimeError(
            "sharded campaign diverged from the single-process run: %r"
            % signatures
        )

    assert campaign is not None
    multi_key = "workers_%d" % workers
    adversarial_throughput = runs[multi_key][
        "throughput_journeys_per_second"
    ]
    return {
        "num_agents": config.num_agents,
        "num_hosts": config.num_hosts,
        "hops_per_journey": config.hops_per_journey,
        "seed": config.seed,
        "attack_fraction": config.attack_fraction,
        "scenarios": list(config.journey_scenarios),
        "deterministic_signature": signatures[multi_key],
        "runs": runs,
        "benign_baseline": {
            "wall_seconds": round(benign_wall, 4),
            "throughput_journeys_per_second": round(benign_throughput, 3),
        },
        "adversarial_overhead": round(
            benign_throughput / adversarial_throughput, 3
        ) if adversarial_throughput else None,
        "detection": campaign.summary(),
    }


def bench_service(
    config: Optional[FleetConfig] = None,
    max_batch: int = 256,
    max_delay: float = 0.010,
    session_checks: int = 60,
    connections: int = 2,
    max_inflight: int = 256,
) -> Dict[str, Any]:
    """Benchmark the verification service against in-process ground truth.

    One deterministic journey request stream (:mod:`repro.sim.requests`)
    is replayed against live in-process servers
    (:class:`repro.service.server.ServiceThread`) in four legs:

    * **batched** — micro-batching on (``max_batch``), cold cache: the
      headline service throughput, latency distribution, and batch-size
      histogram;
    * **batch_size_1** — the same pipeline with coalescing disabled
      (every request individually verified): the no-batching baseline
      the batching gain is measured against, on the same stream;
    * **cached** — the batched server replaying the stream it has
      already answered: the LRU verdict cache's hit rate and rate;
    * **sessions** — captured ReferenceStateProtocol v2 session checks:
      the service verdict must equal the in-process verdict bit for
      bit.

    Any verdict mismatch or dropped request in any leg is a hard
    ``RuntimeError``, not a number in the report.  The in-process
    reference is a clean single-worker fleet run of the same
    configuration: its signature-verification rate is the yardstick the
    ``vs_fleet_ratio`` gate compares service throughput against.
    """
    import asyncio

    from repro.service.loadgen import percentile, replay_requests
    from repro.service.server import ServiceConfig, VerificationService
    from repro.sim.requests import journey_request_stream

    if config is None:
        config = FleetConfig(
            num_agents=150, num_hosts=20, hops_per_journey=3,
            malicious_host_fraction=0.2, seed=2027,
            protected=True, batched_verification=True,
        )
    else:
        config = replace(config, protected=True, batched_verification=True)

    stream = journey_request_stream(config, max_session_checks=session_checks)
    verify_requests = stream.verify_requests
    session_requests = stream.session_requests

    # In-process reference: a clean (non-recording) single-worker fleet
    # run of the same configuration, timed end to end.
    started = time.perf_counter()
    fleet_result = run_fleet(config, workers=1)
    fleet_wall = time.perf_counter() - started
    fleet_verified = int(
        (fleet_result.verifier_stats or {}).get("verified", 0)
    )
    fleet_rate = fleet_verified / fleet_wall if fleet_wall > 0 else 0.0

    async def replay_once(service, requests):
        """One replay against a live server; hard error on divergence."""
        report = await replay_requests(
            service.address, requests,
            connections=connections, max_inflight=max_inflight,
        )
        if report.mismatches or report.dropped:
            raise RuntimeError(
                "service verdicts diverged from the in-process ground "
                "truth (mismatches=%d, dropped=%d): %r"
                % (report.mismatches, report.dropped,
                   report.mismatch_samples[:2])
            )
        return report

    async def run_legs():
        """All four legs, server and client sharing one event loop.

        Everything is CPU-bound Python on both ends, so a second
        thread would only add GIL scheduling noise to the measurement;
        one loop over real loopback TCP gives the same byte-level
        protocol with deterministic interleaving.  The two comparison
        legs (batched vs batch-size-1) run cache-less so the ratio
        measures batching alone, best-of-two passes each; the cache
        leg measures the LRU explicitly.
        """
        async def comparison_leg(leg_batch):
            """Best-of-two cache-less passes, one fresh server each.

            A fresh server per pass keeps the reported batching stats
            attributable: the histogram attached to the kept report
            describes exactly the pass whose rps/latency is reported,
            not an aggregate over discarded passes.
            """
            best = None
            best_stats = None
            for _ in range(2):
                service = VerificationService(ServiceConfig(
                    fleet_hosts=config.num_hosts, max_batch=leg_batch,
                    max_delay=max_delay, cache_entries=0,
                ))
                await service.start()
                try:
                    report = await replay_once(service, verify_requests)
                    stats = service.stats()
                finally:
                    await service.stop()
                if best is None or report.achieved_rps > best.achieved_rps:
                    best, best_stats = report, stats
            return best, best_stats

        legs = {}
        legs["batched"], legs["stats"] = await comparison_leg(max_batch)
        legs["batch_size_1"], _ = await comparison_leg(1)

        # Cache leg: cold populating pass, then the measured hot pass —
        # plus the session-check parity leg on the same server.
        service = VerificationService(ServiceConfig(
            fleet_hosts=config.num_hosts, max_batch=max_batch,
            max_delay=max_delay,
        ))
        await service.start()
        try:
            await replay_once(service, verify_requests)
            legs["cached"] = await replay_once(service, verify_requests)
            if session_requests:
                legs["sessions"] = await replay_once(
                    service, session_requests
                )
        finally:
            await service.stop()
        return legs

    def leg_summary(report):
        return {
            "requests": report.completed,
            "wall_seconds": round(report.wall_seconds, 4),
            "rps": round(report.achieved_rps, 1),
            "latency_ms": {
                "p50": round(1e3 * percentile(report.latencies, 0.50), 3),
                "p99": round(1e3 * percentile(report.latencies, 0.99), 3),
            },
        }

    legs = asyncio.run(run_legs())
    batched_report = legs["batched"]
    unbatched_report = legs["batch_size_1"]
    cached_report = legs["cached"]
    sessions_report = legs.get("sessions")
    server_stats = legs["stats"]

    batched = leg_summary(batched_report)
    batched["batch_histogram"] = (
        server_stats["batching"]["batch_histogram"]
    )
    batched["mean_batch_size"] = round(
        server_stats["batching"]["mean_batch_size"], 2
    )
    cached = leg_summary(cached_report)
    cached["cache_hits"] = cached_report.cache_hits
    cached["cache_hit_rate"] = round(
        cached_report.cache_hits / cached_report.completed, 4
    ) if cached_report.completed else 0.0

    batching_gain = (
        batched["rps"] / unbatched_report.achieved_rps
        if unbatched_report.achieved_rps else 0.0
    )
    vs_fleet_ratio = batched["rps"] / fleet_rate if fleet_rate else 0.0

    section = {
        "workload": {
            "num_agents": config.num_agents,
            "num_hosts": config.num_hosts,
            "hops_per_journey": config.hops_per_journey,
            "seed": config.seed,
        },
        "max_batch": max_batch,
        "max_delay": max_delay,
        "connections": connections,
        "stream": {
            "verify_requests": len(verify_requests),
            "session_checks": len(session_requests),
            "fleet_signature": stream.fleet_signature,
        },
        "in_process": {
            "fleet_wall_seconds": round(fleet_wall, 4),
            "fleet_verifications": fleet_verified,
            "fleet_verification_rate": round(fleet_rate, 1),
        },
        "batched": batched,
        "batch_size_1": leg_summary(unbatched_report),
        "cached": cached,
        "batching_gain": round(batching_gain, 3),
        "vs_fleet_ratio": round(vs_fleet_ratio, 3),
        "parity": {
            "verify_checked": (
                batched_report.completed + cached_report.completed
                + unbatched_report.completed
            ),
            "sessions_checked": (
                sessions_report.completed if sessions_report else 0
            ),
            "mismatches": 0,
            "dropped": 0,
        },
    }
    if sessions_report is not None:
        section["sessions"] = leg_summary(sessions_report)
    return section


def bench_cluster(
    config: Optional[FleetConfig] = None,
    verifiers: int = 3,
    gather_batch: int = 64,
    connections: int = 2,
    max_inflight: int = 256,
    table_cache: Optional[str] = None,
) -> Dict[str, Any]:
    """Benchmark the verification cluster: scaling and failover.

    Unlike every other section this one runs *real processes*: each leg
    launches verifier subprocesses behind an in-thread gateway
    (:class:`repro.service.cluster.LocalCluster`) and replays the same
    deterministic verify stream through ``repro.service.connect()``:

    * **single** — one verifier behind the gateway: the routed-but-
      unsharded baseline every scaling claim is measured against;
    * **scaled** — ``verifiers`` backends: consistent-hash routing
      spreads the stream, and ``scaling_vs_single`` is the headline
      ratio the CI gate checks (with enough cores it should approach
      the backend count);
    * **failover** — a fresh ``verifiers``-wide cluster whose first
      backend is SIGKILLed mid-replay: the gateway must re-route and
      re-issue every in-flight item, and the leg hard-errors on any
      lost or wrong verdict exactly like the other legs.

    Verdict caches are disabled on both tiers so the legs measure
    routing and verification, not replay memoization.  Scaling is
    physically bounded by ``cpu_count``: the section records a
    ``cpu_limited`` flag (fewer cores than ``verifiers + 1``) so the
    gate can distinguish "cannot scale here" from "regressed".
    """
    import asyncio

    from repro.service.cluster import ClusterConfig, LocalCluster
    from repro.service.loadgen import percentile, replay_requests
    from repro.service.server import ServiceConfig
    from repro.sim.requests import journey_request_stream

    if verifiers < 1:
        raise ValueError("the cluster benchmark needs at least one verifier")
    if config is None:
        config = FleetConfig(
            num_agents=150, num_hosts=20, hops_per_journey=3,
            malicious_host_fraction=0.2, seed=2027,
            protected=True, batched_verification=True,
        )
    else:
        config = replace(config, protected=True, batched_verification=True)

    stream = journey_request_stream(config, max_session_checks=0)
    requests = stream.verify_requests

    template = ClusterConfig(
        service=ServiceConfig(
            fleet_hosts=config.num_hosts, max_batch=gather_batch,
            max_delay=0.002, cache_entries=0,
        ),
        cache_entries=0,
        gather_batch=gather_batch,
        gather_delay=0.001,
    )

    async def replay(cluster: LocalCluster) -> Any:
        report = await replay_requests(
            cluster.address, requests,
            connections=connections, max_inflight=max_inflight,
        )
        if report.mismatches or report.dropped:
            raise RuntimeError(
                "cluster verdicts diverged from the in-process ground "
                "truth (mismatches=%d, dropped=%d): %r"
                % (report.mismatches, report.dropped,
                   report.mismatch_samples[:2])
            )
        return report

    def leg_summary(report: Any) -> Dict[str, Any]:
        return {
            "requests": report.completed,
            "wall_seconds": round(report.wall_seconds, 4),
            "rps": round(report.achieved_rps, 1),
            "latency_ms": {
                "p50": round(1e3 * percentile(report.latencies, 0.50), 3),
                "p99": round(1e3 * percentile(report.latencies, 0.99), 3),
            },
        }

    def scaling_leg(count: int) -> Tuple[Any, float]:
        started = time.perf_counter()
        with LocalCluster(verifiers=count, config=template,
                          table_cache=table_cache) as cluster:
            startup = time.perf_counter() - started
            report = asyncio.run(replay(cluster))
        return report, startup

    single_report, single_startup = scaling_leg(1)
    scaled_report, scaled_startup = scaling_leg(verifiers)

    # Failover drill: a fresh cluster, SIGKILL the first verifier a
    # quarter of the way into the (just-measured) replay window.
    kill_after = max(0.05, 0.25 * scaled_report.wall_seconds)
    with LocalCluster(verifiers=verifiers, config=template,
                      table_cache=table_cache) as cluster:
        victim_name = cluster.verifiers[0].name

        async def failover_run() -> Any:
            async def kill_later() -> None:
                await asyncio.sleep(kill_after)
                cluster.kill_verifier(0)

            killer = asyncio.ensure_future(kill_later())
            try:
                return await replay(cluster)
            finally:
                await killer

        failover_report = asyncio.run(failover_run())
        gateway_counters = cluster.gateway.counters.snapshot()

    cpu_count = os.cpu_count() or 1
    single_rps = single_report.achieved_rps
    scaling = (
        scaled_report.achieved_rps / single_rps if single_rps else 0.0
    )
    single = leg_summary(single_report)
    single["startup_seconds"] = round(single_startup, 3)
    scaled = leg_summary(scaled_report)
    scaled["startup_seconds"] = round(scaled_startup, 3)
    failover = leg_summary(failover_report)
    failover.update({
        "killed": victim_name,
        "kill_after_seconds": round(kill_after, 3),
        "killed_mid_run": gateway_counters["failovers"] > 0,
        "failovers": gateway_counters["failovers"],
        "reissues": gateway_counters["reissues"],
        "mismatches": 0,
        "dropped": 0,
    })
    return {
        "workload": {
            "num_agents": config.num_agents,
            "num_hosts": config.num_hosts,
            "hops_per_journey": config.hops_per_journey,
            "seed": config.seed,
        },
        "verifiers": int(verifiers),
        "gather_batch": gather_batch,
        "connections": connections,
        "cpu_count": cpu_count,
        "cpu_limited": cpu_count < int(verifiers) + 1,
        "stream": {
            "verify_requests": len(requests),
            "fleet_signature": stream.fleet_signature,
        },
        "single": single,
        "scaled": scaled,
        "scaling_vs_single": round(scaling, 3),
        "failover": failover,
        "parity": {
            "verify_checked": (
                single_report.completed + scaled_report.completed
                + failover_report.completed
            ),
            "mismatches": 0,
            "dropped": 0,
        },
    }


def bench_chaos(
    config: Optional[FleetConfig] = None,
    workers: int = 2,
    chaos_seed: int = 2028,
    fault_count: int = 2,
) -> Dict[str, Any]:
    """Benchmark supervised fault recovery: chaos must cost time, not bits.

    Three legs over the same fleet workload, every one through a fresh
    ``workers``-wide :class:`~repro.sim.shard.FleetWorkerPool`:

    * **clean** — no faults: the reference wall time, trace, and
      deterministic signature;
    * **injected** — a seeded :class:`~repro.chaos.FaultPlan` SIGKILLs
      workers (including mid-append tears); the pool must requeue the
      leased units, repair the torn streams, and respawn replacements;
    * **degraded** — the same plan with ``respawn_budget=0``: every
      channel dies and the coordinator itself finishes the queue.

    Any divergence — signature or merged trace bytes — from the clean
    leg is a hard :class:`RuntimeError`, not a number in the report.
    The reported ``recovery_overhead_fraction`` is the injected leg's
    wall-time cost relative to clean.
    """
    import hashlib
    import tempfile

    from repro.chaos import LETHAL_FAULT_KINDS, WORKER_CRASH, Fault, FaultPlan

    if workers < 2:
        raise ValueError("the chaos benchmark needs at least two workers")
    if config is None:
        config = FleetConfig(
            num_agents=24, num_hosts=8, hops_per_journey=2,
            malicious_host_fraction=0.25, seed=2028,
            protected=True, batched_verification=True,
        )
    else:
        config = replace(config, protected=True, batched_verification=True)

    plan = FaultPlan.generate(
        chaos_seed, workers, kinds=LETHAL_FAULT_KINDS, count=fault_count,
    )
    # The degraded leg must actually reach coordinator execution, which
    # requires *every* worker dead with no respawns — top the generated
    # plan up with a first-lease crash for any worker it spared.
    targeted = {fault.worker for fault in plan.faults}
    degraded_plan = FaultPlan(
        faults=plan.faults + tuple(
            Fault(kind=WORKER_CRASH, worker=index, at_unit=0)
            for index in range(workers) if index not in targeted
        ),
        seed=plan.seed,
    )

    def leg(name: str, fault_plan: Optional["FaultPlan"],
            respawn_budget: Optional[int]) -> Dict[str, Any]:
        with tempfile.TemporaryDirectory() as tmp:
            trace_path = os.path.join(tmp, "%s.jsonl" % name)
            pool = FleetWorkerPool(
                workers, warm_config=config, fault_plan=fault_plan,
                respawn_budget=respawn_budget,
            )
            try:
                started = time.perf_counter()
                result = run_fleet(
                    replace(config, trace_path=trace_path),
                    workers=workers, pool=pool,
                )
                wall = time.perf_counter() - started
            finally:
                pool.close()
            with open(trace_path, "rb") as handle:
                trace_digest = hashlib.sha256(handle.read()).hexdigest()
        supervision = (result.worker_report or {}).get("supervision", {})
        crashes = supervision.get("crashes", [])
        return {
            "wall_seconds": round(wall, 4),
            "signature": result.deterministic_signature(),
            "trace_sha256": trace_digest,
            "crashes": len(crashes),
            "requeued_units": sum(
                1 for crash in crashes if crash.get("requeued")
            ),
            "trace_repairs": sum(
                1 for crash in crashes if crash.get("trace_repair")
            ),
            "respawns": supervision.get("respawns", 0),
            "degraded_units": supervision.get("degraded_units", 0),
        }

    clean = leg("clean", None, None)
    injected = leg("injected", plan, None)
    degraded = leg("degraded", degraded_plan, 0)

    for name, chaotic in (("injected", injected), ("degraded", degraded)):
        if chaotic["signature"] != clean["signature"]:
            raise RuntimeError(
                "%s chaos leg diverged from the clean signature: %s != %s"
                % (name, chaotic["signature"], clean["signature"])
            )
        if chaotic["trace_sha256"] != clean["trace_sha256"]:
            raise RuntimeError(
                "%s chaos leg produced different trace bytes than the "
                "clean run" % name
            )
    clean_wall = clean["wall_seconds"]
    overhead = (
        (injected["wall_seconds"] - clean_wall) / clean_wall
        if clean_wall > 0 else 0.0
    )
    return {
        "workload": {
            "num_agents": config.num_agents,
            "num_hosts": config.num_hosts,
            "hops_per_journey": config.hops_per_journey,
            "seed": config.seed,
        },
        "workers": int(workers),
        "chaos_seed": int(chaos_seed),
        "faults": [fault.describe() for fault in plan.faults],
        "faults_injected": len(plan.faults),
        "clean": clean,
        "injected": injected,
        "degraded": degraded,
        "recovery_overhead_fraction": round(overhead, 4),
        "parity": {
            "signature_identical": True,
            "trace_identical": True,
        },
    }


def build_report(
    config: FleetConfig,
    workers: int,
    quick: bool,
    start_method: Optional[str] = None,
    campaign: Optional[FleetConfig] = None,
    pool: Optional[FleetWorkerPool] = None,
    profile: bool = False,
    sections: Optional[List[str]] = None,
    service_config: Optional[FleetConfig] = None,
    service_options: Optional[Dict[str, Any]] = None,
    cluster_options: Optional[Dict[str, Any]] = None,
    chaos_options: Optional[Dict[str, Any]] = None,
    unit_size: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the selected perf benchmarks and assemble the report.

    ``campaign`` names the adversarial-campaign configuration; when
    omitted it is derived from ``config`` (same shape, 30% of journeys
    attacked with the full standard catalogue).  ``pool`` is a
    persistent worker pool shared by every multi-worker section;
    ``profile`` additionally runs the fleet under the per-phase
    profiler (:mod:`repro.bench.profile`) and attaches the attribution.
    ``sections`` selects a subset of :data:`ALL_SECTIONS` (default:
    all); the subset is recorded in the report so the baseline gate can
    distinguish a deliberately skipped section from a silently dropped
    one.  ``service_config`` shapes the service section's request
    stream (defaults to a 150-journey fleet) and ``service_options``
    passes extra keyword arguments to :func:`bench_service`;
    ``cluster_options`` does the same for :func:`bench_cluster` and
    ``chaos_options`` for :func:`bench_chaos`.
    """
    selected = list(sections) if sections is not None else list(ALL_SECTIONS)
    unknown = [name for name in selected if name not in ALL_SECTIONS]
    if unknown:
        raise ValueError(
            "unknown section(s) %r; valid sections: %s"
            % (unknown, ", ".join(ALL_SECTIONS))
        )
    if campaign is None and "campaign" in selected:
        campaign = campaign_config(
            num_agents=config.num_agents,
            num_hosts=config.num_hosts,
            hops_per_journey=config.hops_per_journey,
            attack_fraction=0.3,
            seed=config.seed,
            batched_verification=config.batched_verification,
        )
    benchmarks: Dict[str, Any] = {}
    if "fleet" in selected:
        benchmarks["fleet"] = bench_fleet_throughput(
            config, workers, start_method=start_method, pool=pool,
            unit_size=unit_size,
        )
    if "dsa" in selected:
        benchmarks["dsa_verification"] = bench_dsa_verification()
    if "crypto" in selected:
        benchmarks["crypto"] = bench_crypto_backends()
    if "campaign" in selected:
        benchmarks["campaign"] = bench_campaign(
            campaign, workers, start_method=start_method, pool=pool
        )
    if "service" in selected:
        benchmarks["service"] = bench_service(
            service_config, **(service_options or {})
        )
    if "cluster" in selected:
        benchmarks["cluster"] = bench_cluster(
            service_config, **(cluster_options or {})
        )
    if "chaos" in selected:
        benchmarks["chaos"] = bench_chaos(**(chaos_options or {}))
    report = {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "sections": sorted(selected, key=ALL_SECTIONS.index),
        "environment": collect_environment(),
        "benchmarks": benchmarks,
    }
    if profile:
        from repro.bench.profile import profile_fleet

        report["profile"] = profile_fleet(config)
    return report


def compare_to_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.30,
    sections: Optional[List[str]] = None,
) -> List[str]:
    """Regression check: returns human-readable failures (empty = pass).

    Wall-clock throughput is the gated quantity; a run key present in
    the baseline but missing from the current report is itself a
    failure (a silently dropped measurement must not pass the gate).
    Schema or workload-shape mismatches make the comparison refuse
    rather than guess.

    ``sections`` names the benchmark sections the current run was asked
    to produce (default: the report's own ``sections`` record, falling
    back to everything).  A baseline section outside that set is
    skipped — deliberately not running a section is legitimate; a
    *requested* section missing from the current report still fails.
    """
    failures: List[str] = []
    if baseline.get("schema") != current.get("schema"):
        return [
            "schema mismatch: baseline %r vs current %r — refresh the "
            "baseline" % (baseline.get("schema"), current.get("schema"))
        ]
    if sections is None:
        sections = current.get("sections")
    if sections is None:
        sections = list(ALL_SECTIONS)

    if "fleet" not in sections:
        if "crypto" in sections and "crypto" in baseline["benchmarks"]:
            failures.extend(_compare_crypto_sections(
                current, baseline, max_regression
            ))
        if "campaign" in sections and "campaign" in baseline["benchmarks"]:
            failures.extend(_compare_campaign_sections(
                current, baseline, max_regression
            ))
        if "service" in sections and "service" in baseline["benchmarks"]:
            failures.extend(_compare_service_sections(
                current, baseline, max_regression
            ))
        if "cluster" in sections and "cluster" in baseline["benchmarks"]:
            failures.extend(_compare_cluster_sections(
                current, baseline, max_regression
            ))
        if "chaos" in sections and "chaos" in baseline["benchmarks"]:
            failures.extend(_compare_chaos_sections(
                current, baseline, max_regression
            ))
        return failures
    if "fleet" not in current["benchmarks"]:
        return ["fleet section missing from current report"]
    if "fleet" not in baseline["benchmarks"]:
        return [
            "baseline has no fleet section (recorded with a sections "
            "subset?) — refresh the baseline from a full gated run"
        ]
    base_fleet = baseline["benchmarks"]["fleet"]
    cur_fleet = current["benchmarks"]["fleet"]
    for knob in ("num_agents", "num_hosts", "hops_per_journey", "seed"):
        if base_fleet.get(knob) != cur_fleet.get(knob):
            return [
                "workload mismatch on %s: baseline %r vs current %r — "
                "throughputs are not comparable; refresh the baseline"
                % (knob, base_fleet.get(knob), cur_fleet.get(knob))
            ]
    for key, base_run in sorted(base_fleet["runs"].items()):
        cur_run = cur_fleet["runs"].get(key)
        if cur_run is None:
            failures.append("baseline run %r missing from current report" % key)
            continue
        base_tp = base_run["throughput_journeys_per_second"]
        cur_tp = cur_run["throughput_journeys_per_second"]
        floor = base_tp * (1.0 - max_regression)
        if cur_tp < floor:
            failures.append(
                "%s throughput regressed: %.3f < %.3f journeys/s "
                "(baseline %.3f, allowed regression %.0f%%)"
                % (key, cur_tp, floor, base_tp, 100 * max_regression)
            )

    if "crypto" in sections:
        failures.extend(_compare_crypto_sections(
            current, baseline, max_regression
        ))
    if "campaign" in sections:
        failures.extend(_compare_campaign_sections(
            current, baseline, max_regression
        ))
    if "service" in sections:
        failures.extend(_compare_service_sections(
            current, baseline, max_regression
        ))
    if "cluster" in sections:
        failures.extend(_compare_cluster_sections(
            current, baseline, max_regression
        ))
    if "chaos" in sections:
        failures.extend(_compare_chaos_sections(
            current, baseline, max_regression
        ))
    return failures


def _compare_crypto_sections(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float,
) -> List[str]:
    """Crypto-backend leg of :func:`compare_to_baseline`.

    Gates ``batch_verify`` µs/item per backend (lower is better, so the
    ceiling is ``baseline * (1 + max_regression)``).  Backends present
    in the baseline but not loadable on this machine (a runner without
    gmpy2) are skipped — availability is an environment property, not a
    regression.
    """
    failures: List[str] = []
    base_crypto = baseline["benchmarks"].get("crypto")
    if base_crypto is None:
        return failures
    cur_crypto = current["benchmarks"].get("crypto")
    if cur_crypto is None:
        return [
            "crypto section missing from current report — the backend "
            "benchmark must not be silently dropped"
        ]
    for knob in ("signatures", "signers"):
        if base_crypto.get(knob) != cur_crypto.get(knob):
            return [
                "crypto workload mismatch on %s: baseline %r vs current "
                "%r — refresh the baseline"
                % (knob, base_crypto.get(knob), cur_crypto.get(knob))
            ]
    for name, base_entry in sorted(base_crypto.get("backends", {}).items()):
        cur_entry = cur_crypto.get("backends", {}).get(name)
        if cur_entry is None:
            continue
        base_us = base_entry.get("batch_verify_us_per_item")
        cur_us = cur_entry.get("batch_verify_us_per_item")
        if base_us is None or cur_us is None:
            continue
        ceiling = base_us * (1.0 + max_regression)
        if cur_us > ceiling:
            failures.append(
                "crypto backend %r batch_verify regressed: %.2f > %.2f "
                "us/item (baseline %.2f, allowed regression %.0f%%)"
                % (name, cur_us, ceiling, base_us, 100 * max_regression)
            )
    return failures


def _compare_campaign_sections(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float,
) -> List[str]:
    """Campaign leg of :func:`compare_to_baseline`."""
    failures: List[str] = []
    base_campaign = baseline["benchmarks"].get("campaign")
    if base_campaign is None:
        return failures
    cur_campaign = current["benchmarks"].get("campaign")
    if cur_campaign is None:
        return [
            "campaign section missing from current report — the "
            "adversarial benchmark must not be silently dropped"
        ]
    for knob in ("num_agents", "num_hosts", "hops_per_journey",
                 "seed", "attack_fraction"):
        if base_campaign.get(knob) != cur_campaign.get(knob):
            failures.append(
                "campaign workload mismatch on %s: baseline %r vs "
                "current %r — refresh the baseline"
                % (knob, base_campaign.get(knob), cur_campaign.get(knob))
            )
            return failures
    for key, base_run in sorted(base_campaign["runs"].items()):
        cur_run = cur_campaign["runs"].get(key)
        if cur_run is None:
            failures.append(
                "campaign baseline run %r missing from current report"
                % key
            )
            continue
        base_tp = base_run["throughput_journeys_per_second"]
        cur_tp = cur_run["throughput_journeys_per_second"]
        floor = base_tp * (1.0 - max_regression)
        if cur_tp < floor:
            failures.append(
                "campaign %s throughput regressed: %.3f < %.3f "
                "journeys/s (baseline %.3f, allowed regression %.0f%%)"
                % (key, cur_tp, floor, base_tp, 100 * max_regression)
            )
    return failures


def _compare_service_sections(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float,
) -> List[str]:
    """Service leg of :func:`compare_to_baseline`.

    The gated quantities are the batched and batch-size-1 service
    throughputs (RPS); workload- or batching-shape mismatches refuse to
    compare, exactly like the fleet leg.
    """
    failures: List[str] = []
    base_service = baseline["benchmarks"].get("service")
    if base_service is None:
        return failures
    cur_service = current["benchmarks"].get("service")
    if cur_service is None:
        return [
            "service section missing from current report — the "
            "verification-service benchmark must not be silently dropped"
        ]
    base_workload = base_service.get("workload", {})
    cur_workload = cur_service.get("workload", {})
    for knob in ("num_agents", "num_hosts", "hops_per_journey", "seed"):
        if base_workload.get(knob) != cur_workload.get(knob):
            failures.append(
                "service workload mismatch on %s: baseline %r vs "
                "current %r — refresh the baseline"
                % (knob, base_workload.get(knob), cur_workload.get(knob))
            )
            return failures
    if base_service.get("max_batch") != cur_service.get("max_batch"):
        failures.append(
            "service max_batch mismatch: baseline %r vs current %r — "
            "refresh the baseline"
            % (base_service.get("max_batch"), cur_service.get("max_batch"))
        )
        return failures
    for leg in ("batched", "batch_size_1"):
        base_rps = base_service.get(leg, {}).get("rps")
        cur_rps = cur_service.get(leg, {}).get("rps")
        if base_rps is None:
            continue
        if cur_rps is None:
            failures.append(
                "service %s leg missing from current report" % leg
            )
            continue
        floor = base_rps * (1.0 - max_regression)
        if cur_rps < floor:
            failures.append(
                "service %s throughput regressed: %.1f < %.1f rps "
                "(baseline %.1f, allowed regression %.0f%%)"
                % (leg, cur_rps, floor, base_rps, 100 * max_regression)
            )
    return failures


def _compare_cluster_sections(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float,
) -> List[str]:
    """Cluster leg of :func:`compare_to_baseline`.

    Gates the single-verifier and N-verifier routed throughputs (RPS).
    The scaling *ratio* is deliberately not compared against the
    baseline — it is machine-shape-dependent (``cpu_limited``) and has
    its own explicit ``--min-cluster-scaling`` gate.
    """
    failures: List[str] = []
    base_cluster = baseline["benchmarks"].get("cluster")
    if base_cluster is None:
        return failures
    cur_cluster = current["benchmarks"].get("cluster")
    if cur_cluster is None:
        return [
            "cluster section missing from current report — the "
            "verification-cluster benchmark must not be silently dropped"
        ]
    base_workload = base_cluster.get("workload", {})
    cur_workload = cur_cluster.get("workload", {})
    for knob in ("num_agents", "num_hosts", "hops_per_journey", "seed"):
        if base_workload.get(knob) != cur_workload.get(knob):
            failures.append(
                "cluster workload mismatch on %s: baseline %r vs "
                "current %r — refresh the baseline"
                % (knob, base_workload.get(knob), cur_workload.get(knob))
            )
            return failures
    if base_cluster.get("verifiers") != cur_cluster.get("verifiers"):
        failures.append(
            "cluster verifier-count mismatch: baseline %r vs current %r "
            "— refresh the baseline"
            % (base_cluster.get("verifiers"), cur_cluster.get("verifiers"))
        )
        return failures
    for leg in ("single", "scaled"):
        base_rps = base_cluster.get(leg, {}).get("rps")
        cur_rps = cur_cluster.get(leg, {}).get("rps")
        if base_rps is None:
            continue
        if cur_rps is None:
            failures.append(
                "cluster %s leg missing from current report" % leg
            )
            continue
        floor = base_rps * (1.0 - max_regression)
        if cur_rps < floor:
            failures.append(
                "cluster %s throughput regressed: %.1f < %.1f rps "
                "(baseline %.1f, allowed regression %.0f%%)"
                % (leg, cur_rps, floor, base_rps, 100 * max_regression)
            )
    return failures


def _compare_chaos_sections(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float,
) -> List[str]:
    """Chaos leg of :func:`compare_to_baseline`.

    Correctness (byte-identity under injected faults) is enforced by
    :func:`bench_chaos` itself — a divergent run never produces a
    report.  The baseline gate therefore only checks that the section
    was not silently dropped and that the same faults were injected;
    recovery overhead is recorded, not gated — respawn cost is
    machine-load-dependent in exactly the way wall clocks are.
    """
    failures: List[str] = []
    base_chaos = baseline["benchmarks"].get("chaos")
    if base_chaos is None:
        return failures
    cur_chaos = current["benchmarks"].get("chaos")
    if cur_chaos is None:
        return [
            "chaos section missing from current report — the fault-"
            "injection benchmark must not be silently dropped"
        ]
    for knob in ("chaos_seed", "workers", "faults_injected"):
        if base_chaos.get(knob) != cur_chaos.get(knob):
            failures.append(
                "chaos plan mismatch on %s: baseline %r vs current %r — "
                "refresh the baseline"
                % (knob, base_chaos.get(knob), cur_chaos.get(knob))
            )
            return failures
    parity = cur_chaos.get("parity", {})
    if not (parity.get("signature_identical")
            and parity.get("trace_identical")):
        failures.append(
            "chaos parity flags are not set — injected runs must be "
            "byte-identical to clean runs"
        )
    return failures


def format_speedup_warning(workers: int, fleet: Dict[str, Any],
                           cpu_count: Any) -> str:
    """The loud sub-1.0x-speedup banner, with attribution data.

    Beyond the headline, the banner breaks the regression down so it is
    attributable from the log alone: the useful-parallel-work fraction
    against the wall-clock busy fraction (busy-but-not-useful means the
    cores are contended, not the engine slow), and the per-worker
    units / warmup / compute / serialize split plus the coordinator
    merge time from the work-stealing scheduler's report.
    """
    multi = fleet["runs"].get("workers_%d" % workers, {})
    lines = [
        "",
        "*** WARNING ***********************************************",
        "* The %d-worker sharded run was SLOWER than single-process"
        % workers,
        "* (speedup %.2fx < 1.0x): sharding is currently paying a"
        % fleet["speedup_vs_single"],
        "* penalty instead of scaling.  Check cpu_count in the",
        "* environment section (%s CPUs seen) — on a single-core"
        % cpu_count,
        "* machine multiprocess runs cannot beat one process — and",
        "* make sure a persistent FleetWorkerPool is in use.",
    ]
    utilization = multi.get("worker_utilization")
    busy = multi.get("busy_fraction")
    if utilization is not None:
        lines.append(
            "* Useful parallel work: %.0f%% of the %d-worker CPU envelope"
            % (100 * utilization, workers)
        )
    if busy is not None and utilization is not None:
        lines.append(
            "* against a %.0f%% wall-clock busy fraction — busy but not"
            % (100 * busy)
        )
        lines.append(
            "* useful means the workers are timesharing cores.")
    detail = multi.get("workers_detail") or []
    if detail:
        lines.append("* Per-worker split (units / warmup / compute / "
                     "serialize):")
        for entry in detail:
            warmup = entry.get("warmup_seconds")
            lines.append(
                "*   worker %s: %d units  warmup %s  compute %.2fs  "
                "serialize %.2fs" % (
                    entry.get("worker"), entry.get("units", 0),
                    "%.2fs" % warmup if warmup is not None else "n/a",
                    entry.get("compute_seconds") or 0.0,
                    entry.get("serialize_seconds") or 0.0,
                )
            )
    wall = multi.get("wall_seconds") or 0.0
    merge_seconds = multi.get("merge_seconds")
    if merge_seconds is not None and wall:
        lines.append(
            "* Coordinator merge: %.2fs against a run wall of %.2fs."
            % (merge_seconds, wall)
        )
    lines.append(
        "***********************************************************")
    return "\n".join(lines)


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.harness",
        description="Fleet perf-baseline harness: emits BENCH_fleet.json",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller fleet for CI (600 agents, 20 hosts)")
    parser.add_argument("--sections", default=",".join(ALL_SECTIONS),
                        metavar="NAMES",
                        help="comma-separated benchmark sections to run "
                             "(subset of: %s; default: all).  The CI perf "
                             "job runs only the sections it gates."
                             % ",".join(ALL_SECTIONS))
    parser.add_argument("--agents", type=int, default=None,
                        help="override journey count")
    parser.add_argument("--hosts", type=int, default=None,
                        help="override service-host count")
    parser.add_argument("--hops", type=int, default=None,
                        help="override hops per journey")
    parser.add_argument("--seed", type=int, default=2026,
                        help="fleet master seed (default: 2026)")
    parser.add_argument("--workers", type=int,
                        default=min(4, os.cpu_count() or 1),
                        help="pool width of the sharded run "
                             "(default: min(4, cpu_count))")
    parser.add_argument("--unit-size", type=int, default=None,
                        help="journeys per work-stealing unit of the "
                             "multi-worker fleet leg (default: the "
                             "scheduler's dynamic plan)")
    parser.add_argument("--start-method", default=None,
                        help="multiprocessing start method override")
    parser.add_argument("--backend", default=None,
                        choices=("python", "gmpy2", "auto"),
                        help="pin the crypto backend for this run and "
                             "its worker pools (default: "
                             "REPRO_CRYPTO_BACKEND, else auto-detect)")
    parser.add_argument("--table-cache", default=None, metavar="PATH|off",
                        help="persistent fixed-base table cache directory "
                             "('off' disables; default: REPRO_TABLE_CACHE, "
                             "else ~/.cache/repro/tables)")
    parser.add_argument("--output", default="BENCH_fleet.json",
                        help="report path (default: BENCH_fleet.json)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="compare against this committed baseline "
                             "and exit non-zero on regression")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional throughput regression "
                             "against the baseline (default: 0.30)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the sharded run is at least "
                             "this much faster than single-process.  "
                             "Only enforced when the machine has at "
                             "least as many CPUs as workers — on "
                             "smaller machines the shortfall is "
                             "reported as a warning (parallel speedup "
                             "is physically impossible there), exactly "
                             "like --min-cluster-scaling")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="additionally write the fleet section's "
                             "merged live-telemetry snapshot (counters, "
                             "gauges, latency histograms across all "
                             "workers) plus the metrics-on/off overhead "
                             "leg as a stand-alone JSON artifact")
    parser.add_argument("--workers-output", default=None, metavar="PATH",
                        help="additionally write the fleet section's "
                             "per-worker overhead split (warmup / "
                             "compute / serialize / merge) as a "
                             "stand-alone JSON artifact")
    parser.add_argument("--campaign-agents", type=int, default=1000,
                        help="journeys of the adversarial campaign "
                             "benchmark (default: 1000)")
    parser.add_argument("--attack-fraction", type=float, default=0.3,
                        help="fraction of campaign journeys carrying an "
                             "attack (default: 0.3)")
    parser.add_argument("--min-campaign-recall", type=float, default=1.0,
                        help="fail when recall on always-detectable "
                             "scenarios falls below this floor "
                             "(default: 1.0; pass a negative value to "
                             "disable)")
    parser.add_argument("--service-agents", type=int, default=150,
                        help="journeys of the fleet whose verification "
                             "traffic the service section replays "
                             "(default: 150)")
    parser.add_argument("--service-batch", type=int, default=256,
                        help="service micro-batch window (default: 256)")
    parser.add_argument("--service-sessions", type=int, default=60,
                        help="session-check requests of the service "
                             "parity leg (default: 60)")
    parser.add_argument("--min-service-batch-gain", type=float, default=1.3,
                        help="fail unless service batching beats the "
                             "batch-size-1 baseline by this factor "
                             "(default: 1.3; negative disables)")
    parser.add_argument("--min-service-fleet-ratio", type=float, default=0.5,
                        help="fail unless batched service throughput "
                             "reaches this fraction of the in-process "
                             "single-worker fleet verification rate "
                             "(default: 0.5; negative disables)")
    parser.add_argument("--cluster-verifiers", type=int, default=3,
                        help="verifier subprocesses of the cluster "
                             "section's scaled leg (default: 3)")
    parser.add_argument("--min-cluster-scaling", type=float, default=None,
                        help="fail unless the N-verifier cluster beats "
                             "the single-verifier leg by this factor.  "
                             "Only enforced when the machine has at "
                             "least N+1 CPUs — on smaller machines the "
                             "shortfall is reported as a warning "
                             "(scaling is physically impossible there), "
                             "exactly like the fleet speedup banner.")
    parser.add_argument("--chaos-workers", type=int, default=2,
                        help="worker-pool width of the chaos section's "
                             "fault-injected legs (default: 2)")
    parser.add_argument("--chaos-seed", type=int, default=2028,
                        help="seed of the generated chaos fault plan — "
                             "the same seed injects the same faults on "
                             "every machine (default: 2028)")
    parser.add_argument("--chaos-faults", type=int, default=2,
                        help="lethal worker faults the generated plan "
                             "places (default: 2)")
    parser.add_argument("--profile", action="store_true",
                        help="attribute fleet wall time to crypto / "
                             "encode / engine / trace phases (cProfile) "
                             "and attach the result to the report")
    parser.add_argument("--profile-output", default="BENCH_profile.json",
                        metavar="PATH",
                        help="where --profile additionally writes the "
                             "stand-alone profile artifact "
                             "(default: BENCH_profile.json)")
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    sections = [
        name.strip() for name in args.sections.split(",") if name.strip()
    ]
    unknown = [name for name in sections if name not in ALL_SECTIONS]
    if unknown:
        print("FAIL: unknown section(s) %s (valid: %s)" % (
            ", ".join(unknown), ", ".join(ALL_SECTIONS),
        ), file=sys.stderr)
        return 2
    if args.backend is not None:
        set_backend(args.backend)
    # The harness is an entry point: persistent table caching defaults
    # on (the per-worker and cross-run warmup savings are part of what
    # the fleet section measures and reports).
    from repro.crypto.tablecache import enable_table_cache

    table_cache = enable_table_cache(args.table_cache)
    table_cache_dir = (
        table_cache.directory if table_cache is not None else None
    )
    if args.quick:
        agents, hosts, hops = 600, 20, 3
    else:
        agents, hosts, hops = 1000, 40, 4
    config = FleetConfig(
        num_agents=args.agents if args.agents is not None else agents,
        num_hosts=args.hosts if args.hosts is not None else hosts,
        hops_per_journey=args.hops if args.hops is not None else hops,
        malicious_host_fraction=0.2,
        seed=args.seed,
        batched_verification=True,
    )
    campaign = campaign_config(
        num_agents=args.campaign_agents,
        num_hosts=config.num_hosts,
        hops_per_journey=config.hops_per_journey,
        attack_fraction=args.attack_fraction,
        seed=args.seed,
        batched_verification=True,
    ) if "campaign" in sections else None
    service_config = FleetConfig(
        num_agents=args.service_agents,
        num_hosts=config.num_hosts,
        hops_per_journey=config.hops_per_journey,
        malicious_host_fraction=0.2,
        seed=args.seed,
        protected=True,
        batched_verification=True,
    ) if ("service" in sections or "cluster" in sections) else None

    # One persistent, pre-warmed pool serves every multi-worker section:
    # spawning (and re-generating keys/tables in) fresh workers per
    # measurement is exactly the startup tax the committed 4-worker
    # regression traced back to.
    pool: Optional[FleetWorkerPool] = None
    needs_pool = args.workers > 1 and (
        "fleet" in sections or "campaign" in sections
    )
    if needs_pool:
        pool = FleetWorkerPool(
            args.workers,
            start_method=args.start_method or DEFAULT_START_METHOD,
            warm_config=config,
            backend=args.backend,
            table_cache_dir=table_cache_dir,
        )
    try:
        report = build_report(
            config, workers=args.workers, quick=args.quick,
            start_method=args.start_method, campaign=campaign,
            pool=pool, profile=args.profile, sections=sections,
            service_config=service_config,
            service_options={
                "max_batch": args.service_batch,
                "session_checks": args.service_sessions,
            },
            cluster_options={
                "verifiers": args.cluster_verifiers,
                "table_cache": table_cache_dir,
            },
            chaos_options={
                "workers": args.chaos_workers,
                "chaos_seed": args.chaos_seed,
                "fault_count": args.chaos_faults,
            },
            unit_size=args.unit_size,
        )
    finally:
        if pool is not None:
            pool.close()
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if args.profile:
        with open(args.profile_output, "w", encoding="utf-8") as handle:
            json.dump(report["profile"], handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.metrics_out:
        from repro.obs import TELEMETRY_SCHEMA

        fleet_section = report["benchmarks"].get("fleet") or {}
        artifact = {
            "schema": TELEMETRY_SCHEMA,
            "environment": report["environment"],
            "telemetry": fleet_section.get("telemetry"),
            "telemetry_overhead": fleet_section.get("telemetry_overhead"),
        }
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("telemetry snapshot written to %s" % args.metrics_out)
    if args.workers_output:
        fleet_section = report["benchmarks"].get("fleet") or {}
        artifact = {
            "schema": WORKERS_SCHEMA,
            "workers": args.workers,
            "environment": report["environment"],
            "runs": {
                key: {
                    "scheduler": run.get("scheduler"),
                    "wall_seconds": run.get("wall_seconds"),
                    "worker_utilization": run.get("worker_utilization"),
                    "busy_fraction": run.get("busy_fraction"),
                    "merge_seconds": run.get("merge_seconds"),
                    "workers_detail": run.get("workers_detail"),
                }
                for key, run in fleet_section.get("runs", {}).items()
            },
        }
        with open(args.workers_output, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")

    fleet = report["benchmarks"].get("fleet")
    if fleet is not None:
        print("fleet: %d journeys, signature %s" % (
            fleet["num_agents"], fleet["deterministic_signature"][:16],
        ))
        for key, run in sorted(fleet["runs"].items()):
            print("  %-10s %7.2fs  %8.1f journeys/s  "
                  "useful-work %3.0f%%" % (
                      key, run["wall_seconds"],
                      run["throughput_journeys_per_second"],
                      100 * run["worker_utilization"],
                  ))
        print("  speedup vs single: %.2fx" % fleet["speedup_vs_single"])
        if args.workers > 1 and fleet["speedup_vs_single"] < 1.0:
            print(
                format_speedup_warning(
                    args.workers, fleet,
                    report["environment"].get("cpu_count"),
                ),
                file=sys.stderr,
            )
        print("  hash-cache hit rate: %.1f%%" % (
            100 * fleet["hash_cache"]["hit_rate"],
        ))
        warmup = fleet.get("warmup")
        if warmup:
            print("  table warmup (%d tables): cold %.3fs, warm-host "
                  "%.3fs (%sx via persistent cache)" % (
                      warmup["tables"], warmup["cold_seconds"],
                      warmup["warm_seconds"],
                      warmup["speedup"] if warmup["speedup"] is not None
                      else "n/a",
                  ))
        overhead = fleet.get("telemetry_overhead")
        if overhead:
            print("  telemetry overhead: %+.2f%% wall time with metrics "
                  "on (%.3fs vs %.3fs, best of %d interleaved pairs)" % (
                      100 * overhead["overhead_fraction"],
                      overhead["enabled_wall_seconds"],
                      overhead["disabled_wall_seconds"],
                      overhead["repeats"],
                  ))
    dsa = report["benchmarks"].get("dsa_verification")
    if dsa is not None:
        print("dsa verification: batched %.2fx faster (%.4fs vs %.4fs)" % (
            dsa["speedup"], dsa["batched_seconds"], dsa["individual_seconds"],
        ))
    crypto = report["benchmarks"].get("crypto")
    if crypto is not None:
        print("crypto backends (%d signatures, %d signers; active: %s):" % (
            crypto["signatures"], crypto["signers"],
            crypto["active_backend"],
        ))
        for name, entry in sorted(crypto["backends"].items()):
            print("  %-8s sign %8.2f us/op   verify %8.2f us/item   "
                  "batch_verify %8.2f us/item" % (
                      name, entry["sign_us_per_op"],
                      entry["verify_us_per_item"],
                      entry["batch_verify_us_per_item"],
                  ))
    camp = report["benchmarks"].get("campaign")
    detection = camp["detection"] if camp is not None else None
    if camp is not None:
        print("campaign: %d journeys, %.0f%% attacked, signature %s" % (
            camp["num_agents"], 100 * camp["attack_fraction"],
            camp["deterministic_signature"][:16],
        ))
        print("  precision %.3f  recall %.3f  false-positive rate %.4f" % (
            detection["precision"], detection["recall"],
            detection["false_positive_rate"],
        ))
        print("  adversarial overhead vs benign: %.2fx"
              % camp["adversarial_overhead"])
        from repro.bench.tables import metric_cell

        for name, row in sorted(detection["per_scenario"].items()):
            print("  %-24s area %2d  %-18s %3d/%3d detected "
                  "(recall %s, precision %s, hops-to-det %s)" % (
                      name, row["area"], row["detectability"],
                      row["detected"], row["injected"],
                      metric_cell(row["detection_rate"]),
                      metric_cell(row["precision"]),
                      metric_cell(row["mean_hops_to_detection"], "%.1f"),
                  ))
    service = report["benchmarks"].get("service")
    if service is not None:
        print("service: %d verify + %d session requests "
              "(fleet of %d journeys)" % (
                  service["stream"]["verify_requests"],
                  service["stream"]["session_checks"],
                  service["workload"]["num_agents"],
              ))
        print("  batched (window %d): %8.1f rps  p50 %6.2fms  p99 %6.2fms"
              "  mean batch %.1f" % (
                  service["max_batch"],
                  service["batched"]["rps"],
                  service["batched"]["latency_ms"]["p50"],
                  service["batched"]["latency_ms"]["p99"],
                  service["batched"]["mean_batch_size"],
              ))
        print("  batch size 1:       %8.1f rps  p50 %6.2fms  p99 %6.2fms" % (
            service["batch_size_1"]["rps"],
            service["batch_size_1"]["latency_ms"]["p50"],
            service["batch_size_1"]["latency_ms"]["p99"],
        ))
        print("  cached replay:      %8.1f rps  hit rate %.1f%%" % (
            service["cached"]["rps"],
            100 * service["cached"]["cache_hit_rate"],
        ))
        print("  batching gain: %.2fx   vs in-process fleet "
              "verification rate (%.1f/s): %.2fx" % (
                  service["batching_gain"],
                  service["in_process"]["fleet_verification_rate"],
                  service["vs_fleet_ratio"],
              ))
        print("  parity: %d verify + %d session verdicts matched "
              "in-process ground truth, zero drops" % (
                  service["parity"]["verify_checked"],
                  service["parity"]["sessions_checked"],
              ))
    cluster = report["benchmarks"].get("cluster")
    if cluster is not None:
        print("cluster: %d verify requests routed over real verifier "
              "subprocesses (fleet of %d journeys)" % (
                  cluster["stream"]["verify_requests"],
                  cluster["workload"]["num_agents"],
              ))
        print("  1 verifier:  %8.1f rps  p50 %6.2fms  p99 %6.2fms" % (
            cluster["single"]["rps"],
            cluster["single"]["latency_ms"]["p50"],
            cluster["single"]["latency_ms"]["p99"],
        ))
        print("  %d verifiers: %8.1f rps  p50 %6.2fms  p99 %6.2fms" % (
            cluster["verifiers"],
            cluster["scaled"]["rps"],
            cluster["scaled"]["latency_ms"]["p50"],
            cluster["scaled"]["latency_ms"]["p99"],
        ))
        print("  scaling vs single verifier: %.2fx%s" % (
            cluster["scaling_vs_single"],
            "  (cpu-limited: %d CPUs for %d processes)" % (
                cluster["cpu_count"], cluster["verifiers"] + 1,
            ) if cluster["cpu_limited"] else "",
        ))
        failover = cluster["failover"]
        print("  failover: SIGKILLed %s %.2fs into the replay — "
              "%d failovers, %d reissues, zero lost or duplicated "
              "verdicts" % (
                  failover["killed"], failover["kill_after_seconds"],
                  failover["failovers"], failover["reissues"],
              ))
        if not failover["killed_mid_run"]:
            print("  note: the kill landed after the stream drained "
                  "(no in-flight work to fail over) — rerun with a "
                  "larger stream for a live drill", file=sys.stderr)
    chaos = report["benchmarks"].get("chaos")
    if chaos is not None:
        print("chaos: %d seeded fault(s) injected into a %d-worker "
              "fleet (seed %d)" % (
                  chaos["faults_injected"], chaos["workers"],
                  chaos["chaos_seed"],
              ))
        for fault in chaos["faults"]:
            print("  fault: %s" % json.dumps(fault, sort_keys=True))
        injected = chaos["injected"]
        degraded = chaos["degraded"]
        print("  injected leg: %d crash(es), %d unit(s) requeued, "
              "%d stream repair(s), %d respawn(s)" % (
                  injected["crashes"], injected["requeued_units"],
                  injected["trace_repairs"], injected["respawns"],
              ))
        print("  degraded leg: %d crash(es), %d unit(s) finished by "
              "the coordinator (respawn budget 0)" % (
                  degraded["crashes"], degraded["degraded_units"],
              ))
        print("  recovery overhead: %+.1f%% wall time vs clean "
              "(%.2fs vs %.2fs); signature and trace byte-identical "
              "across all legs" % (
                  100 * chaos["recovery_overhead_fraction"],
                  injected["wall_seconds"], chaos["clean"]["wall_seconds"],
              ))
    if args.profile:
        from repro.bench.profile import format_profile

        print(format_profile(report["profile"]))
        print("profile written to %s" % args.profile_output)
    print("report written to %s" % args.output)

    status = 0
    if (detection is not None and args.min_campaign_recall is not None
            and args.min_campaign_recall >= 0):
        observed = detection["always_detectable_recall"]
        if observed < args.min_campaign_recall:
            print(
                "FAIL: campaign recall on always-detectable scenarios "
                "%.3f below required %.3f" % (
                    observed, args.min_campaign_recall,
                ), file=sys.stderr,
            )
            status = 1
    if (fleet is not None and args.min_speedup is not None
            and args.workers > 1):
        if fleet["speedup_vs_single"] < args.min_speedup:
            if fleet.get("cpu_limited"):
                # Parallel speedup needs as many cores as workers; on
                # smaller machines the shortfall is an environment
                # property, not a regression — same policy as the
                # cluster scaling gate.
                print("WARNING: fleet speedup %.2fx below the %.2fx "
                      "gate, but this machine has %s CPUs for %d "
                      "workers — gate waived as cpu-limited" % (
                          fleet["speedup_vs_single"], args.min_speedup,
                          fleet.get("cpu_count"), args.workers,
                      ), file=sys.stderr)
            else:
                print("FAIL: speedup %.2fx below required %.2fx "
                      "(%d workers, %s CPUs)" % (
                          fleet["speedup_vs_single"], args.min_speedup,
                          args.workers, fleet.get("cpu_count"),
                      ), file=sys.stderr)
                status = 1
    if service is not None:
        if (args.min_service_batch_gain is not None
                and args.min_service_batch_gain >= 0
                and service["batching_gain"] < args.min_service_batch_gain):
            print("FAIL: service batching gain %.2fx below required %.2fx"
                  % (service["batching_gain"], args.min_service_batch_gain),
                  file=sys.stderr)
            status = 1
        if (args.min_service_fleet_ratio is not None
                and args.min_service_fleet_ratio >= 0
                and service["vs_fleet_ratio"] < args.min_service_fleet_ratio):
            print("FAIL: service throughput is %.2fx the in-process fleet "
                  "verification rate, below the required %.2fx"
                  % (service["vs_fleet_ratio"],
                     args.min_service_fleet_ratio),
                  file=sys.stderr)
            status = 1
    if (cluster is not None and args.min_cluster_scaling is not None
            and args.min_cluster_scaling >= 0
            and cluster["scaling_vs_single"] < args.min_cluster_scaling):
        if cluster["cpu_limited"]:
            # The gate needs verifiers+1 runnable processes; with fewer
            # cores the shortfall is an environment property, not a
            # regression — same policy as the fleet speedup banner.
            print("WARNING: cluster scaling %.2fx below the %.2fx gate, "
                  "but this machine has %d CPUs for %d processes — "
                  "gate waived as cpu-limited" % (
                      cluster["scaling_vs_single"],
                      args.min_cluster_scaling,
                      cluster["cpu_count"], cluster["verifiers"] + 1,
                  ), file=sys.stderr)
        else:
            print("FAIL: cluster scaling %.2fx below required %.2fx "
                  "(%d verifiers, %d CPUs)" % (
                      cluster["scaling_vs_single"],
                      args.min_cluster_scaling,
                      cluster["verifiers"], cluster["cpu_count"],
                  ), file=sys.stderr)
            status = 1
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        base_env = baseline.get("environment", {})
        cur_env = report["environment"]
        for knob in ("cpu_count", "machine"):
            if base_env.get(knob) != cur_env.get(knob):
                # Wall-clock throughput is only loosely comparable
                # across machines; say so next to any verdict instead
                # of letting a hardware swap read as a perf change.
                print(
                    "note: baseline %s=%r differs from this machine's %r "
                    "— consider refreshing the baseline on matching "
                    "hardware" % (knob, base_env.get(knob), cur_env.get(knob)),
                    file=sys.stderr,
                )
        failures = compare_to_baseline(
            report, baseline, max_regression=args.max_regression
        )
        if failures:
            for failure in failures:
                print("FAIL: %s" % failure, file=sys.stderr)
            status = 1
        else:
            print("baseline check passed (%s)" % args.baseline)
    return status


if __name__ == "__main__":
    sys.exit(main())

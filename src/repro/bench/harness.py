"""Measurement harness: plain vs. protected generic agents.

This module regenerates the measurements behind Tables 1 and 2:

* a *plain* agent runs the three-host path unprotected, but is — like in
  the paper — "signed and verified as a whole" at each migration;
* a *protected* agent runs the same path under the
  :class:`~repro.core.protocol.ReferenceStateProtocol` (per-session
  re-execution checking by the next host, trusted hosts not checked).

Timing is decomposed into the paper's columns via
:class:`~repro.bench.metrics.TimingCollector`.  Absolute numbers differ
from the 1999 hardware/JVM numbers, but the harness reports the same
structure (four configurations × four columns, plus overhead factors)
so the shape can be compared directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.bench.metrics import TimingBreakdown, TimingCollector
from repro.core.protocol import ReferenceStateProtocol
from repro.platform.registry import JourneyResult
from repro.workloads.generators import build_generic_scenario, paper_parameter_grid

__all__ = ["MeasurementResult", "measure_generic_agent", "run_measurement_grid"]


@dataclass
class MeasurementResult:
    """Timing breakdown plus journey bookkeeping for one configuration."""

    breakdown: TimingBreakdown
    journey: JourneyResult
    protected: bool
    cycles: int
    inputs: int

    @property
    def detected_attack(self) -> bool:
        """Whether any verdict of the run reported an attack."""
        return self.journey.detected_attack()


def measure_generic_agent(
    cycles: int,
    inputs: int,
    protected: bool,
    use_fast_cycles: bool = False,
    label: Optional[str] = None,
    injectors: Optional[List[Any]] = None,
) -> MeasurementResult:
    """Run one cell of the measurement grid and return its breakdown.

    Parameters
    ----------
    cycles / inputs:
        The generic agent's two parameters.
    protected:
        Run under the reference-state protocol instead of plain.
    use_fast_cycles:
        Use the C-level cycle implementation (the "JIT" ablation).
    injectors:
        Optional attacks to mount on the untrusted middle host (used by
        detection-oriented benchmarks; the timing tables run honestly).
    """
    metrics = TimingCollector()
    scenario, agent = build_generic_scenario(
        cycles=cycles,
        input_elements=inputs,
        protected_agent=protected,
        use_fast_cycles=use_fast_cycles,
        metrics=metrics,
        middle_host_injectors=injectors,
    )
    protection = None
    if protected:
        protection = ReferenceStateProtocol(
            code_registry=scenario.system.code_registry,
            trusted_hosts=scenario.trusted_host_names,
        )

    started = time.perf_counter()
    journey = scenario.system.launch(agent, scenario.itinerary, protection=protection)
    overall_seconds = time.perf_counter() - started

    row_label = label or "%d input%s, %d cycle%s" % (
        inputs, "" if inputs == 1 else "s", cycles, "" if cycles == 1 else "s",
    )
    breakdown = TimingBreakdown.from_collector(row_label, metrics, overall_seconds)
    return MeasurementResult(
        breakdown=breakdown,
        journey=journey,
        protected=protected,
        cycles=cycles,
        inputs=inputs,
    )


def run_measurement_grid(protected: bool,
                         use_fast_cycles: bool = False) -> List[MeasurementResult]:
    """Run all four configurations of the paper's grid."""
    results = []
    for cell in paper_parameter_grid():
        results.append(
            measure_generic_agent(
                cycles=cell["cycles"],
                inputs=cell["inputs"],
                protected=protected,
                use_fast_cycles=use_fast_cycles,
                label=cell["label"],
            )
        )
    return results

"""Report generation: paper-vs-measured comparisons in Markdown.

The EXPERIMENTS.md file of the repository records, for every table and
figure of the paper, the values the paper reports next to the values the
reproduction measures.  This module produces those Markdown fragments so
the file can be regenerated from a single command::

    python -m repro.bench.reporting > EXPERIMENTS.generated.md
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.metrics import TimingBreakdown
from repro.bench.tables import (
    PAPER_OVERALL_FACTORS,
    PAPER_TABLE_1,
    PAPER_TABLE_2,
    overall_factors,
)

__all__ = ["markdown_table", "comparison_section", "generate_report"]


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a simple Markdown table."""
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _row(label: str, paper: Dict[str, float], measured: TimingBreakdown) -> List[str]:
    return [
        label,
        "%.0f" % paper["sign_verify_ms"], "%.1f" % measured.sign_verify_ms,
        "%.0f" % paper["cycle_ms"], "%.1f" % measured.cycle_ms,
        "%.0f" % paper["remainder_ms"], "%.1f" % measured.remainder_ms,
        "%.0f" % paper["overall_ms"], "%.1f" % measured.overall_ms,
    ]


def comparison_section(title: str, paper_table: Dict[str, Dict[str, float]],
                       measured: Sequence[TimingBreakdown]) -> str:
    """One table/figure section comparing paper and measured values."""
    headers = [
        "configuration",
        "sign&verify (paper)", "sign&verify (measured)",
        "cycle (paper)", "cycle (measured)",
        "remainder (paper)", "remainder (measured)",
        "overall (paper)", "overall (measured)",
    ]
    measured_by_label = {row.label: row for row in measured}
    rows = []
    for label, paper_row in paper_table.items():
        measured_row = measured_by_label.get(label)
        if measured_row is None:
            continue
        rows.append(_row(label, paper_row, measured_row))
    return "## %s\n\n%s\n" % (title, markdown_table(headers, rows))


def factor_section(protected: Sequence[TimingBreakdown],
                   plain: Sequence[TimingBreakdown]) -> str:
    """Overall overhead factors, measured vs paper."""
    measured = overall_factors(protected, plain)
    headers = ["configuration", "overall factor (paper)", "overall factor (measured)"]
    rows = []
    for label, paper_factor in PAPER_OVERALL_FACTORS.items():
        value = measured.get(label)
        rows.append([
            label,
            "%.1fx" % paper_factor,
            "%.2fx" % value if value is not None else "n/a",
        ])
    return "## Overall overhead factors\n\n%s\n" % markdown_table(headers, rows)


def generate_report(use_fast_cycles: bool = False) -> str:
    """Run both grids and produce the full Markdown comparison report."""
    # Lazy import keeps `python -m repro.bench.harness` warning-free.
    from repro.bench.harness import run_measurement_grid

    plain = [r.breakdown for r in run_measurement_grid(False, use_fast_cycles)]
    protected = [r.breakdown for r in run_measurement_grid(True, use_fast_cycles)]
    sections = [
        "# Paper-vs-measured report (generated)",
        "",
        "All times in milliseconds.  Absolute values are not comparable "
        "(1999 JVM + IAIK-JCE vs. present-day CPython + pure-Python DSA); "
        "the factors and the relative column structure are.",
        "",
        comparison_section("Table 1 — plain agents", PAPER_TABLE_1, plain),
        comparison_section("Table 2 — protected agents", PAPER_TABLE_2, protected),
        factor_section(protected, plain),
    ]
    return "\n".join(sections)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    print(generate_report())

"""Per-phase wall-time attribution for fleet runs.

``python -m repro.bench.harness --profile`` answers the question every
perf regression starts with: *where did the time go?*  A fleet run is
executed under :mod:`cProfile` and every profiled function is attributed
to one of four phases by the module it lives in:

``crypto``
    DSA signing/verification, batching, envelopes, key handling
    (:mod:`repro.crypto` minus the canonical codec).
``encode``
    Canonical encoding/decoding and hashing of states, logs, and
    transfers (:mod:`repro.crypto.canonical`, :mod:`repro.crypto.hashing`).
``trace``
    JSONL trace writing/merging (:mod:`repro.sim.trace`).
``shard``
    Unit planning, scheduling, result decoding, and merging
    (:mod:`repro.sim.shard`, :mod:`repro.sim.wire`) — the coordinator
    cost the work-stealing scheduler adds on top of raw engine time.
``engine``
    Everything else inside the library: the discrete-event engine,
    platform, agents, workloads, and checkers.

Functions outside the library (interpreter built-ins, stdlib frames
reached from library code) accumulate under ``other`` — per-phase
numbers use *tottime* (own time, callees excluded), so the phase split
is a partition: the phase seconds plus ``other`` sum to the profiled
wall time, and no cost is double-counted.

The resulting section lands in the ``repro-bench-fleet`` report so a
throughput regression in CI carries its own attribution.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from typing import Any, Dict, List

from repro.sim.fleet import FleetConfig
from repro.sim.shard import run_fleet

__all__ = [
    "PROFILE_SCHEMA",
    "classify_function",
    "profile_fleet",
]

#: Schema tag of the profile section (versioned independently of the
#: enclosing BENCH report so baseline comparison can ignore it).
PROFILE_SCHEMA = "repro-bench-profile/2"

#: Phase attribution rules, first match wins.  Paths use forward slashes
#: after normalization, so the rules are platform-independent.
_PHASE_RULES = (
    ("encode", ("repro/crypto/canonical", "repro/crypto/hashing")),
    ("crypto", ("repro/crypto/",)),
    ("trace", ("repro/sim/trace",)),
    ("shard", ("repro/sim/shard", "repro/sim/wire")),
    ("engine", ("repro/",)),
)


def classify_function(filename: str) -> str:
    """Phase name for a profiled function's source file."""
    normalized = filename.replace("\\", "/")
    for phase, needles in _PHASE_RULES:
        for needle in needles:
            if needle in normalized:
                return phase
    return "other"


def profile_fleet(
    config: FleetConfig,
    top_functions: int = 12,
) -> Dict[str, Any]:
    """Run ``config`` single-process under cProfile and attribute phases.

    Returns a JSON-ready dictionary: per-phase seconds and fractions,
    the profiled wall time, and the ``top_functions`` hottest functions
    by own time (for drill-down when a phase regresses).  Profiling is
    single-process on purpose — worker processes cannot ship frames
    back, and the phase *split* is what matters, not absolute time.
    The run goes through :func:`repro.sim.shard.run_fleet` so the
    scheduler's own cost (the ``shard`` phase) is profiled alongside
    the engine instead of being invisible overhead.
    """
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    result = run_fleet(config, workers=1)
    profiler.disable()
    wall = time.perf_counter() - started

    stats = pstats.Stats(profiler)
    phases: Dict[str, float] = {
        "crypto": 0.0, "encode": 0.0, "engine": 0.0,
        "trace": 0.0, "shard": 0.0, "other": 0.0,
    }
    rows: List[Dict[str, Any]] = []
    for (filename, lineno, name), row in stats.stats.items():
        calls, _primitive, tottime, cumtime, _callers = (
            row[0], row[1], row[2], row[3], row[4],
        )
        phase = classify_function(filename)
        phases[phase] += tottime
        rows.append({
            "function": "%s:%d:%s" % (filename, lineno, name),
            "phase": phase,
            "calls": calls,
            "own_seconds": round(tottime, 4),
            "cumulative_seconds": round(cumtime, 4),
        })
    rows.sort(key=lambda r: -r["own_seconds"])

    total = sum(phases.values())
    return {
        "schema": PROFILE_SCHEMA,
        "num_agents": config.num_agents,
        "num_hosts": config.num_hosts,
        "hops_per_journey": config.hops_per_journey,
        "seed": config.seed,
        "journeys": result.journeys,
        "wall_seconds": round(wall, 4),
        "profiled_seconds": round(total, 4),
        "phases": {name: round(seconds, 4) for name, seconds in phases.items()},
        "phase_fractions": {
            name: round(seconds / total, 4) if total else 0.0
            for name, seconds in phases.items()
        },
        "top_functions": rows[:top_functions],
    }


def format_profile(profile: Dict[str, Any]) -> str:
    """Human-readable one-screen rendering of a profile section."""
    lines = [
        "phase attribution (%d journeys, %.2fs profiled):" % (
            profile["journeys"], profile["profiled_seconds"],
        ),
    ]
    fractions = profile["phase_fractions"]
    for name, seconds in sorted(
        profile["phases"].items(), key=lambda item: -item[1]
    ):
        lines.append("  %-8s %8.3fs  %5.1f%%" % (
            name, seconds, 100.0 * fractions.get(name, 0.0),
        ))
    lines.append("hottest functions (own time):")
    for row in profile["top_functions"][:5]:
        lines.append("  %7.3fs  %s" % (
            row["own_seconds"], row["function"].rsplit("/", 1)[-1],
        ))
    return "\n".join(lines)


__all__.append("format_profile")

"""Benchmark-style reporting for fleet simulation runs.

Bridges :class:`~repro.sim.fleet.FleetResult` into the library's
existing reporting vocabulary: a
:class:`~repro.attacks.detection.DetectionReport` (so fleet-scale
coverage is comparable with the single-journey coverage suite) and
markdown tables in the style of :mod:`repro.bench.reporting`.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.attacks.detection import DetectionOutcome, DetectionReport
from repro.attacks.scenarios import scenario_by_name
from repro.bench.reporting import markdown_table
from repro.sim.fleet import FleetResult

__all__ = [
    "fleet_detection_report",
    "fleet_latency_rows",
    "fleet_summary_markdown",
]


def fleet_detection_report(result: FleetResult) -> DetectionReport:
    """Convert per-journey outcomes into a detection confusion matrix.

    A journey that visited several malicious hosts contributes one
    outcome per mounted scenario (the protocol checks every session, so
    each attack site is a separate detection opportunity); honest
    journeys contribute honest-run outcomes for the false-positive rate.
    """
    mechanism = (
        "reference-state-protocol" if result.config.protected else "unprotected"
    )
    report = DetectionReport()
    for outcome in result.outcomes:
        if not outcome.malicious_visited:
            report.add(DetectionOutcome(
                mechanism=mechanism,
                attack=None,
                detected=outcome.detected,
                blamed_hosts=outcome.blamed_hosts,
            ))
            continue
        for host, scenario_name in zip(outcome.malicious_visited,
                                       outcome.scenarios):
            scenario = scenario_by_name(scenario_name)
            report.add(DetectionOutcome(
                mechanism=mechanism,
                attack=scenario.describe(host),
                detected=outcome.detected,
                blamed_hosts=outcome.blamed_hosts,
                expected_detection=(
                    scenario.expected_detected and result.config.protected
                ),
            ))
    return report


def fleet_latency_rows(result: FleetResult) -> List[List[str]]:
    """Per-phase wall-compute and virtual-latency rows for a table."""
    phases = result.per_phase_seconds()
    total = sum(phases.values()) or 1.0
    rows = [
        [phase, "%.3f" % seconds, "%.1f%%" % (100.0 * seconds / total)]
        for phase, seconds in sorted(phases.items())
    ]
    rows.append(["total", "%.3f" % sum(phases.values()), "100.0%"])
    return rows


def fleet_summary_markdown(result: FleetResult) -> str:
    """Render a full fleet report as markdown."""
    summary = result.summary()
    detectable = sum(1 for o in result.outcomes if o.expected_detected)
    header_rows = [
        ["journeys", str(summary["journeys"])],
        ["attacked / honest", "%d / %d" % (
            summary["attacked_journeys"], summary["honest_journeys"],
        )],
        ["detection rate", (
            "%.3f" % summary["detection_rate"] if detectable
            else "n/a (no detectable attacks expected)"
        )],
        ["false positives", str(summary["false_positives"])],
        ["blame accuracy", "%.3f" % summary["blame_accuracy"]],
        ["virtual makespan (s)", "%.3f" % summary["virtual_makespan"]],
        ["journeys / virtual s", "%.1f" % summary["virtual_throughput"]],
        ["mean journey latency (s)", "%.4f" % summary["mean_journey_latency"]],
        ["events processed", str(summary["events_processed"])],
        ["wall time (s)", "%.2f" % summary["wall_seconds"]],
    ]
    sections = [
        "# Fleet simulation report",
        "",
        markdown_table(["metric", "value"], header_rows),
        "",
        "## Compute cost by phase (wall seconds)",
        "",
        markdown_table(["phase", "seconds", "share"],
                       fleet_latency_rows(result)),
    ]
    if result.verifier_stats:
        stats: Dict[str, Any] = result.verifier_stats
        sections += [
            "",
            "## Batched verification",
            "",
            markdown_table(
                ["metric", "value"],
                [
                    ["verified", str(stats.get("verified", 0))],
                    ["failed", str(stats.get("failed", 0))],
                    ["batches", str(stats.get("batches", 0))],
                    ["cache hits", str(stats.get("cache", {}).get("hits", 0))],
                ],
            ),
        ]
    return "\n".join(sections) + "\n"

"""Rendering Tables 1 and 2 (and the paper's reference values).

``python -m repro.bench.tables --table 1`` regenerates Table 1 (plain
agents), ``--table 2`` regenerates Table 2 (protected agents, with the
overhead factors relative to a freshly measured Table 1), and
``--table both`` prints both plus a side-by-side comparison of measured
overall overhead factors against the paper's.

``--table detectability`` runs a small adversarial campaign
(:mod:`repro.sim.campaign`) and renders the paper-style detectability
table: one row per mounted attack scenario with its Figure-2 area,
expected detectability class, and the measured detection rate and mean
hops-to-detection.

``--table service`` and ``--table cluster`` read a harness report
(``--report``) and render the verification-service and
verification-cluster benchmark sections (legs, scaling, failover,
parity) as fixed-width tables.

``--table backends`` reads a harness report (``--report``) and renders
the crypto-backend comparison: one row per measured
:mod:`repro.crypto.backend` implementation with its sign / verify /
batch-verify costs, annotated with which backend is active.

``--table workers`` reads a harness report (``--report``) and renders
the fleet section's work-stealing diagnostics: per-run useful-work vs
busy fractions and the per-worker units / warmup / compute / serialize
split, plus the coordinator merge time.
"""

from __future__ import annotations

import argparse
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.bench.metrics import TimingBreakdown

if TYPE_CHECKING:  # lazy: keeps `python -m repro.bench.harness` warning-free
    from repro.bench.harness import MeasurementResult
    from repro.sim.campaign import CampaignResult

__all__ = [
    "PAPER_TABLE_1",
    "PAPER_TABLE_2",
    "PAPER_OVERALL_FACTORS",
    "NOT_APPLICABLE",
    "metric_cell",
    "format_table",
    "format_overhead_table",
    "format_backend_table",
    "format_cluster_table",
    "format_detectability_table",
    "format_service_table",
    "format_workers_table",
    "overall_factors",
    "main",
]

#: Table 1 of the paper: plain agents, times in milliseconds.
PAPER_TABLE_1: Dict[str, Dict[str, float]] = {
    "1 input, 1 cycle": {
        "sign_verify_ms": 209, "cycle_ms": 2, "remainder_ms": 93, "overall_ms": 304,
    },
    "100 inputs, 1 cycle": {
        "sign_verify_ms": 409, "cycle_ms": 3, "remainder_ms": 153, "overall_ms": 564,
    },
    "1 input, 10000 cycles": {
        "sign_verify_ms": 217, "cycle_ms": 27158, "remainder_ms": 93,
        "overall_ms": 27468,
    },
    "100 inputs, 10000 cycles": {
        "sign_verify_ms": 400, "cycle_ms": 27235, "remainder_ms": 155,
        "overall_ms": 27789,
    },
}

#: Table 2 of the paper: protected agents, times in milliseconds.
PAPER_TABLE_2: Dict[str, Dict[str, float]] = {
    "1 input, 1 cycle": {
        "sign_verify_ms": 237, "cycle_ms": 3, "remainder_ms": 345, "overall_ms": 584,
    },
    "100 inputs, 1 cycle": {
        "sign_verify_ms": 560, "cycle_ms": 4, "remainder_ms": 670, "overall_ms": 1234,
    },
    "1 input, 10000 cycles": {
        "sign_verify_ms": 235, "cycle_ms": 36353, "remainder_ms": 341,
        "overall_ms": 36929,
    },
    "100 inputs, 10000 cycles": {
        "sign_verify_ms": 472, "cycle_ms": 36272, "remainder_ms": 1983,
        "overall_ms": 38727,
    },
}

#: The paper's overall overhead factors (Table 2, bracketed values).
PAPER_OVERALL_FACTORS: Dict[str, float] = {
    "1 input, 1 cycle": 1.9,
    "100 inputs, 1 cycle": 2.2,
    "1 input, 10000 cycles": 1.3,
    "100 inputs, 10000 cycles": 1.4,
}

_COLUMNS = ("sign_verify_ms", "cycle_ms", "remainder_ms", "overall_ms")
_COLUMN_TITLES = ("sign & verify", "cycle", "remainder", "overall")


def format_table(breakdowns: Sequence[TimingBreakdown], title: str) -> str:
    """Render measured breakdowns as a fixed-width text table (in ms)."""
    header = "%-28s %14s %14s %14s %14s" % ((title,) + _COLUMN_TITLES)
    lines = [header, "-" * len(header)]
    for row in breakdowns:
        lines.append(
            "%-28s %14.1f %14.1f %14.1f %14.1f" % (
                row.label, row.sign_verify_ms, row.cycle_ms,
                row.remainder_ms, row.overall_ms,
            )
        )
    return "\n".join(lines)


def format_overhead_table(
    protected: Sequence[TimingBreakdown],
    plain: Sequence[TimingBreakdown],
    title: str = "protected agents (overhead factor vs plain)",
) -> str:
    """Render protected breakdowns annotated with overhead factors."""
    plain_by_label = {row.label: row for row in plain}
    header = "%-28s %20s %20s %20s %20s" % ((title,) + _COLUMN_TITLES)
    lines = [header, "-" * len(header)]
    for row in protected:
        baseline = plain_by_label.get(row.label)
        factors = row.overhead_factors(baseline) if baseline else {}

        def cell(value_ms: float, key: str) -> str:
            factor = factors.get(key)
            if factor is None:
                return "%13.1f ( -- )" % value_ms
            return "%13.1f (%4.1f)" % (value_ms, factor)

        lines.append("%-28s %s %s %s %s" % (
            row.label,
            cell(row.sign_verify_ms, "sign_verify"),
            cell(row.cycle_ms, "cycle"),
            cell(row.remainder_ms, "remainder"),
            cell(row.overall_ms, "overall"),
        ))
    return "\n".join(lines)


def overall_factors(protected: Sequence[TimingBreakdown],
                    plain: Sequence[TimingBreakdown]) -> Dict[str, Optional[float]]:
    """Measured overall overhead factor per configuration label."""
    plain_by_label = {row.label: row for row in plain}
    factors: Dict[str, Optional[float]] = {}
    for row in protected:
        baseline = plain_by_label.get(row.label)
        if baseline is None or baseline.overall_ms <= 0:
            factors[row.label] = None
        else:
            factors[row.label] = row.overall_ms / baseline.overall_ms
    return factors


#: Placeholder for metrics that are undefined on a row (no detections →
#: no mean hops-to-detection; no alarms → no precision).  An em-dash
#: reads as "not applicable" where a literal ``None`` (or ``nan``)
#: would read as a bug in the table.
NOT_APPLICABLE = "—"


def metric_cell(value: Optional[float], fmt: str = "%.2f") -> str:
    """Format an optional metric, rendering ``None`` as an em-dash."""
    return fmt % value if value is not None else NOT_APPLICABLE


def format_detectability_table(
    campaign: "CampaignResult",
    title: str = "Detectability under reference states",
) -> str:
    """Render a campaign's per-scenario detection matrix as text.

    One row per mounted scenario (Figure-2 area, expected detectability
    class, detected / injected, precision, mean hops-to-detection),
    followed by a rollup per detectability class and the benign
    false-positive rate — the campaign analogue of the paper's Section 4
    coverage discussion.  Undefined cells (``precision`` or
    ``mean_hops_to_detection`` of a scenario that never alarmed) render
    as :data:`NOT_APPLICABLE` rather than ``None``.
    """
    header = "%-24s %-6s %-20s %-10s %9s %10s %12s" % (
        title, "area", "class", "expected", "detected", "precision",
        "hops-to-det",
    )
    lines = [header, "-" * len(header)]
    for name, stats in sorted(campaign.per_scenario().items()):
        lines.append("%-24s %-6d %-20s %-10s %9s %10s %12s" % (
            name,
            stats.area.value,
            stats.detectability.value,
            "yes" if stats.expected_detected else "no",
            "%d/%d" % (stats.detected, stats.injected),
            metric_cell(stats.precision),
            metric_cell(stats.mean_hops_to_detection, "%.1f"),
        ))
    lines.append("")
    for class_name, row in sorted(campaign.detectability_matrix().items()):
        lines.append("%-28s areas %-12s %3d/%3d detected (%s)" % (
            class_name,
            ",".join(str(a) for a in row["areas"]),
            row["detected"], row["mounted"],
            metric_cell(row["detection_rate"]),
        ))
    lines.append("benign journeys: %d, false-positive rate %.4f" % (
        len(campaign.benign_journeys), campaign.false_positive_rate,
    ))
    return "\n".join(lines)


def format_service_table(
    section: Dict[str, object],
    title: str = "Verification service",
) -> str:
    """Render the harness's ``service`` benchmark section as text.

    One row per measured leg (batched, batch-size-1, cached replay,
    session checks), followed by the derived ratios the CI perf job
    gates on, the batch-size histogram, and the parity line — the
    service analogue of the paper-table renderers above.
    """
    header = "%-42s %9s %10s %10s %10s" % (
        title, "requests", "rps", "p50 [ms]", "p99 [ms]",
    )
    lines = [header, "-" * len(header)]
    rows = (
        ("batched (window %s)" % section.get("max_batch"), "batched"),
        ("batch size 1", "batch_size_1"),
        ("cached replay", "cached"),
        ("session checks", "sessions"),
    )
    for label, key in rows:
        leg = section.get(key)
        if not isinstance(leg, dict):
            continue
        latency = leg.get("latency_ms", {})
        lines.append("%-42s %9d %10.1f %10s %10s" % (
            label, leg.get("requests", 0), leg.get("rps", 0.0),
            metric_cell(latency.get("p50")),
            metric_cell(latency.get("p99")),
        ))
    lines.append("")
    in_process = section.get("in_process", {})
    cached = section.get("cached", {})
    lines.append("batching gain vs batch size 1: %s" % metric_cell(
        section.get("batching_gain"), "%.2fx",
    ))
    lines.append("in-process fleet verification rate: %s/s "
                 "(service at %s of it)" % (
                     metric_cell(in_process.get("fleet_verification_rate"),
                                 "%.1f"),
                     metric_cell(section.get("vs_fleet_ratio"), "%.2fx"),
                 ))
    lines.append("verdict cache hit rate on replay: %s" % metric_cell(
        cached.get("cache_hit_rate"), "%.2f",
    ))
    histogram = section.get("batched", {}).get("batch_histogram", {})
    if histogram:
        cells = ", ".join(
            "%s×%s" % (size, count)
            for size, count in sorted(
                histogram.items(), key=lambda pair: int(pair[0])
            )
        )
        lines.append("batch-size histogram (size×windows): %s" % cells)
    parity = section.get("parity", {})
    lines.append(
        "parity vs in-process verdicts: %s verify + %s sessions checked, "
        "%s mismatches, %s dropped" % (
            parity.get("verify_checked", 0),
            parity.get("sessions_checked", 0),
            parity.get("mismatches", 0),
            parity.get("dropped", 0),
        )
    )
    return "\n".join(lines)


def format_cluster_table(
    section: Dict[str, object],
    title: str = "Verification cluster",
) -> str:
    """Render the harness's ``cluster`` benchmark section as text.

    One row per measured leg (single verifier, N verifiers, the
    mid-run SIGKILL failover drill), then the scaling ratio the CI perf
    job gates on — flagged when the machine had too few CPUs for the
    processes to actually run in parallel — and the failover and parity
    lines.
    """
    header = "%-42s %9s %10s %10s %10s" % (
        title, "requests", "rps", "p50 [ms]", "p99 [ms]",
    )
    lines = [header, "-" * len(header)]
    verifiers = section.get("verifiers", "?")
    rows = (
        ("1 verifier", "single"),
        ("%s verifiers" % verifiers, "scaled"),
        ("failover (SIGKILL mid-run)", "failover"),
    )
    for label, key in rows:
        leg = section.get(key)
        if not isinstance(leg, dict):
            continue
        latency = leg.get("latency_ms", {})
        lines.append("%-42s %9d %10.1f %10s %10s" % (
            label, leg.get("requests", 0), leg.get("rps", 0.0),
            metric_cell(latency.get("p50")),
            metric_cell(latency.get("p99")),
        ))
    lines.append("")
    lines.append("scaling vs single verifier: %s%s" % (
        metric_cell(section.get("scaling_vs_single"), "%.2fx"),
        "  [cpu-limited: %s CPUs]" % section.get("cpu_count")
        if section.get("cpu_limited") else "",
    ))
    failover = section.get("failover")
    if isinstance(failover, dict):
        lines.append(
            "failover: killed %s after %ss — %s failovers, %s reissues, "
            "%s mismatches, %s dropped" % (
                failover.get("killed", "?"),
                failover.get("kill_after_seconds", "?"),
                failover.get("failovers", 0), failover.get("reissues", 0),
                failover.get("mismatches", 0), failover.get("dropped", 0),
            )
        )
    parity = section.get("parity", {})
    lines.append(
        "parity vs in-process verdicts: %s checked, %s mismatches, "
        "%s dropped" % (
            parity.get("verify_checked", 0),
            parity.get("mismatches", 0),
            parity.get("dropped", 0),
        )
    )
    return "\n".join(lines)


def format_workers_table(
    section: Dict[str, object],
    title: str = "Fleet worker scheduling",
) -> str:
    """Render the harness's ``fleet`` section's scheduling diagnostics.

    One block per measured run (``workers_1``, ``workers_N``): the
    useful-parallel-work utilization next to the wall-clock busy
    fraction, then one row per worker with its units / warmup /
    compute / serialize split and the coordinator merge time — the
    whole overhead budget of the work-stealing scheduler on one screen.
    Every run renders through the same path; ``worker_utilization`` is
    a plain float for single- and multi-worker runs alike.
    """
    lines = [title, "=" * len(title)]
    lines.append("speedup vs single: %s%s" % (
        metric_cell(section.get("speedup_vs_single"), "%.2fx"),
        "  [cpu-limited: %s CPUs]" % section.get("cpu_count")
        if section.get("cpu_limited") else "",
    ))
    runs = section.get("runs")
    runs = runs if isinstance(runs, dict) else {}
    for key in sorted(runs):
        run = runs[key]
        if not isinstance(run, dict):
            continue
        util = run.get("worker_utilization")
        busy = run.get("busy_fraction")
        lines.append("")
        lines.append("%s (%s): wall %ss, useful-work %s, busy %s" % (
            key, run.get("scheduler", "?"),
            metric_cell(run.get("wall_seconds")),
            metric_cell(100 * util if util is not None else None, "%.0f%%"),
            metric_cell(100 * busy if busy is not None else None, "%.0f%%"),
        ))
        header = "  %-8s %6s %9s %12s %12s %12s" % (
            "worker", "units", "journeys", "warmup [s]",
            "compute [s]", "serialize [s]",
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        detail = run.get("workers_detail")
        for entry in detail if isinstance(detail, list) else []:
            lines.append("  %-8s %6s %9s %12s %12s %12s" % (
                entry.get("worker", "?"),
                entry.get("units", 0),
                entry.get("journeys", 0),
                metric_cell(entry.get("warmup_seconds")),
                metric_cell(entry.get("compute_seconds")),
                metric_cell(entry.get("serialize_seconds")),
            ))
        lines.append("  coordinator merge: %ss" % metric_cell(
            run.get("merge_seconds"), "%.3f",
        ))
    return "\n".join(lines)


def format_backend_table(
    section: Dict[str, object],
    title: str = "Crypto backends",
) -> str:
    """Render the harness's ``crypto`` benchmark section as text.

    One row per backend measured by
    :func:`repro.bench.harness.bench_crypto_backends`, with the active
    backend starred; the footer restates the bit-identity guarantee the
    section enforced (every backend produced byte-identical signatures
    and verdicts before any timing was kept).
    """
    header = "%-18s %14s %16s %22s" % (
        title, "sign [µs/op]", "verify [µs/it]", "batch verify [µs/it]",
    )
    lines = [header, "-" * len(header)]
    active = section.get("active_backend")
    backends = section.get("backends")
    backends = backends if isinstance(backends, dict) else {}
    for name in sorted(backends):
        leg = backends[name]
        if not isinstance(leg, dict):
            continue
        label = "%s %s" % ("*" if name == active else " ", name)
        lines.append("%-18s %14s %16s %22s" % (
            label,
            metric_cell(leg.get("sign_us_per_op"), "%.1f"),
            metric_cell(leg.get("verify_us_per_item"), "%.1f"),
            metric_cell(leg.get("batch_verify_us_per_item"), "%.1f"),
        ))
    lines.append("")
    lines.append("workload: %s signatures from %s signers (best of %s)" % (
        section.get("signatures", "?"), section.get("signers", "?"),
        section.get("repeats", "?"),
    ))
    available = section.get("available_backends")
    if isinstance(available, (list, tuple)):
        lines.append("available backends: %s (* = active)"
                     % ", ".join(str(name) for name in available))
    if section.get("identical_signatures"):
        lines.append("bit-identity: all backends produced identical "
                     "signatures and verdicts")
    return "\n".join(lines)


def paper_reference_breakdowns(table: Dict[str, Dict[str, float]]
                               ) -> List[TimingBreakdown]:
    """The paper's reference numbers as breakdown rows (for reports)."""
    rows = []
    for label, columns in table.items():
        rows.append(TimingBreakdown(
            label=label,
            sign_verify_ms=columns["sign_verify_ms"],
            cycle_ms=columns["cycle_ms"],
            remainder_ms=columns["remainder_ms"],
            overall_ms=columns["overall_ms"],
        ))
    return rows


def _breakdowns(results: Sequence[MeasurementResult]) -> List[TimingBreakdown]:
    return [result.breakdown for result in results]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command line entry point: regenerate Table 1 and/or Table 2."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--table",
                        choices=("1", "2", "both", "detectability",
                                 "service", "cluster", "backends",
                                 "workers"),
                        default="both",
                        help="which table to regenerate")
    parser.add_argument("--report", default="BENCH_fleet.json",
                        metavar="PATH",
                        help="harness report to read for --table "
                             "service/cluster/backends/workers "
                             "(default: BENCH_fleet.json)")
    parser.add_argument("--fast-cycles", action="store_true",
                        help="use the C-level cycle loop (JIT ablation)")
    parser.add_argument("--campaign-agents", type=int, default=120,
                        help="campaign size for --table detectability "
                             "(default: 120)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed for --table detectability")
    options = parser.parse_args(argv)

    if options.table in ("service", "cluster", "backends", "workers"):
        import json

        section_name = {
            "service": "service", "cluster": "cluster",
            "backends": "crypto", "workers": "fleet",
        }[options.table]
        try:
            with open(options.report, "r", encoding="utf-8") as handle:
                report = json.load(handle)
        except OSError as exc:
            print("cannot read %s (%s); run `python -m repro.bench.harness "
                  "--sections %s` first"
                  % (options.report, exc, section_name))
            return 1
        section = report.get("benchmarks", {}).get(section_name)
        if section is None:
            print("report %s has no %s section; re-run the harness "
                  "with %s in --sections"
                  % (options.report, section_name, section_name))
            return 1
        if options.table == "service":
            print(format_service_table(section))
        elif options.table == "cluster":
            print(format_cluster_table(section))
        elif options.table == "workers":
            print(format_workers_table(section))
        else:
            print(format_backend_table(section))
        return 0

    if options.table == "detectability":
        from repro.sim.campaign import campaign_config, run_campaign

        campaign = run_campaign(campaign_config(
            num_agents=options.campaign_agents,
            num_hosts=10,
            hops_per_journey=3,
            attack_fraction=0.35,
            seed=options.seed,
            batched_verification=True,
        ))
        print(format_detectability_table(campaign))
        return 0

    from repro.bench.harness import run_measurement_grid

    plain = run_measurement_grid(protected=False,
                                 use_fast_cycles=options.fast_cycles)
    output: List[str] = []

    if options.table in ("1", "both"):
        output.append(format_table(_breakdowns(plain),
                                   "Table 1: plain agents [ms]"))
    if options.table in ("2", "both"):
        protected = run_measurement_grid(protected=True,
                                         use_fast_cycles=options.fast_cycles)
        output.append("")
        output.append(format_overhead_table(
            _breakdowns(protected), _breakdowns(plain),
            "Table 2: protected agents [ms]",
        ))
        output.append("")
        output.append("Overall overhead factors (measured vs paper):")
        measured = overall_factors(_breakdowns(protected), _breakdowns(plain))
        for label, factor in measured.items():
            paper_value = PAPER_OVERALL_FACTORS.get(label)
            output.append("  %-28s measured %.2fx   paper %.1fx" % (
                label, factor if factor is not None else float("nan"),
                paper_value if paper_value is not None else float("nan"),
            ))

    print("\n".join(output))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())

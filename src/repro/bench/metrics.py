"""Timing metrics: decomposing execution cost like the paper's tables.

Tables 1 and 2 report, per agent configuration, the time spent on

* ``sign & verify`` — computing and verifying message signatures,
* ``cycle`` — the agent's summation cycles,
* ``remainder`` — everything else (state comparison, per-state signing
  of the protocol, serialization, bookkeeping),
* ``overall`` — from the start of the execution on the first host to
  the end of the execution on the last host.

The :class:`TimingCollector` is a category → accumulated-seconds map
with a context-manager interface; hosts charge signature work to
``sign_verify`` and the generic agent charges its summation loop to
``cycle``.  The harness measures ``overall`` around the whole journey
and derives ``remainder`` by subtraction, exactly as the paper does.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

__all__ = ["TimingCollector", "TimingBreakdown", "CATEGORY_SIGN_VERIFY",
           "CATEGORY_CYCLE"]

#: Category name for signature computation and verification.
CATEGORY_SIGN_VERIFY = "sign_verify"
#: Category name for the agent's computation cycles.
CATEGORY_CYCLE = "cycle"


class TimingCollector:
    """Accumulates wall-clock time per category."""

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def measure(self, category: str) -> Iterator[None]:
        """Context manager charging the elapsed time to ``category``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(category, time.perf_counter() - start)

    def add(self, category: str, seconds: float) -> None:
        """Charge ``seconds`` to ``category`` directly."""
        self._totals[category] = self._totals.get(category, 0.0) + seconds
        self._counts[category] = self._counts.get(category, 0) + 1

    def total(self, category: str) -> float:
        """Accumulated seconds for ``category`` (0.0 if never charged)."""
        return self._totals.get(category, 0.0)

    def total_ms(self, category: str) -> float:
        """Accumulated milliseconds for ``category``."""
        return self.total(category) * 1000.0

    def count(self, category: str) -> int:
        """How many intervals were charged to ``category``."""
        return self._counts.get(category, 0)

    def categories(self) -> tuple:
        """All categories that received charges, sorted."""
        return tuple(sorted(self._totals))

    def reset(self) -> None:
        """Clear all accumulated totals."""
        self._totals.clear()
        self._counts.clear()

    def merge(self, other: "TimingCollector") -> None:
        """Add another collector's totals into this one."""
        for category, seconds in other._totals.items():
            self._totals[category] = self._totals.get(category, 0.0) + seconds
        for category, count in other._counts.items():
            self._counts[category] = self._counts.get(category, 0) + count


@dataclass(frozen=True)
class TimingBreakdown:
    """One row of Table 1 / Table 2: the per-category milliseconds."""

    label: str
    sign_verify_ms: float
    cycle_ms: float
    remainder_ms: float
    overall_ms: float

    @classmethod
    def from_collector(cls, label: str, collector: TimingCollector,
                       overall_seconds: float) -> "TimingBreakdown":
        """Derive a breakdown from a collector plus the overall wall time.

        ``remainder`` is overall minus the explicitly attributed
        categories, floored at zero (timer granularity can make the sum
        of parts marginally exceed the whole for very short runs).
        """
        sign_verify = collector.total(CATEGORY_SIGN_VERIFY)
        cycle = collector.total(CATEGORY_CYCLE)
        remainder = max(0.0, overall_seconds - sign_verify - cycle)
        return cls(
            label=label,
            sign_verify_ms=sign_verify * 1000.0,
            cycle_ms=cycle * 1000.0,
            remainder_ms=remainder * 1000.0,
            overall_ms=overall_seconds * 1000.0,
        )

    def overhead_factors(self, baseline: "TimingBreakdown") -> Dict[str, Optional[float]]:
        """Per-column overhead factors relative to a baseline breakdown.

        Columns whose baseline is (close to) zero yield ``None`` instead
        of an explosion — the paper's tables face the same issue for the
        tiny cycle columns and simply report small absolute numbers.
        """
        def factor(ours: float, theirs: float) -> Optional[float]:
            if theirs <= 1e-9:
                return None
            return ours / theirs

        return {
            "sign_verify": factor(self.sign_verify_ms, baseline.sign_verify_ms),
            "cycle": factor(self.cycle_ms, baseline.cycle_ms),
            "remainder": factor(self.remainder_ms, baseline.remainder_ms),
            "overall": factor(self.overall_ms, baseline.overall_ms),
        }

    def as_dict(self) -> Dict[str, float]:
        """Plain dictionary form (reports, JSON dumps)."""
        return {
            "label": self.label,
            "sign_verify_ms": self.sign_verify_ms,
            "cycle_ms": self.cycle_ms,
            "remainder_ms": self.remainder_ms,
            "overall_ms": self.overall_ms,
        }

"""Mobile agents: code identity, state, and lifecycle callbacks.

The agent model follows the paper (Section 2.1) and the Mole platform it
was prototyped on:

* an agent consists of **code** (a registered :class:`MobileAgent`
  subclass), a **data state** (:class:`~repro.agents.state.DataState`),
  and a manually encoded **execution state**
  (:class:`~repro.agents.state.ExecutionState`) — weak migration;
* the host calls a start procedure after every migration — here the
  :meth:`MobileAgent.run` method with an
  :class:`~repro.agents.context.ExecutionContext`;
* the protection framework's callbacks (``checkAfterSession`` /
  ``checkAfterTask``) are methods on the agent that the host invokes at
  the corresponding checking moments.

Because re-execution based checking must be able to *re-instantiate the
agent's code* on a different host, agent classes are registered by name
in the :class:`AgentCodeRegistry`; the transfer payload carries only the
code name (plus the state), exactly as the paper assumes the agent code
to be available or cacheable at the destination.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional, Type

from repro.agents.context import ExecutionContext
from repro.agents.state import AgentState, DataState, ExecutionState
from repro.exceptions import AgentError, ConfigurationError

__all__ = ["MobileAgent", "AgentCodeRegistry", "default_registry", "register_agent"]


class MobileAgent:
    """Base class for all mobile agents.

    Subclasses implement :meth:`run` using only the passed
    :class:`~repro.agents.context.ExecutionContext` for anything
    external, and store all persistent variables in ``self.data`` /
    ``self.execution`` so the state can be captured and transported.

    Class attributes
    ----------------
    code_name:
        The registered code identity.  Defaults to the class name.
    """

    code_name: Optional[str] = None

    _id_counter = itertools.count(1)

    def __init__(self, initial_data: Optional[Dict[str, Any]] = None,
                 owner: str = "owner", agent_id: Optional[str] = None) -> None:
        #: The agent's data state (instance variables, in the paper's terms).
        self.data = DataState(initial_data)
        #: The agent's manually encoded execution state (weak migration).
        self.execution = ExecutionState()
        #: Name of the principal the agent acts for.
        self.owner = owner
        #: Globally unique agent instance identifier.
        self.agent_id = agent_id or "%s/%s-%d" % (
            owner, self.get_code_name(), next(self._id_counter)
        )

    # -- code identity -----------------------------------------------------

    @classmethod
    def get_code_name(cls) -> str:
        """Return the registered code identity of this agent class."""
        return cls.code_name or cls.__name__

    # -- behaviour -----------------------------------------------------------

    def run(self, context: ExecutionContext) -> None:
        """Execute one session on the current host.

        Subclasses must override this.  The method is called once per
        hop (weak migration start procedure); the agent advances its own
        ``execution.hop_index`` bookkeeping via the platform, not here.
        """
        raise NotImplementedError(
            "%s does not implement run()" % type(self).__name__
        )

    # -- protection framework callbacks (Fig. 4) ------------------------------

    def check_after_session(self, check_context) -> Optional[Any]:
        """Called by the host as the first action when the agent arrives.

        This is the framework's ``checkAfterSession`` callback.  The
        default implementation does nothing and returns ``None`` (no
        verdict); protected agents override it or inherit an override
        from :class:`repro.core.framework.ProtectedAgentMixin`.
        """
        return None

    def check_after_task(self, check_context) -> Optional[Any]:
        """Called by the last host after the agent finished its task.

        This is the framework's ``checkAfterTask`` callback; see
        :meth:`check_after_session`.
        """
        return None

    # -- state capture / restore ----------------------------------------------

    def capture_state(self) -> AgentState:
        """Snapshot the agent's variable parts (a candidate reference state)."""
        return AgentState.capture(self.data, self.execution)

    def restore_state(self, state: AgentState) -> None:
        """Replace the agent's variable parts with a snapshot."""
        self.data, self.execution = state.restore()

    # -- convenience ------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<%s id=%r hop=%d finished=%s>" % (
            type(self).__name__,
            self.agent_id,
            self.execution.hop_index,
            self.execution.finished,
        )


class AgentCodeRegistry:
    """Maps code identities to agent classes.

    Hosts use the registry to instantiate an agent from a transfer
    payload, and checkers use it to re-instantiate the *same code* for
    re-execution.  The registry models the paper's assumption that agent
    code is either shipped alongside or already cached at the host; in
    both cases the code a checker runs is the reference code, not
    whatever a malicious host claims to have run.
    """

    def __init__(self) -> None:
        self._classes: Dict[str, Type[MobileAgent]] = {}

    def register(self, agent_class: Type[MobileAgent]) -> Type[MobileAgent]:
        """Register an agent class under its code name.

        Can be used as a decorator.  Re-registering the same class is a
        no-op; registering a *different* class under an existing name is
        an error (code identities must be unambiguous for checking to
        mean anything).
        """
        if not (isinstance(agent_class, type) and issubclass(agent_class, MobileAgent)):
            raise ConfigurationError(
                "only MobileAgent subclasses can be registered as agent code"
            )
        name = agent_class.get_code_name()
        existing = self._classes.get(name)
        if existing is not None and existing is not agent_class:
            raise ConfigurationError(
                "agent code name %r is already registered to %r"
                % (name, existing.__name__)
            )
        self._classes[name] = agent_class
        return agent_class

    def get(self, code_name: str) -> Type[MobileAgent]:
        """Return the class registered under ``code_name``.

        Raises
        ------
        AgentError
            If the code name is unknown.
        """
        try:
            return self._classes[code_name]
        except KeyError as exc:
            raise AgentError("unknown agent code %r" % code_name) from exc

    def __contains__(self, code_name: str) -> bool:
        return code_name in self._classes

    def names(self) -> tuple:
        """All registered code names, sorted."""
        return tuple(sorted(self._classes))

    def instantiate(self, code_name: str, state: AgentState,
                    owner: str, agent_id: str) -> MobileAgent:
        """Create an agent instance from its code name and a state snapshot."""
        agent_class = self.get(code_name)
        agent = agent_class(owner=owner, agent_id=agent_id)
        agent.restore_state(state)
        return agent


#: Process-wide default registry.  Library workloads and examples
#: register their agent classes here; scenario builders may also create
#: isolated registries for tests.
default_registry = AgentCodeRegistry()


def register_agent(agent_class: Type[MobileAgent]) -> Type[MobileAgent]:
    """Class decorator registering an agent in the default registry."""
    return default_registry.register(agent_class)

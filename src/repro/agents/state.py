"""Agent state: the "variable parts" of a mobile agent.

The paper's agent model (Section 2.1) splits an agent into *code*, a
*data state* (e.g. instance variables), and an *execution state*.  With
weak migration — the migration style the framework targets — the
execution state is not captured automatically; the programmer encodes it
manually into variables that are transported with the data state.

:class:`AgentState` is therefore the reproduction's notion of a
**reference state**: the combination of the variable parts of an agent
after an execution session.  States snapshot to plain dictionaries of
canonical values, hash deterministically, and compare exactly.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

from repro.crypto.canonical import canonical_encode, canonical_equal
from repro.crypto.hashing import HashCache, StateDigest, hash_bytes
from repro.exceptions import AgentStateError

__all__ = [
    "DataState",
    "ExecutionState",
    "AgentState",
    "encoding_cache_stats",
    "state_diff",
]

#: Shared memo for state encodings: snapshots are immutable by
#: contract, so every digest/equality/size check of the same snapshot
#: object reuses one canonical encoding (the hot path of fleet-scale
#: checking).  Entries die with their states via weak references.
_ENCODING_CACHE = HashCache()


def encoding_cache_stats() -> Dict[str, Any]:
    """Hit/miss statistics of the process-wide state-encoding cache.

    The benchmark harness samples this before and after a fleet run to
    report the canonical-hash cache hit rate of real checking traffic.
    """
    return _ENCODING_CACHE.stats()


class DataState:
    """The agent's data variables (instance variables in the paper).

    Behaves like a dictionary restricted to canonical values.  Values
    are deep-copied on snapshot so that later mutation by the agent (or
    by a malicious host) cannot retroactively change a captured
    reference state.
    """

    def __init__(self, initial: Optional[Dict[str, Any]] = None) -> None:
        self._variables: Dict[str, Any] = dict(initial or {})

    def __getitem__(self, key: str) -> Any:
        try:
            return self._variables[key]
        except KeyError as exc:
            raise AgentStateError("agent data variable %r is not set" % key) from exc

    def __setitem__(self, key: str, value: Any) -> None:
        if not isinstance(key, str):
            raise AgentStateError("agent data variables must have string names")
        self._variables[key] = value

    def __delitem__(self, key: str) -> None:
        self._variables.pop(key, None)

    def __contains__(self, key: str) -> bool:
        return key in self._variables

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._variables))

    def __len__(self) -> int:
        return len(self._variables)

    def get(self, key: str, default: Any = None) -> Any:
        """Return a variable or ``default`` if it is not set."""
        return self._variables.get(key, default)

    def set_default(self, key: str, default: Any) -> Any:
        """Set ``key`` to ``default`` if missing; return its value."""
        return self._variables.setdefault(key, default)

    def update(self, values: Dict[str, Any]) -> None:
        """Bulk-set variables from a dictionary."""
        for key, value in values.items():
            self[key] = value

    def snapshot(self) -> Dict[str, Any]:
        """Return a deep copy of the variables as a plain dictionary."""
        return copy.deepcopy(self._variables)

    def to_canonical(self) -> Dict[str, Any]:
        return self.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DataState(%r)" % (self._variables,)


class ExecutionState:
    """Manually encoded execution state (weak migration).

    The framework only needs two well-known fields — which hop the agent
    is on and whether it considers its task finished — but agents may
    store arbitrary additional fields (e.g. a phase marker for a
    multi-phase protocol).
    """

    def __init__(self, initial: Optional[Dict[str, Any]] = None) -> None:
        self._fields: Dict[str, Any] = {"hop_index": 0, "finished": False}
        if initial:
            self._fields.update(initial)

    @property
    def hop_index(self) -> int:
        """Zero-based index of the current hop along the itinerary."""
        return int(self._fields["hop_index"])

    @hop_index.setter
    def hop_index(self, value: int) -> None:
        self._fields["hop_index"] = int(value)

    @property
    def finished(self) -> bool:
        """Whether the agent has declared its task complete."""
        return bool(self._fields["finished"])

    @finished.setter
    def finished(self, value: bool) -> None:
        self._fields["finished"] = bool(value)

    def __getitem__(self, key: str) -> Any:
        return self._fields[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self._fields[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        """Return a field or ``default`` if it is not set."""
        return self._fields.get(key, default)

    def snapshot(self) -> Dict[str, Any]:
        """Return a deep copy of all fields."""
        return copy.deepcopy(self._fields)

    def to_canonical(self) -> Dict[str, Any]:
        return self.snapshot()


@dataclass(frozen=True)
class AgentState:
    """An immutable snapshot of an agent's variable parts.

    This is exactly the object the paper calls a *state* — and, when it
    was produced by a reference host, a *reference state*.
    """

    data: Dict[str, Any] = field(default_factory=dict)
    execution: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def capture(cls, data: DataState, execution: ExecutionState) -> "AgentState":
        """Snapshot live data + execution state into an immutable value."""
        return cls(data=data.snapshot(), execution=execution.snapshot())

    def restore(self) -> tuple:
        """Materialize fresh live state objects from this snapshot."""
        return (
            DataState(copy.deepcopy(self.data)),
            ExecutionState(copy.deepcopy(self.execution)),
        )

    def to_canonical(self) -> Dict[str, Any]:
        return {"data": self.data, "execution": self.execution}

    @classmethod
    def from_canonical(cls, value: Dict[str, Any]) -> "AgentState":
        try:
            return cls(
                data=dict(value["data"]), execution=dict(value["execution"])
            )
        except (KeyError, TypeError) as exc:
            raise AgentStateError("malformed agent state snapshot") from exc

    def canonical_bytes(self) -> bytes:
        """Canonical encoding of the snapshot, memoized per instance.

        A snapshot is immutable by contract (every producer deep-copies
        on capture, every tampering path builds a *new* state), so the
        encoding is computed once — in the shared
        :class:`~repro.crypto.hashing.HashCache` — and reused by
        :meth:`digest`, :meth:`equals`, and :meth:`size_bytes`, the hot
        comparisons of fleet-scale checking.

        The method doubles as the ``__canonical_bytes__`` splice hook of
        :class:`~repro.crypto.canonical.CanonicalEncoder`: a state
        embedded in an enclosing payload (a signed commitment, a packed
        transfer) contributes its memoized bytes instead of being
        re-encoded, which is what keeps per-hop hashing proportional to
        the *delta* a hop produced rather than the whole history the
        agent carries.
        """
        return _ENCODING_CACHE.encode_object(
            self, lambda: canonical_encode(self.to_canonical())
        )

    __canonical_bytes__ = canonical_bytes

    def digest(self) -> StateDigest:
        """Secure hash of the snapshot (what hosts sign and compare)."""
        return hash_bytes(self.canonical_bytes())

    def equals(self, other: "AgentState") -> bool:
        """Exact (canonical) equality with another snapshot."""
        if self is other:
            return True
        return self.canonical_bytes() == other.canonical_bytes()

    def size_bytes(self) -> int:
        """Size of the canonical encoding, for transfer accounting."""
        return len(self.canonical_bytes())


def state_diff(reference: AgentState, observed: AgentState) -> Dict[str, Any]:
    """Describe how ``observed`` deviates from ``reference``.

    Returns a dictionary with three keys:

    ``missing``
        variables present in the reference state but absent in the
        observed state,
    ``unexpected``
        variables present only in the observed state,
    ``changed``
        variables present in both with differing values, mapped to a
        ``{"reference": ..., "observed": ...}`` pair.

    Execution-state fields are compared under keys prefixed with
    ``"execution."`` so a single report covers both parts.
    """
    report: Dict[str, Any] = {"missing": [], "unexpected": [], "changed": {}}

    def compare(ref: Dict[str, Any], obs: Dict[str, Any], prefix: str) -> None:
        for key in sorted(set(ref) | set(obs)):
            label = prefix + key
            if key not in obs:
                report["missing"].append(label)
            elif key not in ref:
                report["unexpected"].append(label)
            elif not canonical_equal(ref[key], obs[key]):
                report["changed"][label] = {
                    "reference": ref[key],
                    "observed": obs[key],
                }

    compare(reference.data, observed.data, "")
    compare(reference.execution, observed.execution, "execution.")
    return report

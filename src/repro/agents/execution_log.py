"""Execution logs and Vigna-style traces.

Section 3.3 of the paper describes execution traces: a trace is a list
of pairs ``(n, s)`` where ``n`` identifies the executed statement and
``s`` lists the variable assignments made by statements that used
information *external* to the agent.  The paper then argues (and this
library follows the argument) that the statement identifiers are not
required from a security point of view — only assignments caused by
input matter — so traces can also be recorded without identifiers.

This module provides both flavours:

* :class:`TraceEntry` — a single ``(statement, assignments)`` pair,
* :class:`ExecutionLog` — an append-only list of entries with chain
  hashing, the "execution log" reference data of the framework.

The example in the paper's Figure 3 (a five statement fragment where
``read(x)`` and ``cryptInput`` are external) is reproduced in
``examples/trace_format.py`` and ``tests/agents/test_execution_log.py``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.crypto.canonical import canonical_encode
from repro.crypto.hashing import DEFAULT_HASH_ALGORITHM, StateDigest

__all__ = ["TraceEntry", "ExecutionLog"]


@dataclass(frozen=True)
class TraceEntry:
    """One entry of an execution trace.

    Attributes
    ----------
    statement:
        Identifier of the executed statement (a line number or label).
        ``None`` when the trace is recorded without identifiers, as the
        paper recommends for efficiency.
    assignments:
        Mapping of variable names to the values they held *after* the
        statement executed, recorded only for statements whose effect
        depends on input from outside the agent.
    """

    statement: Optional[str]
    assignments: Dict[str, Any] = field(default_factory=dict)

    def to_canonical(self) -> Dict[str, Any]:
        return {"statement": self.statement, "assignments": dict(self.assignments)}

    @classmethod
    def from_canonical(cls, data: Dict[str, Any]) -> "TraceEntry":
        return cls(
            statement=data.get("statement"),
            assignments=dict(data.get("assignments", {})),
        )


class ExecutionLog:
    """Append-only log of trace entries for one execution session.

    The log supports the two operations the protection mechanisms need:

    * committing to the log with a chain hash (what a host signs and
      forwards to the next host in the traces approach), and
    * replaying / comparing the recorded input-dependent assignments
      during re-execution.
    """

    def __init__(self, entries: Optional[List[TraceEntry]] = None,
                 record_statements: bool = True) -> None:
        self._entries: List[TraceEntry] = []
        self._record_statements = record_statements
        # Incremental chain digest: the hasher absorbs each entry once,
        # at append time, so committing to the log costs O(delta) per
        # hop instead of re-hashing the whole history (the digest is
        # taken at every migration, the entries never change once
        # appended).  The running state mirrors hash_chain() exactly:
        # length prefix, colon, canonical encoding, per entry.
        self._hasher = hashlib.new(DEFAULT_HASH_ALGORITHM)
        for entry in entries or []:
            self._absorb(self._append_entry(entry))

    def _append_entry(self, entry: TraceEntry) -> TraceEntry:
        self._entries.append(entry)
        return entry

    def _absorb(self, entry: TraceEntry) -> None:
        encoded = canonical_encode(entry.to_canonical())
        self._hasher.update(str(len(encoded)).encode("ascii"))
        self._hasher.update(b":")
        self._hasher.update(encoded)

    @property
    def record_statements(self) -> bool:
        """Whether statement identifiers are kept (Figure 3 style)."""
        return self._record_statements

    def append(self, statement: Optional[str] = None,
               assignments: Optional[Dict[str, Any]] = None) -> TraceEntry:
        """Append a trace entry.

        When the log was created with ``record_statements=False`` the
        statement identifier is discarded, matching the paper's
        optimized trace format.
        """
        entry = TraceEntry(
            statement=statement if self._record_statements else None,
            assignments=dict(assignments or {}),
        )
        self._append_entry(entry)
        self._absorb(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self._entries[index]

    def entries(self) -> Tuple[TraceEntry, ...]:
        """All entries in order."""
        return tuple(self._entries)

    def input_dependent_entries(self) -> Tuple[TraceEntry, ...]:
        """Entries that recorded at least one assignment.

        These correspond to the non-empty lines of the paper's Figure
        3b: statements whose result depends on external input.
        """
        return tuple(entry for entry in self._entries if entry.assignments)

    def digest(self) -> StateDigest:
        """Chain hash over all entries (the trace commitment).

        Equal to ``hash_chain(entry.to_canonical() for entry in log)``
        but O(1): the chain state is maintained incrementally at append
        time, so a log of any length commits in constant time.
        """
        return StateDigest(
            algorithm=DEFAULT_HASH_ALGORITHM,
            digest=self._hasher.copy().digest(),
        )

    def to_canonical(self) -> List[Dict[str, Any]]:
        return [entry.to_canonical() for entry in self._entries]

    @classmethod
    def from_canonical(cls, data: List[Dict[str, Any]]) -> "ExecutionLog":
        entries = [TraceEntry.from_canonical(item) for item in data]
        return cls(entries)

    def strip_statements(self) -> "ExecutionLog":
        """Return a copy without statement identifiers.

        This is the size optimization the paper proposes: the statement
        identifiers prove nothing by themselves (an attacker can always
        fabricate a plausible statement list), so they can be dropped
        and only the input-dependent assignments kept.
        """
        stripped = ExecutionLog(record_statements=False)
        for entry in self._entries:
            stripped.append(statement=None, assignments=entry.assignments)
        return stripped

    def copy(self) -> "ExecutionLog":
        """Return an independent copy of the log (chain state included)."""
        clone = ExecutionLog(record_statements=self._record_statements)
        clone._entries = list(self._entries)
        clone._hasher = self._hasher.copy()
        return clone

    def matches(self, other: "ExecutionLog") -> bool:
        """Whether two logs commit to the same content.

        Comparison is by chain digest, i.e. it is sensitive to entry
        order, assignments, and (when recorded) statement identifiers.
        """
        return self.digest() == other.digest()

"""Inter-agent / partner messaging.

The paper's input definition includes "communication with partners
residing on other hosts".  To exercise that part of the model the
platform offers mailboxes: communication partners deposit messages into
a named mailbox, and the agent consumes them through
``context.receive_message(mailbox)`` — which records the message as
input, so re-execution can replay it.

Messages can optionally be *signed by the producing party*, the
extension Section 4.3 proposes against hosts lying about input: a
checker can then verify the provenance of every replayed message.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.crypto.keys import KeyStore
from repro.crypto.signing import SignedEnvelope, Signer
from repro.crypto.dsa import DSASignature
from repro.exceptions import AgentError

__all__ = ["PartnerMessage", "Mailbox", "MessageBoard", "verify_signed_message"]


@dataclass(frozen=True)
class PartnerMessage:
    """A message from a communication partner to an agent.

    ``signature_envelope`` is the canonical form of a
    :class:`~repro.crypto.signing.SignedEnvelope` over the body when the
    sender signed the message, otherwise ``None``.
    """

    sender: str
    mailbox: str
    body: Any
    signature_envelope: Optional[Dict[str, Any]] = None

    def to_canonical(self) -> Dict[str, Any]:
        return {
            "sender": self.sender,
            "mailbox": self.mailbox,
            "body": self.body,
            "signature_envelope": self.signature_envelope,
        }

    @property
    def is_signed(self) -> bool:
        """Whether the sender attached a signature."""
        return self.signature_envelope is not None


def verify_signed_message(message_canonical: Dict[str, Any],
                          keystore: KeyStore) -> bool:
    """Verify the producer signature carried inside a message value.

    ``message_canonical`` is the canonical dictionary form of a
    :class:`PartnerMessage` as it appears in an input log.  Unsigned
    messages verify as ``False`` — callers that require signed input
    must treat them as unauthenticated.
    """
    envelope_data = message_canonical.get("signature_envelope")
    if not envelope_data:
        return False
    envelope = SignedEnvelope(
        payload=envelope_data["payload"],
        signer=envelope_data["signer"],
        signature=DSASignature.from_canonical(envelope_data["signature"]),
    )
    if envelope.payload != message_canonical.get("body"):
        return False
    if envelope.signer != message_canonical.get("sender"):
        return False
    return envelope.verify(keystore)


class Mailbox:
    """FIFO queue of messages destined for one agent mailbox name."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._queue: Deque[PartnerMessage] = deque()
        self._history: List[PartnerMessage] = []

    def deposit(self, message: PartnerMessage) -> None:
        """Add a message to the queue."""
        self._queue.append(message)
        self._history.append(message)

    def take(self) -> PartnerMessage:
        """Remove and return the oldest message.

        Raises
        ------
        AgentError
            If the mailbox is empty — the agent asked for input that was
            never produced, which is a programming error (or an attack
            scenario that should use an injector instead).
        """
        if not self._queue:
            raise AgentError("mailbox %r is empty" % self.name)
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def history(self) -> Tuple[PartnerMessage, ...]:
        """All messages ever deposited, in order."""
        return tuple(self._history)


class MessageBoard:
    """All mailboxes known to one host.

    The board is part of the host's environment: when an agent calls
    ``context.receive_message(mailbox)``, the host's input environment
    takes the next message from the corresponding mailbox and the value
    (the message's canonical form) is recorded in the input log.
    """

    def __init__(self) -> None:
        self._mailboxes: Dict[str, Mailbox] = {}

    def mailbox(self, name: str) -> Mailbox:
        """Return (creating if necessary) the mailbox called ``name``."""
        if name not in self._mailboxes:
            self._mailboxes[name] = Mailbox(name)
        return self._mailboxes[name]

    def deposit(self, sender: str, mailbox: str, body: Any,
                signer: Optional[Signer] = None) -> PartnerMessage:
        """Deposit a message, optionally signing it as the producer."""
        envelope_canonical = None
        if signer is not None:
            envelope_canonical = signer.sign(body).to_canonical()
        message = PartnerMessage(
            sender=sender,
            mailbox=mailbox,
            body=body,
            signature_envelope=envelope_canonical,
        )
        self.mailbox(mailbox).deposit(message)
        return message

    def take(self, mailbox: str) -> PartnerMessage:
        """Take the next message from ``mailbox``."""
        return self.mailbox(mailbox).take()

    def pending(self, mailbox: str) -> int:
        """Number of undelivered messages in ``mailbox``."""
        return len(self.mailbox(mailbox))

    def mailbox_names(self) -> Tuple[str, ...]:
        """Names of all mailboxes that exist on this board."""
        return tuple(sorted(self._mailboxes))

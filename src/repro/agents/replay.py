"""Re-execution of an agent session from recorded reference data.

This is the mechanical heart of both the paper's example mechanism and
the Vigna traces baseline: given the *initial state*, the *agent code*,
and the recorded *input*, a reference host re-runs the session and
obtains a reference state to compare against the state the checked host
claims to have produced.

Output actions are suppressed during replay and the replayed input log /
execution log are returned so callers can additionally verify that the
checked host's trace commitment matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.agents.agent import AgentCodeRegistry
from repro.agents.context import ExecutionContext, OutwardAction
from repro.agents.execution_log import ExecutionLog
from repro.agents.input import InputLog, ReplayInputSource
from repro.agents.state import AgentState
from repro.exceptions import InputReplayError

__all__ = ["ReExecutionResult", "ReExecutor"]


@dataclass
class ReExecutionResult:
    """Outcome of replaying one execution session on a reference host."""

    #: The reference state produced by the replay.
    resulting_state: AgentState
    #: The execution log the replay produced (input-dependent assignments).
    execution_log: ExecutionLog
    #: The input the replay consumed (should equal the recorded log).
    consumed_input: InputLog
    #: Outward actions the agent attempted (suppressed, but recorded).
    suppressed_actions: Tuple[OutwardAction, ...]
    #: Whether every recorded input element was consumed by the replay.
    input_fully_consumed: bool
    #: Error message if the replay itself failed (``None`` on success).
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        """Whether the replay ran to completion without errors."""
        return self.error is None


class ReExecutor:
    """Re-runs agent sessions from reference data.

    Parameters
    ----------
    registry:
        Code registry used to re-instantiate the reference agent code.
    strict_input_keys:
        Whether replay requires the exact same (kind, source, key)
        sequence as recorded.  Strict mode (default) detects a host that
        fabricated a log whose shape does not match the reference code's
        actual input requests.
    """

    def __init__(self, registry: AgentCodeRegistry,
                 strict_input_keys: bool = True) -> None:
        self._registry = registry
        self._strict_input_keys = strict_input_keys

    def re_execute(
        self,
        code_name: str,
        initial_state: AgentState,
        recorded_input: InputLog,
        host_name: str,
        hop_index: int,
        is_final_hop: bool = False,
        owner: str = "owner",
        agent_id: str = "re-execution",
        metrics: Optional[Any] = None,
    ) -> ReExecutionResult:
        """Replay one session and return the reference state it produces.

        The replay is *fail-soft*: if the agent code raises, if the
        recorded input does not match the code's requests, or if the
        code is not registered, the result carries an ``error``
        description instead of raising — a checker treats a failed
        replay as "cannot confirm the host's claim", which is itself a
        meaningful verdict.
        """
        try:
            agent = self._registry.instantiate(
                code_name, initial_state, owner=owner, agent_id=agent_id
            )
        except Exception as exc:
            return self._failure("cannot instantiate reference code: %s" % exc)

        replay_source = ReplayInputSource(
            recorded_input, strict_keys=self._strict_input_keys
        )
        context = ExecutionContext(
            host_name=host_name,
            hop_index=hop_index,
            is_final_hop=is_final_hop,
            input_source=replay_source,
            output_handler=None,  # suppress outward actions
            metrics=metrics,
        )
        try:
            agent.run(context)
        except InputReplayError as exc:
            return self._failure("input replay diverged: %s" % exc,
                                 context=context, replay_source=replay_source)
        except Exception as exc:  # noqa: BLE001 - attacker-influenced code path
            return self._failure(
                "reference execution raised %s: %s" % (type(exc).__name__, exc),
                context=context,
                replay_source=replay_source,
            )

        return ReExecutionResult(
            resulting_state=agent.capture_state(),
            execution_log=context.execution_log,
            consumed_input=replay_source.log,
            suppressed_actions=context.actions,
            input_fully_consumed=replay_source.exhausted,
        )

    def _failure(self, message: str, context: Optional[ExecutionContext] = None,
                 replay_source: Optional[ReplayInputSource] = None) -> ReExecutionResult:
        return ReExecutionResult(
            resulting_state=AgentState(),
            execution_log=context.execution_log if context else ExecutionLog(),
            consumed_input=replay_source.log if replay_source else InputLog(),
            suppressed_actions=context.actions if context else (),
            input_fully_consumed=False,
            error=message,
        )

"""Execution contexts: how agent code touches the outside world.

The reference-states idea only works if *everything* external to the
agent flows through a recordable interface.  Agent code therefore never
calls ``random``, reads the clock, queries a database, or talks to a
communication partner directly; it goes through the
:class:`ExecutionContext` handed to :meth:`repro.agents.agent.MobileAgent.run`.

The same context class serves both live execution (inputs come from the
host environment and are recorded) and re-execution (inputs are replayed
from the recorded log and outward actions are suppressed), differing
only in the :class:`~repro.agents.input.InputSource` and the output
handler that are plugged in.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.agents.execution_log import ExecutionLog
from repro.agents.input import (
    INPUT_KIND_HOST_DATA,
    INPUT_KIND_MESSAGE,
    INPUT_KIND_SERVICE,
    INPUT_KIND_SYSTEM,
    InputLog,
    InputSource,
)

__all__ = ["NullMetrics", "OutwardAction", "ExecutionContext"]


class NullMetrics:
    """No-op stand-in for a timing collector.

    The benchmark harness substitutes a real
    :class:`repro.bench.metrics.TimingCollector`; everywhere else this
    null object keeps agent code free of ``if metrics is not None``
    checks.
    """

    @contextmanager
    def measure(self, category: str):
        """Context manager that measures nothing."""
        yield

    def add(self, category: str, seconds: float) -> None:
        """Discard a manually reported duration."""


@dataclass(frozen=True)
class OutwardAction:
    """An outward-facing action the agent asked the host to perform.

    Examples: sending a message to a communication partner, committing
    to a purchase.  During re-execution these are recorded but *not*
    performed ("output actions can be suppressed as they are not needed
    for checking the execution", Section 5).
    """

    sequence: int
    kind: str
    payload: Any

    def to_canonical(self) -> Dict[str, Any]:
        return {"sequence": self.sequence, "kind": self.kind, "payload": self.payload}


class ExecutionContext:
    """The agent's window onto its current host during one session.

    Parameters
    ----------
    host_name:
        Name of the executing host.
    hop_index:
        Zero-based hop number along the itinerary.
    is_final_hop:
        Whether this session is the last one of the agent's task.
    input_source:
        Where input values come from (live environment or replay).
    execution_log:
        Trace log that input-dependent assignments are appended to.
    output_handler:
        Callable invoked for outward actions during live execution;
        ``None`` suppresses actions (re-execution mode).
    metrics:
        Timing collector used by instrumented agents (benchmarks).
    """

    def __init__(
        self,
        host_name: str,
        hop_index: int,
        is_final_hop: bool,
        input_source: InputSource,
        execution_log: Optional[ExecutionLog] = None,
        output_handler: Optional[Callable[[OutwardAction], Any]] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        self.host_name = host_name
        self.hop_index = hop_index
        self.is_final_hop = is_final_hop
        self.metrics = metrics if metrics is not None else NullMetrics()
        self._input_source = input_source
        self._execution_log = execution_log if execution_log is not None else ExecutionLog()
        self._output_handler = output_handler
        self._actions: List[OutwardAction] = []
        self._notes: List[str] = []

    # -- input ---------------------------------------------------------------

    def get_input(self, key: str, source: Optional[str] = None) -> Any:
        """Receive a data element handed to the agent by the host."""
        return self._fetch(INPUT_KIND_HOST_DATA, source or self.host_name, key)

    def query_service(self, service: str, request: str) -> Any:
        """Query a host-provided service (database, quote service, ...)."""
        return self._fetch(INPUT_KIND_SERVICE, service, request)

    def receive_message(self, mailbox: str) -> Any:
        """Receive the next message from a communication partner."""
        return self._fetch(INPUT_KIND_MESSAGE, mailbox, mailbox)

    def system_call(self, name: str) -> Any:
        """Issue a system call (``random``, ``time``, ...)."""
        return self._fetch(INPUT_KIND_SYSTEM, self.host_name, name)

    def random(self) -> float:
        """Convenience wrapper for the ``random`` system call."""
        return self.system_call("random")

    def current_time(self) -> float:
        """Convenience wrapper for the ``time`` system call."""
        return self.system_call("time")

    def _fetch(self, kind: str, source: str, key: str) -> Any:
        value = self._input_source.fetch(kind, source, key)
        # Every input-dependent assignment lands in the execution log so
        # the trace format of Section 3.3 is available as reference data.
        self._execution_log.append(statement=None, assignments={key: value})
        return value

    # -- output --------------------------------------------------------------

    def act(self, kind: str, payload: Any) -> Any:
        """Perform an outward action (message send, purchase, ...).

        Returns whatever the host's action handler returns during live
        execution, or ``None`` during re-execution where outward actions
        are suppressed.
        """
        action = OutwardAction(sequence=len(self._actions), kind=kind, payload=payload)
        self._actions.append(action)
        if self._output_handler is not None:
            return self._output_handler(action)
        return None

    # -- tracing & notes -------------------------------------------------------

    def trace(self, statement: Optional[str] = None, **assignments: Any) -> None:
        """Explicitly append a trace entry (manual instrumentation)."""
        self._execution_log.append(statement=statement, assignments=assignments)

    def note(self, message: str) -> None:
        """Record a free-form diagnostic note (not part of the state)."""
        self._notes.append(message)

    # -- introspection ---------------------------------------------------------

    @property
    def input_log(self) -> InputLog:
        """Inputs consumed so far in this session."""
        return self._input_source.log

    @property
    def execution_log(self) -> ExecutionLog:
        """Trace entries recorded so far in this session."""
        return self._execution_log

    @property
    def actions(self) -> Tuple[OutwardAction, ...]:
        """Outward actions requested so far in this session."""
        return tuple(self._actions)

    @property
    def notes(self) -> Tuple[str, ...]:
        """Diagnostic notes recorded so far."""
        return tuple(self._notes)

    @property
    def is_replay(self) -> bool:
        """Whether this context suppresses outward actions (re-execution)."""
        return self._output_handler is None

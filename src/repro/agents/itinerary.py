"""Itineraries: the route an agent travels.

Section 3.5 of the paper notes that when checking happens only after the
task, "the route, i.e. the list of visited hosts has to be stored
somewhere in a secure way", either by dynamically recording stations
(appending signed entries to the agent data), by reporting every
migration to the owner, or by an a-priori signed itinerary.  All three
options are modelled here:

* :class:`Itinerary` — the planned route, optionally fixed a priori,
* :class:`RouteRecord` — the dynamically recorded list of visited hosts
  with per-hop signatures,
* owner notification is handled by the platform layer which can forward
  route entries to the home host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.crypto.keys import KeyStore
from repro.crypto.signing import SignedEnvelope, Signer
from repro.exceptions import ItineraryError

__all__ = ["Itinerary", "RouteRecord", "RouteEntry"]


@dataclass
class Itinerary:
    """The planned sequence of hosts an agent will visit.

    Attributes
    ----------
    hosts:
        Host names in visiting order.  The first entry is the home host
        (where the agent is created), the last entry is where the task
        finishes (usually the home host again).
    fixed:
        Whether the route is an a-priori itinerary that must not be
        altered (if ``True``, hosts may verify the agent arrived from
        and departs to the expected neighbours).
    """

    hosts: List[str]
    fixed: bool = False

    def __post_init__(self) -> None:
        if not self.hosts:
            raise ItineraryError("an itinerary needs at least one host")

    def __len__(self) -> int:
        return len(self.hosts)

    def host_at(self, hop_index: int) -> str:
        """Host name for a given hop index.

        Raises
        ------
        ItineraryError
            If the hop index is outside the planned route.
        """
        if not 0 <= hop_index < len(self.hosts):
            raise ItineraryError(
                "hop index %d outside itinerary of length %d"
                % (hop_index, len(self.hosts))
            )
        return self.hosts[hop_index]

    def next_host(self, hop_index: int) -> Optional[str]:
        """Host following ``hop_index``, or ``None`` at the last hop."""
        if hop_index + 1 < len(self.hosts):
            return self.hosts[hop_index + 1]
        return None

    def previous_host(self, hop_index: int) -> Optional[str]:
        """Host preceding ``hop_index``, or ``None`` at the first hop."""
        if hop_index > 0:
            return self.hosts[hop_index - 1]
        return None

    def is_last_hop(self, hop_index: int) -> bool:
        """Whether ``hop_index`` is the final hop of the route."""
        return hop_index == len(self.hosts) - 1

    @property
    def home(self) -> str:
        """The agent's home host (first entry of the route)."""
        return self.hosts[0]

    @property
    def final(self) -> str:
        """The host where the task finishes (last entry of the route)."""
        return self.hosts[-1]

    def to_canonical(self) -> Dict[str, Any]:
        return {"hosts": list(self.hosts), "fixed": self.fixed}

    @classmethod
    def from_canonical(cls, data: Dict[str, Any]) -> "Itinerary":
        return cls(hosts=list(data["hosts"]), fixed=bool(data.get("fixed", False)))


@dataclass(frozen=True)
class RouteEntry:
    """One visited station, as recorded in the agent's route record."""

    hop_index: int
    host: str
    arrived_from: Optional[str]

    def to_canonical(self) -> Dict[str, Any]:
        return {
            "hop_index": self.hop_index,
            "host": self.host,
            "arrived_from": self.arrived_from,
        }


class RouteRecord:
    """Dynamically recorded, per-hop signed list of visited hosts.

    Each host appends a signed :class:`RouteEntry` when it starts an
    execution session.  The record travels with the agent, so the owner
    (or the final host) can later reconstruct which hosts to ask for
    reference data, and a host cannot silently remove itself from the
    journey without invalidating the chain of hop indices.
    """

    def __init__(self, entries: Optional[List[Dict[str, Any]]] = None) -> None:
        # Entries are stored in their canonical (signed-envelope) form so
        # the record can travel inside the agent's data state.
        self._entries: List[Dict[str, Any]] = list(entries or [])

    def append(self, signer: Signer, entry: RouteEntry) -> None:
        """Append a new entry signed by the visiting host."""
        envelope = signer.sign(entry.to_canonical())
        self._entries.append(envelope.to_canonical())

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Tuple[Dict[str, Any], ...]:
        """Raw signed entries, in travel order."""
        return tuple(self._entries)

    def hosts(self) -> Tuple[str, ...]:
        """The claimed sequence of visited host names."""
        return tuple(entry["payload"]["host"] for entry in self._entries)

    def verify(self, keystore: KeyStore) -> bool:
        """Verify every entry's signature and the hop-index chain.

        The chain is valid when hop indices are consecutive starting at
        zero, each entry is signed by the host it names, and each
        entry's ``arrived_from`` matches the previous entry's host.
        """
        previous_host: Optional[str] = None
        for expected_index, raw in enumerate(self._entries):
            payload = raw.get("payload", {})
            signer_name = raw.get("signer")
            if payload.get("hop_index") != expected_index:
                return False
            if payload.get("host") != signer_name:
                return False
            if expected_index > 0 and payload.get("arrived_from") != previous_host:
                return False
            from repro.crypto.dsa import DSASignature

            envelope = SignedEnvelope(
                payload=payload,
                signer=signer_name,
                signature=DSASignature.from_canonical(raw["signature"]),
            )
            if not envelope.verify(keystore):
                return False
            previous_host = payload.get("host")
        return True

    def to_canonical(self) -> List[Dict[str, Any]]:
        return list(self._entries)

    @classmethod
    def from_canonical(cls, data: List[Dict[str, Any]]) -> "RouteRecord":
        return cls(list(data))

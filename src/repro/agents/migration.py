"""Weak migration: packing agents for transfer and unpacking them again.

Migration in the weak model means: capture the agent's variable parts
(data + manually encoded execution state), ship them together with the
agent's code identity, and call the start procedure (``run``) on the
next host.  The :class:`MigrationEngine` performs the pack/unpack steps;
the actual network delivery is handled by
:class:`repro.net.transport.AgentTransport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.agents.agent import AgentCodeRegistry, MobileAgent
from repro.agents.itinerary import Itinerary
from repro.agents.state import AgentState
from repro.exceptions import MigrationError
from repro.net.transport import AgentTransfer

__all__ = ["MigrationEngine", "UnpackedAgent"]


@dataclass
class UnpackedAgent:
    """Everything a host reconstructs from an incoming transfer."""

    agent: MobileAgent
    itinerary: Itinerary
    hop_index: int
    protocol_data: Optional[Dict[str, Any]]


class MigrationEngine:
    """Packs agents into transfers and restores them on arrival.

    Parameters
    ----------
    registry:
        The code registry used to resolve code identities back into
        agent classes when unpacking.
    """

    def __init__(self, registry: AgentCodeRegistry) -> None:
        self._registry = registry

    @property
    def registry(self) -> AgentCodeRegistry:
        """The code registry this engine resolves agent classes from."""
        return self._registry

    def pack(
        self,
        agent: MobileAgent,
        itinerary: Itinerary,
        hop_index: int,
        protocol_data: Optional[Dict[str, Any]] = None,
    ) -> AgentTransfer:
        """Build the transfer payload for migrating ``agent``.

        The agent's state is snapshotted at pack time, so later mutation
        of the live agent object does not alter what is already "on the
        wire".
        """
        state = agent.capture_state()
        return AgentTransfer(
            agent_class=agent.get_code_name(),
            agent_id=agent.agent_id,
            owner=agent.owner,
            state=state.to_canonical(),
            protocol_data=protocol_data,
            itinerary=itinerary.to_canonical(),
            hop_index=hop_index,
        )

    def unpack(self, transfer: AgentTransfer) -> UnpackedAgent:
        """Reconstruct a live agent from a transfer payload.

        Raises
        ------
        MigrationError
            If the code identity is unknown or the state snapshot is
            malformed.
        """
        if transfer.agent_class not in self._registry:
            raise MigrationError(
                "cannot unpack agent: code %r is not registered at this host"
                % transfer.agent_class
            )
        try:
            state = AgentState.from_canonical(transfer.state)
        except Exception as exc:
            raise MigrationError("agent transfer carries a malformed state") from exc
        agent = self._registry.instantiate(
            transfer.agent_class,
            state,
            owner=transfer.owner,
            agent_id=transfer.agent_id,
        )
        try:
            itinerary = Itinerary.from_canonical(transfer.itinerary)
        except Exception as exc:
            raise MigrationError("agent transfer carries a malformed itinerary") from exc
        return UnpackedAgent(
            agent=agent,
            itinerary=itinerary,
            hop_index=transfer.hop_index,
            protocol_data=transfer.protocol_data,
        )

    def round_trip_size(self, agent: MobileAgent, itinerary: Itinerary,
                        hop_index: int = 0,
                        protocol_data: Optional[Dict[str, Any]] = None) -> int:
        """Return the wire size in bytes of packing ``agent``.

        Useful for the overhead analysis: the paper notes the protected
        agent additionally transports "one more agent state plus the
        input at a host"; this helper quantifies that growth.
        """
        from repro.net.transport import TransferCodec

        transfer = self.pack(agent, itinerary, hop_index, protocol_data)
        return len(TransferCodec().encode(transfer))

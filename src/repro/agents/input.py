"""Input records and input logs.

Section 2.1 of the paper defines *input* as "all the data injected from
the outside of the agent, i.e. both communication with partners residing
on other hosts and data received directly by or via the current host",
including results of system calls such as random numbers or the current
time.  Results of procedures *inside* the agent are explicitly excluded:
they can be recomputed from the agent code.

The :class:`InputLog` is therefore the central piece of reference data
for re-execution based checking: a reference host that replays the
recorded input log against the initial state must reproduce the
resulting state exactly (for single-threaded agents, which is the agent
model used here and in Mole).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.exceptions import InputReplayError

__all__ = [
    "InputRecord",
    "InputLog",
    "InputSource",
    "EnvironmentInputSource",
    "ReplayInputSource",
    "INPUT_KIND_SERVICE",
    "INPUT_KIND_MESSAGE",
    "INPUT_KIND_SYSTEM",
    "INPUT_KIND_HOST_DATA",
]

#: Input obtained by querying a host-provided service/resource.
INPUT_KIND_SERVICE = "service"
#: Input received as a message from a communication partner.
INPUT_KIND_MESSAGE = "message"
#: Input produced by a system call (random number, current time, ...).
INPUT_KIND_SYSTEM = "system"
#: Input handed to the agent directly by the host (e.g. start parameters).
INPUT_KIND_HOST_DATA = "host-data"

_VALID_KINDS = (
    INPUT_KIND_SERVICE,
    INPUT_KIND_MESSAGE,
    INPUT_KIND_SYSTEM,
    INPUT_KIND_HOST_DATA,
)


@dataclass(frozen=True)
class InputRecord:
    """One element of input received by the agent during a session.

    Attributes
    ----------
    sequence:
        Position of this input within the session (0-based).
    kind:
        One of the ``INPUT_KIND_*`` constants.
    source:
        Name of the party that produced the input (host name, service
        name, communication partner).
    key:
        The request the agent issued (service query string, message
        mailbox, system call name).
    value:
        The value the agent received.
    """

    sequence: int
    kind: str
    source: str
    key: str
    value: Any

    def to_canonical(self) -> Dict[str, Any]:
        return {
            "sequence": self.sequence,
            "kind": self.kind,
            "source": self.source,
            "key": self.key,
            "value": self.value,
        }

    @classmethod
    def from_canonical(cls, data: Dict[str, Any]) -> "InputRecord":
        return cls(
            sequence=int(data["sequence"]),
            kind=data["kind"],
            source=data["source"],
            key=data["key"],
            value=data["value"],
        )


class InputLog:
    """Ordered record of every input an agent received in one session."""

    def __init__(self, records: Optional[List[InputRecord]] = None) -> None:
        self._records: List[InputRecord] = list(records or [])

    def record(self, kind: str, source: str, key: str, value: Any) -> InputRecord:
        """Append a new input record and return it."""
        if kind not in _VALID_KINDS:
            raise InputReplayError("unknown input kind %r" % kind)
        entry = InputRecord(
            sequence=len(self._records),
            kind=kind,
            source=source,
            key=key,
            value=value,
        )
        self._records.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[InputRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> InputRecord:
        return self._records[index]

    def records(self) -> Tuple[InputRecord, ...]:
        """All records, in order."""
        return tuple(self._records)

    def values_of_kind(self, kind: str) -> Tuple[Any, ...]:
        """Values of all records of a given kind, in order."""
        return tuple(r.value for r in self._records if r.kind == kind)

    def to_canonical(self) -> List[Dict[str, Any]]:
        return [record.to_canonical() for record in self._records]

    @classmethod
    def from_canonical(cls, data: List[Dict[str, Any]]) -> "InputLog":
        return cls([InputRecord.from_canonical(entry) for entry in data])

    def copy(self) -> "InputLog":
        """Return an independent copy of the log."""
        return InputLog(list(self._records))


class InputSource:
    """Abstract source of input values consumed by an execution context.

    The live execution on a host uses an :class:`EnvironmentInputSource`
    that pulls from the host's services, message queues, and system
    facilities and *records* everything it hands out; re-execution uses
    a :class:`ReplayInputSource` that feeds the recorded values back in
    the recorded order.
    """

    def fetch(self, kind: str, source: str, key: str) -> Any:
        """Return the next input value for the given request."""
        raise NotImplementedError

    @property
    def log(self) -> InputLog:
        """The log of inputs provided so far."""
        raise NotImplementedError


class EnvironmentInputSource(InputSource):
    """Pulls input from a live environment and records it.

    The environment is any object with a
    ``provide(kind, source, key) -> value`` method; the host's execution
    session supplies one that knows about the host's services, the
    agent's mailbox, and system calls.
    """

    def __init__(self, environment) -> None:
        self._environment = environment
        self._log = InputLog()

    def fetch(self, kind: str, source: str, key: str) -> Any:
        value = self._environment.provide(kind, source, key)
        self._log.record(kind, source, key, value)
        return value

    @property
    def log(self) -> InputLog:
        return self._log


class ReplayInputSource(InputSource):
    """Feeds back a recorded input log during re-execution.

    Replay is strict: the re-executed code must ask for inputs in the
    same order, of the same kind, and with the same key as the recorded
    execution.  Any divergence raises :class:`InputReplayError`, because
    it means either the recorded log was tampered with or the code is
    not deterministic with respect to its inputs (both of which the
    checker must surface rather than paper over).
    """

    def __init__(self, recorded: InputLog, strict_keys: bool = True) -> None:
        self._recorded = recorded.copy()
        self._strict_keys = strict_keys
        self._position = 0
        self._log = InputLog()

    def fetch(self, kind: str, source: str, key: str) -> Any:
        if self._position >= len(self._recorded):
            raise InputReplayError(
                "re-execution requested input #%d (%s %r from %r) but the "
                "recorded log only has %d entries"
                % (self._position, kind, key, source, len(self._recorded))
            )
        recorded = self._recorded[self._position]
        if recorded.kind != kind or (
            self._strict_keys and (recorded.key != key or recorded.source != source)
        ):
            raise InputReplayError(
                "re-execution input #%d mismatch: recorded (%s, %r, %r) but "
                "requested (%s, %r, %r)"
                % (
                    self._position,
                    recorded.kind,
                    recorded.source,
                    recorded.key,
                    kind,
                    source,
                    key,
                )
            )
        self._position += 1
        self._log.record(kind, source, key, recorded.value)
        return recorded.value

    @property
    def log(self) -> InputLog:
        return self._log

    @property
    def exhausted(self) -> bool:
        """Whether every recorded input has been consumed."""
        return self._position >= len(self._recorded)

    @property
    def remaining(self) -> int:
        """Number of recorded inputs not yet consumed."""
        return len(self._recorded) - self._position

"""Mobile agent substrate: agents, states, inputs, logs, migration.

This package models the agent side of the paper's execution model
(Section 2.1): agents with code / data state / execution state, weak
migration along an itinerary, recorded input, and execution traces.
"""

from repro.agents.agent import (
    AgentCodeRegistry,
    MobileAgent,
    default_registry,
    register_agent,
)
from repro.agents.context import ExecutionContext, NullMetrics, OutwardAction
from repro.agents.execution_log import ExecutionLog, TraceEntry
from repro.agents.input import (
    EnvironmentInputSource,
    INPUT_KIND_HOST_DATA,
    INPUT_KIND_MESSAGE,
    INPUT_KIND_SERVICE,
    INPUT_KIND_SYSTEM,
    InputLog,
    InputRecord,
    InputSource,
    ReplayInputSource,
)
from repro.agents.itinerary import Itinerary, RouteEntry, RouteRecord
from repro.agents.messaging import (
    Mailbox,
    MessageBoard,
    PartnerMessage,
    verify_signed_message,
)
from repro.agents.migration import MigrationEngine, UnpackedAgent
from repro.agents.replay import ReExecutionResult, ReExecutor
from repro.agents.state import AgentState, DataState, ExecutionState, state_diff

__all__ = [
    "AgentCodeRegistry",
    "MobileAgent",
    "default_registry",
    "register_agent",
    "ExecutionContext",
    "NullMetrics",
    "OutwardAction",
    "ExecutionLog",
    "TraceEntry",
    "EnvironmentInputSource",
    "INPUT_KIND_HOST_DATA",
    "INPUT_KIND_MESSAGE",
    "INPUT_KIND_SERVICE",
    "INPUT_KIND_SYSTEM",
    "InputLog",
    "InputRecord",
    "InputSource",
    "ReplayInputSource",
    "Itinerary",
    "RouteEntry",
    "RouteRecord",
    "Mailbox",
    "MessageBoard",
    "PartnerMessage",
    "verify_signed_message",
    "MigrationEngine",
    "UnpackedAgent",
    "ReExecutionResult",
    "ReExecutor",
    "AgentState",
    "DataState",
    "ExecutionState",
    "state_diff",
]

"""Exception hierarchy for the reference-states reproduction library.

Every exception raised by :mod:`repro` derives from :class:`ReproError`
so that callers can catch library failures with a single ``except``
clause while still being able to distinguish the individual failure
classes (crypto failures, migration failures, protocol violations,
detected attacks, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A component was configured inconsistently or incompletely."""


class SerializationError(ReproError):
    """Canonical serialization of a value failed.

    Raised when a value cannot be represented in the deterministic
    canonical form used for hashing and signing (see
    :mod:`repro.crypto.canonical`).
    """


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyError_(CryptoError):
    """A key could not be found, parsed, or used.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`KeyError`.
    """


class SignatureError(CryptoError):
    """A digital signature could not be created or did not verify."""


class CertificateError(CryptoError):
    """A certificate was missing, malformed, or failed validation."""


class NetworkError(ReproError):
    """A simulated network operation failed."""


class TransportError(NetworkError):
    """An agent transfer could not be delivered."""


class HostNotFoundError(NetworkError):
    """A host address could not be resolved in the registry."""


class AgentError(ReproError):
    """Base class for agent-level failures."""


class MigrationError(AgentError):
    """An agent migration failed (capture, transfer, or restore)."""


class AgentStateError(AgentError):
    """The agent state is malformed or cannot be snapshotted."""


class ItineraryError(AgentError):
    """The agent itinerary is invalid or exhausted unexpectedly."""


class ExecutionError(AgentError):
    """The agent's ``run`` method raised or violated the execution model."""


class InputReplayError(AgentError):
    """Replaying the recorded input log diverged from the recorded log.

    Raised during re-execution when the checked code requests more or
    different inputs than the recorded execution produced.
    """


class ProtocolError(ReproError):
    """A protection protocol invariant was violated.

    This covers malformed protocol payloads, missing reference data,
    and out-of-order protocol steps.  It does **not** signal a detected
    attack; see :class:`AttackDetected` for that.
    """


class CheckingError(ReproError):
    """A checking algorithm could not be executed.

    For example a rule referencing a variable that does not exist, or a
    re-execution checker missing its input log.  A checking *failure*
    (i.e. the check ran and found a mismatch) is reported through a
    verdict, not an exception, unless the caller asked for strict mode.
    """


class AttackDetected(ReproError):
    """A protection mechanism detected an attack and strict mode is on.

    The default reporting path for detections is the
    :class:`repro.core.verdict.Verdict` value returned by the checking
    framework; this exception is only raised when a caller explicitly
    requests exception-on-detection semantics.
    """

    def __init__(self, message: str, verdict: object = None) -> None:
        super().__init__(message)
        #: The verdict that triggered the exception, if available.
        self.verdict = verdict


class ReplicationError(ReproError):
    """The server-replication baseline could not reach a usable quorum."""


class ServiceError(ReproError):
    """Base class for verification-service failures (:mod:`repro.service`)."""


class FrameError(ServiceError):
    """A service wire frame violated the framing protocol.

    Subclasses distinguish the three failure shapes the server must
    treat differently: an oversized frame (rejected before its body is
    read or decoded), a truncated frame (the peer vanished mid-frame),
    and a malformed frame (framing intact, payload undecodable).
    """


class FrameTooLarge(FrameError):
    """The declared frame length exceeds the configured maximum."""


class TruncatedFrame(FrameError):
    """The connection ended in the middle of a frame."""


class MalformedFrame(FrameError):
    """A frame body could not be decoded as a canonical value."""


class ServiceUnavailable(ServiceError):
    """The service shed the request under backpressure (typed busy)."""


class WireVersionMismatch(ServiceError):
    """The peer speaks an incompatible major wire-protocol version.

    Raised during connection negotiation (the ``ping``/hello exchange)
    when the server's advertised ``wire/<major>`` does not match the
    client's — a typed refusal at connect time instead of a decode
    failure halfway through the first real request.
    """


class NoBackendAvailable(ServiceError):
    """Every verifier backend of a cluster is marked down.

    The gateway raises (and answers with a typed error) when a request
    cannot be routed because the consistent-hash ring is empty — load
    shedding with attribution, never a hang.
    """


class RetryExhausted(ServiceError):
    """A retried operation kept failing until its deadline.

    Raised by :meth:`repro.service.retry.RetryPolicy.call` with the
    attempt count and the last underlying error attached (also chained
    as ``__cause__``) — a typed budget-exhaustion signal, not a bare
    re-raise of whichever transient happened to come last.
    """

    def __init__(self, message: str, attempts: int = 0,
                 last_error: "BaseException | None" = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class ProofError(ReproError):
    """A holographic proof was malformed or failed verification."""

"""Attack model: Figure-2 areas, injectors, scenarios, and detection metrics."""

from repro.attacks.detection import DetectionOutcome, DetectionReport
from repro.attacks.injector import (
    AttackInjector,
    DataTamperInjector,
    DropInputRecordInjector,
    ExecutionLogForgeryInjector,
    IncorrectExecutionInjector,
    InitialStateTamperInjector,
    InputLyingInjector,
    ProtocolDataTamperInjector,
    ReadAttackInjector,
    StateFieldOverwriteInjector,
    WrongSystemCallInjector,
)
from repro.attacks.model import (
    AttackArea,
    AttackDescriptor,
    BLACKBOX_SET,
    Detectability,
)
from repro.attacks.scenarios import AttackScenario, scenario_by_name, standard_catalogue

__all__ = [
    "DetectionOutcome",
    "DetectionReport",
    "AttackInjector",
    "DataTamperInjector",
    "DropInputRecordInjector",
    "ExecutionLogForgeryInjector",
    "IncorrectExecutionInjector",
    "InitialStateTamperInjector",
    "InputLyingInjector",
    "ProtocolDataTamperInjector",
    "ReadAttackInjector",
    "StateFieldOverwriteInjector",
    "WrongSystemCallInjector",
    "AttackArea",
    "AttackDescriptor",
    "BLACKBOX_SET",
    "Detectability",
    "AttackScenario",
    "scenario_by_name",
    "standard_catalogue",
]

"""Attack model: Figure-2 areas, injectors, scenarios, and detection metrics."""

from repro.attacks.detection import DetectionOutcome, DetectionReport
from repro.attacks.injector import (
    AttackInjector,
    DataTamperInjector,
    DropInputRecordInjector,
    ExecutionLogForgeryInjector,
    INJECTOR_REGISTRY,
    IncorrectExecutionInjector,
    InitialStateTamperInjector,
    InputLyingInjector,
    ProtocolDataTamperInjector,
    ReadAttackInjector,
    StateFieldOverwriteInjector,
    WrongSystemCallInjector,
    registered_injectors,
)
from repro.attacks.model import (
    AttackArea,
    AttackDescriptor,
    BLACKBOX_SET,
    Detectability,
    areas_by_detectability,
)
from repro.attacks.scenarios import (
    AttackScenario,
    catalogue_names,
    scenario_by_name,
    standard_catalogue,
)

__all__ = [
    "DetectionOutcome",
    "DetectionReport",
    "AttackInjector",
    "DataTamperInjector",
    "DropInputRecordInjector",
    "ExecutionLogForgeryInjector",
    "IncorrectExecutionInjector",
    "InitialStateTamperInjector",
    "InputLyingInjector",
    "ProtocolDataTamperInjector",
    "ReadAttackInjector",
    "StateFieldOverwriteInjector",
    "WrongSystemCallInjector",
    "AttackArea",
    "AttackDescriptor",
    "BLACKBOX_SET",
    "Detectability",
    "AttackScenario",
    "INJECTOR_REGISTRY",
    "areas_by_detectability",
    "catalogue_names",
    "registered_injectors",
    "scenario_by_name",
    "standard_catalogue",
]

"""Attack model: the paper's attack areas and attack descriptors.

Figure 2 of the paper lists twelve areas in which attacks by malicious
hosts can be categorized.  The paper further recalls (from Hohl's
Time-Limited Blackbox work) that the list reduces to the "blackbox set"
(areas 2 and 4–7): the remaining areas are either not preventable at all
(9, 12) or become preventable once the blackbox set is prevented.

The reference-states scheme of this paper addresses a specific slice:
attacks that *result in a different agent state* than a reference host
would have produced.  Each :class:`AttackArea` therefore also records
whether attacks in that area are expected to be detectable by reference
state comparison (Sections 2.3, 4.1, 4.2), which the failure-injection
tests assert against the implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from typing import Dict, Tuple

__all__ = [
    "AttackArea",
    "Detectability",
    "AttackDescriptor",
    "BLACKBOX_SET",
    "areas_by_detectability",
]


@unique
class Detectability(Enum):
    """Expected detectability of an attack area under reference states."""

    #: Detected whenever the attack changes the resulting agent state.
    STATE_DIFFERENCE = "state-difference"
    #: Outside the scheme: leaves no trace in the agent state.
    NOT_DETECTABLE = "not-detectable"
    #: Detectable only with the extensions of Section 4.3 (signed input,
    #: trusted third party relays / proxies).
    EXTENSION_REQUIRED = "extension-required"
    #: Not addressed by software protection at all (paper Section 2.2).
    NOT_PREVENTABLE = "not-preventable"


@unique
class AttackArea(Enum):
    """The twelve attack areas of the paper's Figure 2."""

    SPYING_OUT_CODE = 1
    SPYING_OUT_DATA = 2
    SPYING_OUT_CONTROL_FLOW = 3
    MANIPULATION_OF_CODE = 4
    MANIPULATION_OF_DATA = 5
    MANIPULATION_OF_CONTROL_FLOW = 6
    INCORRECT_EXECUTION_OF_CODE = 7
    MASQUERADING_OF_THE_HOST = 8
    DENIAL_OF_EXECUTION = 9
    SPYING_OUT_INTERACTION = 10
    MANIPULATION_OF_INTERACTION = 11
    WRONG_SYSTEM_CALL_RESULTS = 12

    @property
    def description(self) -> str:
        """Human-readable description matching the paper's wording."""
        return _DESCRIPTIONS[self]

    @property
    def detectability(self) -> Detectability:
        """Expected detectability under the reference-states scheme."""
        return _DETECTABILITY[self]

    @property
    def in_blackbox_set(self) -> bool:
        """Whether the area belongs to the reduced "blackbox set"."""
        return self in BLACKBOX_SET


_DESCRIPTIONS: Dict[AttackArea, str] = {
    AttackArea.SPYING_OUT_CODE: "spying out code",
    AttackArea.SPYING_OUT_DATA: "spying out data",
    AttackArea.SPYING_OUT_CONTROL_FLOW: "spying out control flow",
    AttackArea.MANIPULATION_OF_CODE: "manipulation of code",
    AttackArea.MANIPULATION_OF_DATA: "manipulation of data",
    AttackArea.MANIPULATION_OF_CONTROL_FLOW: "manipulation of control flow",
    AttackArea.INCORRECT_EXECUTION_OF_CODE: "incorrect execution of code",
    AttackArea.MASQUERADING_OF_THE_HOST: "masquerading of the host",
    AttackArea.DENIAL_OF_EXECUTION: "denial of execution",
    AttackArea.SPYING_OUT_INTERACTION:
        "spying out interaction with other agents",
    AttackArea.MANIPULATION_OF_INTERACTION:
        "manipulation of interaction with other agents",
    AttackArea.WRONG_SYSTEM_CALL_RESULTS:
        "returning wrong results of system calls issued by the agent",
}

_DETECTABILITY: Dict[AttackArea, Detectability] = {
    # Read attacks leave no trace in the agent state (Section 4.2).
    AttackArea.SPYING_OUT_CODE: Detectability.NOT_DETECTABLE,
    AttackArea.SPYING_OUT_DATA: Detectability.NOT_DETECTABLE,
    AttackArea.SPYING_OUT_CONTROL_FLOW: Detectability.NOT_DETECTABLE,
    # Modification / incorrect execution attacks are detected iff they
    # result in a state different from the reference state (Section 2.3).
    AttackArea.MANIPULATION_OF_CODE: Detectability.STATE_DIFFERENCE,
    AttackArea.MANIPULATION_OF_DATA: Detectability.STATE_DIFFERENCE,
    AttackArea.MANIPULATION_OF_CONTROL_FLOW: Detectability.STATE_DIFFERENCE,
    AttackArea.INCORRECT_EXECUTION_OF_CODE: Detectability.STATE_DIFFERENCE,
    # Masquerading is countered by the signature/PKI substrate rather
    # than by reference states; within this library it is detected when
    # the masquerading host cannot produce valid signatures.
    AttackArea.MASQUERADING_OF_THE_HOST: Detectability.EXTENSION_REQUIRED,
    AttackArea.DENIAL_OF_EXECUTION: Detectability.NOT_PREVENTABLE,
    AttackArea.SPYING_OUT_INTERACTION: Detectability.NOT_DETECTABLE,
    # Manipulated interaction is only caught with signed input or a TTP
    # relay (Section 4.3); plain reference states cannot see it.
    AttackArea.MANIPULATION_OF_INTERACTION: Detectability.EXTENSION_REQUIRED,
    AttackArea.WRONG_SYSTEM_CALL_RESULTS: Detectability.NOT_PREVENTABLE,
}

def areas_by_detectability() -> Dict[Detectability, Tuple[AttackArea, ...]]:
    """Figure-2 areas grouped by their expected detectability class.

    The grouping is the row structure of the paper-style detectability
    table (campaign reports render one block per class); areas within a
    class keep their Figure-2 numbering order.
    """
    grouped: Dict[Detectability, Tuple[AttackArea, ...]] = {}
    for detectability in Detectability:
        grouped[detectability] = tuple(
            area for area in AttackArea
            if area.detectability is detectability
        )
    return grouped


#: The reduced attack set of [3]: areas 2 and 4-7.  Preventing these is
#: argued to be sufficient, because the remaining areas are either not
#: preventable or follow from preventing the blackbox set.
BLACKBOX_SET: Tuple[AttackArea, ...] = (
    AttackArea.SPYING_OUT_DATA,
    AttackArea.MANIPULATION_OF_CODE,
    AttackArea.MANIPULATION_OF_DATA,
    AttackArea.MANIPULATION_OF_CONTROL_FLOW,
    AttackArea.INCORRECT_EXECUTION_OF_CODE,
)


@dataclass(frozen=True)
class AttackDescriptor:
    """A concrete attack instance used in scenarios and tests.

    Attributes
    ----------
    name:
        Short identifier of the concrete attack (e.g.
        ``"tamper-best-price"``).
    area:
        The Figure-2 area the attack falls into.
    target_host:
        The name of the malicious host mounting the attack.
    changes_resulting_state:
        Whether this concrete attack changes the agent's resulting
        state.  Together with the area's detectability this determines
        whether the reference-states scheme is *expected* to detect it.
    collaboration:
        Names of other hosts collaborating in the attack (empty for a
        single-host attack).
    notes:
        Free-form description for reports.
    """

    name: str
    area: AttackArea
    target_host: str
    changes_resulting_state: bool
    collaboration: Tuple[str, ...] = ()
    notes: str = ""

    @property
    def expected_detected_by_reference_states(self) -> bool:
        """Whether the paper's scheme should detect this concrete attack.

        An attack is expected to be detected exactly when its area is of
        the ``STATE_DIFFERENCE`` kind *and* the concrete attack indeed
        changes the resulting state *and* it is not a collaboration of
        consecutive hosts (which the example protocol explicitly cannot
        detect).
        """
        if self.area.detectability is not Detectability.STATE_DIFFERENCE:
            return False
        if not self.changes_resulting_state:
            return False
        return True

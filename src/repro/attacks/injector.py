"""Attack injectors: concrete malicious-host behaviours.

A :class:`repro.platform.malicious.MaliciousHost` is an ordinary host
that runs a list of injectors at well-defined points of an execution
session:

* ``before_session`` — may tamper with the agent *before* the code runs
  (manipulation of the initial data state, i.e. area 5);
* ``wrap_environment`` — may interpose on the input environment (lying
  about input, returning wrong system call results, manipulating
  interaction — areas 11 and 12, plus the undetectable "fake input"
  attack of Section 4.2);
* ``after_session`` — may tamper with the session record and/or the live
  agent *after* the code ran (manipulation of data / incorrect
  execution, areas 5-7, and read attacks, area 2);
* ``tamper_protocol_data`` — may tamper with the protection protocol's
  own payload before migration (attempted frame-ups / cover-ups).

Each injector knows which Figure-2 area it instantiates and whether it
changes the resulting agent state, so scenarios can automatically derive
the expected detection outcome.

Session records are treated as opaque dataclasses here (mutated through
:func:`dataclasses.replace`) so this module stays independent of the
platform package and no import cycle arises.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.agents.agent import MobileAgent
from repro.agents.execution_log import ExecutionLog
from repro.agents.input import InputLog
from repro.agents.state import AgentState
from repro.attacks.model import AttackArea, AttackDescriptor

__all__ = [
    "AttackInjector",
    "DataTamperInjector",
    "StateFieldOverwriteInjector",
    "InitialStateTamperInjector",
    "IncorrectExecutionInjector",
    "InputLyingInjector",
    "WrongSystemCallInjector",
    "ReadAttackInjector",
    "DropInputRecordInjector",
    "ProtocolDataTamperInjector",
    "ExecutionLogForgeryInjector",
    "INJECTOR_REGISTRY",
    "registered_injectors",
]

#: Every concrete :class:`AttackInjector` subclass, keyed by class name.
#: Populated automatically by ``__init_subclass__`` so the campaign test
#: matrix covers new injectors without anyone remembering to list them.
INJECTOR_REGISTRY: Dict[str, Type["AttackInjector"]] = {}


def registered_injectors() -> Tuple[Type["AttackInjector"], ...]:
    """All registered injector classes, sorted by class name."""
    return tuple(INJECTOR_REGISTRY[name] for name in sorted(INJECTOR_REGISTRY))


class AttackInjector:
    """Base class: a do-nothing injector that subclasses specialize."""

    #: The Figure-2 area this injector instantiates.
    area: AttackArea = AttackArea.MANIPULATION_OF_DATA
    #: Whether the injector changes the agent's resulting state.
    changes_resulting_state: bool = True
    #: Short identifier used in scenario descriptions and reports.
    name: str = "noop"

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        INJECTOR_REGISTRY[cls.__name__] = cls

    def describe(self, target_host: str,
                 collaboration: Tuple[str, ...] = ()) -> AttackDescriptor:
        """Build the descriptor for this injector mounted on a host."""
        doc = type(self).__doc__ or ""
        return AttackDescriptor(
            name=self.name,
            area=self.area,
            target_host=target_host,
            changes_resulting_state=self.changes_resulting_state,
            collaboration=collaboration,
            notes=doc.splitlines()[0] if doc else "",
        )

    # -- hooks ------------------------------------------------------------------

    def before_session(self, agent: MobileAgent, hop_index: int) -> None:
        """Tamper with the agent before its code runs (default: nothing)."""

    def wrap_environment(self, environment):
        """Interpose on the input environment (default: unchanged)."""
        return environment

    def after_session(self, agent: MobileAgent, record):
        """Tamper with agent and/or record after the code ran."""
        return record

    def tamper_protocol_data(self, protocol_data: Optional[Dict[str, Any]]
                             ) -> Optional[Dict[str, Any]]:
        """Tamper with protection-protocol payload before migration."""
        return protocol_data


class DataTamperInjector(AttackInjector):
    """Overwrite a data variable in the resulting state (area 5).

    The canonical "malicious shop" attack: after the agent computed its
    best price, the host replaces the stored best offer with its own.
    """

    area = AttackArea.MANIPULATION_OF_DATA
    changes_resulting_state = True

    def __init__(self, variable: str, value: Any,
                 name: str = "tamper-data") -> None:
        self.variable = variable
        self.value = value
        self.name = name

    def after_session(self, agent: MobileAgent, record):
        agent.data[self.variable] = copy.deepcopy(self.value)
        tampered_state = agent.capture_state()
        return dataclasses.replace(record, resulting_state=tampered_state)


class StateFieldOverwriteInjector(AttackInjector):
    """Apply an arbitrary mutation function to the resulting state (area 5)."""

    area = AttackArea.MANIPULATION_OF_DATA
    changes_resulting_state = True

    def __init__(self, mutator: Callable[[MobileAgent], None],
                 name: str = "mutate-state") -> None:
        self._mutator = mutator
        self.name = name

    def after_session(self, agent: MobileAgent, record):
        self._mutator(agent)
        return dataclasses.replace(record, resulting_state=agent.capture_state())


class InitialStateTamperInjector(AttackInjector):
    """Modify the agent's data *before* executing it (area 5).

    Under the example protocol the initial state was committed to by the
    previous host (and counter-signed on arrival), so executing from a
    modified initial state yields a resulting state the checker cannot
    reproduce from the committed initial state.
    """

    area = AttackArea.MANIPULATION_OF_DATA
    changes_resulting_state = True

    def __init__(self, variable: str, value: Any,
                 name: str = "tamper-initial-state") -> None:
        self.variable = variable
        self.value = value
        self.name = name

    def before_session(self, agent: MobileAgent, hop_index: int) -> None:
        agent.data[self.variable] = copy.deepcopy(self.value)


class IncorrectExecutionInjector(AttackInjector):
    """Skip or distort the execution itself (area 7).

    Modelled as: let the code run, then replace the resulting state with
    a fabricated one (what a host that did not faithfully execute the
    code would hand to the next hop).
    """

    area = AttackArea.INCORRECT_EXECUTION_OF_CODE
    changes_resulting_state = True

    def __init__(self, fabricate: Callable[[AgentState], AgentState],
                 name: str = "incorrect-execution") -> None:
        self._fabricate = fabricate
        self.name = name

    def after_session(self, agent: MobileAgent, record):
        fabricated = self._fabricate(record.resulting_state)
        agent.restore_state(fabricated)
        return dataclasses.replace(record, resulting_state=fabricated)


class InputLyingInjector(AttackInjector):
    """Feed the agent fabricated input and record it as genuine.

    This is the attack the paper explicitly concedes (Section 4.2):
    "attacks where the executing host lies about the input an agent
    receives" cannot be detected by reference states, because the
    recorded log and the execution are consistent with each other.
    Detection requires the signed-input extension.
    """

    area = AttackArea.MANIPULATION_OF_INTERACTION
    changes_resulting_state = True

    def __init__(self, service: str, fake_value: Any,
                 request_filter: Optional[str] = None,
                 name: str = "lie-about-input") -> None:
        self.service = service
        self.fake_value = fake_value
        self.request_filter = request_filter
        self.name = name

    def describe(self, target_host: str,
                 collaboration: Tuple[str, ...] = ()) -> AttackDescriptor:
        # The resulting state differs from an honest execution, but it is
        # consistent with the (lied-about) input log, so reference-state
        # checking is expected NOT to flag it.
        return AttackDescriptor(
            name=self.name,
            area=self.area,
            target_host=target_host,
            changes_resulting_state=False,
            collaboration=collaboration,
            notes="host lies about input; consistent log, undetectable",
        )

    def wrap_environment(self, environment):
        injector = self

        class _LyingEnvironment:
            def provide(self, kind: str, source: str, key: str):
                if kind == "service" and source == injector.service and (
                    injector.request_filter is None
                    or key == injector.request_filter
                ):
                    return copy.deepcopy(injector.fake_value)
                return environment.provide(kind, source, key)

            def set_host_data(self, key: str, value: Any) -> None:
                environment.set_host_data(key, value)

        return _LyingEnvironment()


class WrongSystemCallInjector(AttackInjector):
    """Return wrong results for a system call (area 12).

    Like input lying, the recorded log stays self-consistent, so the
    paper classifies this as not preventable by the scheme.
    """

    area = AttackArea.WRONG_SYSTEM_CALL_RESULTS
    changes_resulting_state = False

    def __init__(self, call_name: str, fake_value: Any,
                 name: str = "wrong-system-call") -> None:
        self.call_name = call_name
        self.fake_value = fake_value
        self.name = name

    def wrap_environment(self, environment):
        injector = self

        class _WrongSyscallEnvironment:
            def provide(self, kind: str, source: str, key: str):
                if kind == "system" and key == injector.call_name:
                    return copy.deepcopy(injector.fake_value)
                return environment.provide(kind, source, key)

            def set_host_data(self, key: str, value: Any) -> None:
                environment.set_host_data(key, value)

        return _WrongSyscallEnvironment()


class ReadAttackInjector(AttackInjector):
    """Read (spy out) agent data without modifying anything (area 2).

    The stolen values are stored on the injector so tests can confirm
    the attack "succeeded" while the protection scheme — by design —
    sees nothing.
    """

    area = AttackArea.SPYING_OUT_DATA
    changes_resulting_state = False

    def __init__(self, variables: Optional[Tuple[str, ...]] = None,
                 name: str = "read-data") -> None:
        self.variables = variables
        self.name = name
        self.stolen: Dict[str, Any] = {}

    def after_session(self, agent: MobileAgent, record):
        snapshot = record.resulting_state.data
        names = self.variables if self.variables is not None else tuple(snapshot)
        for variable in names:
            if variable in snapshot:
                self.stolen[variable] = copy.deepcopy(snapshot[variable])
        return record


class DropInputRecordInjector(AttackInjector):
    """Suppress part of the recorded input before it becomes reference data.

    The host executes faithfully but then hands over an input log with
    entries removed.  The resulting state itself is untouched, but
    re-execution from the truncated log diverges (the code asks for more
    input than the log contains), so the example protocol flags the
    session: the host cannot substantiate its claimed state.
    """

    area = AttackArea.MANIPULATION_OF_DATA
    changes_resulting_state = False

    def __init__(self, drop_from: int = 0, name: str = "drop-input-records") -> None:
        self.drop_from = drop_from
        self.name = name

    def after_session(self, agent: MobileAgent, record):
        kept = list(record.input_log.records())[: self.drop_from]
        truncated = InputLog()
        for entry in kept:
            truncated.record(entry.kind, entry.source, entry.key, entry.value)
        return dataclasses.replace(record, input_log=truncated)


class ExecutionLogForgeryInjector(AttackInjector):
    """Replace the execution log with a fabricated one (area 6).

    The paper notes that a list of statement identifiers "does not prove
    anything since an attacker can create a correct list and augment it
    with correct or incorrect input data"; detection must come from
    comparing resulting states, which is what the checkers do.  A forged
    log by itself leaves the resulting state untouched and is therefore
    *not* expected to be detected by mechanisms that only compare states.
    """

    area = AttackArea.MANIPULATION_OF_CONTROL_FLOW
    changes_resulting_state = False

    def __init__(self, forged_entries: Optional[List[Dict[str, Any]]] = None,
                 name: str = "forge-execution-log") -> None:
        self.forged_entries = forged_entries or []
        self.name = name

    def after_session(self, agent: MobileAgent, record):
        forged = ExecutionLog()
        for entry in self.forged_entries:
            forged.append(entry.get("statement"), entry.get("assignments", {}))
        return dataclasses.replace(record, execution_log=forged)


class ProtocolDataTamperInjector(AttackInjector):
    """Tamper with the protection protocol payload itself.

    A malicious host may try to strip or rewrite the signed commitments
    the protection mechanism appended to the agent; the protocol must
    treat missing or unverifiable protocol data as an attack indication.
    """

    area = AttackArea.MANIPULATION_OF_DATA
    changes_resulting_state = False

    def __init__(self, mutator: Callable[[Dict[str, Any]], Optional[Dict[str, Any]]],
                 name: str = "tamper-protocol-data") -> None:
        self._mutator = mutator
        self.name = name

    def tamper_protocol_data(self, protocol_data: Optional[Dict[str, Any]]
                             ) -> Optional[Dict[str, Any]]:
        if protocol_data is None:
            return None
        return self._mutator(copy.deepcopy(protocol_data))

"""Detection bookkeeping: did the mechanism catch what it should?

Sections 3 and 4 of the paper are, at their core, statements about
*detection coverage*: which attack classes a mechanism built on
reference states detects, which it misses by design, and which it could
catch with extensions.  This module turns those statements into
measurable quantities: every scenario run produces
:class:`DetectionOutcome` records, and a :class:`DetectionReport`
aggregates them into a confusion matrix plus per-attack-area coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.attacks.model import AttackArea, AttackDescriptor, Detectability

__all__ = ["DetectionOutcome", "DetectionReport"]


@dataclass(frozen=True)
class DetectionOutcome:
    """What happened for one attack (or honest run) under one mechanism.

    Attributes
    ----------
    mechanism:
        Name of the protection mechanism that was active.
    attack:
        The attack that was mounted, or ``None`` for an honest baseline
        run (used to measure false positives).
    detected:
        Whether the mechanism reported an attack.
    blamed_hosts:
        Which hosts the mechanism blamed (empty when nothing detected).
    expected_detection:
        Whether, per the paper's analysis, the mechanism should have
        detected this attack.
    """

    mechanism: str
    attack: Optional[AttackDescriptor]
    detected: bool
    blamed_hosts: Tuple[str, ...] = ()
    expected_detection: bool = False

    @property
    def is_honest_run(self) -> bool:
        """Whether this outcome comes from a run without any attack."""
        return self.attack is None

    @property
    def correct(self) -> bool:
        """Whether the observed behaviour matches the expectation.

        For honest runs, correct means "not detected" (no false alarm).
        For attacks, correct means detection matches the expectation
        *and*, when detected, the blamed host is the attacking host.
        """
        if self.is_honest_run:
            return not self.detected
        if self.detected != self.expected_detection:
            return False
        if self.detected and self.attack is not None:
            return self.attack.target_host in self.blamed_hosts
        return True


@dataclass
class DetectionReport:
    """Aggregates detection outcomes into coverage metrics."""

    outcomes: List[DetectionOutcome] = field(default_factory=list)

    def add(self, outcome: DetectionOutcome) -> None:
        """Record one outcome."""
        self.outcomes.append(outcome)

    def extend(self, outcomes: Iterable[DetectionOutcome]) -> None:
        """Record several outcomes."""
        for outcome in outcomes:
            self.add(outcome)

    # -- confusion matrix -------------------------------------------------------

    @property
    def true_positives(self) -> int:
        """Attacks that should be detected and were detected."""
        return sum(
            1 for o in self.outcomes
            if not o.is_honest_run and o.expected_detection and o.detected
        )

    @property
    def false_negatives(self) -> int:
        """Attacks that should be detected but were missed."""
        return sum(
            1 for o in self.outcomes
            if not o.is_honest_run and o.expected_detection and not o.detected
        )

    @property
    def accepted_misses(self) -> int:
        """Attacks the paper concedes are undetectable and were missed."""
        return sum(
            1 for o in self.outcomes
            if not o.is_honest_run and not o.expected_detection and not o.detected
        )

    @property
    def bonus_detections(self) -> int:
        """Attacks detected although not expected to be (extra coverage)."""
        return sum(
            1 for o in self.outcomes
            if not o.is_honest_run and not o.expected_detection and o.detected
        )

    @property
    def false_positives(self) -> int:
        """Honest runs that were wrongly flagged as attacks."""
        return sum(1 for o in self.outcomes if o.is_honest_run and o.detected)

    @property
    def honest_runs(self) -> int:
        """Number of honest baseline runs."""
        return sum(1 for o in self.outcomes if o.is_honest_run)

    @property
    def attack_runs(self) -> int:
        """Number of runs in which an attack was mounted."""
        return sum(1 for o in self.outcomes if not o.is_honest_run)

    # -- derived rates -------------------------------------------------------------

    @property
    def detection_rate(self) -> float:
        """Detected / expected-detectable attacks (recall)."""
        expected = self.true_positives + self.false_negatives
        if expected == 0:
            return 1.0
        return self.true_positives / expected

    @property
    def false_positive_rate(self) -> float:
        """Wrong alarms / honest runs."""
        if self.honest_runs == 0:
            return 0.0
        return self.false_positives / self.honest_runs

    @property
    def blame_accuracy(self) -> float:
        """Fraction of detections that blamed (at least) the attacking host."""
        detections = [
            o for o in self.outcomes if not o.is_honest_run and o.detected
        ]
        if not detections:
            return 1.0
        correct = sum(
            1 for o in detections
            if o.attack is not None and o.attack.target_host in o.blamed_hosts
        )
        return correct / len(detections)

    @property
    def conforms_to_expectation(self) -> bool:
        """Whether every single outcome matches the paper's expectation."""
        return all(outcome.correct for outcome in self.outcomes)

    # -- breakdowns ----------------------------------------------------------------

    def by_area(self) -> Dict[AttackArea, Dict[str, int]]:
        """Per-attack-area counts of mounted / detected attacks."""
        table: Dict[AttackArea, Dict[str, int]] = {}
        for outcome in self.outcomes:
            if outcome.attack is None:
                continue
            bucket = table.setdefault(
                outcome.attack.area, {"mounted": 0, "detected": 0, "expected": 0}
            )
            bucket["mounted"] += 1
            bucket["detected"] += int(outcome.detected)
            bucket["expected"] += int(outcome.expected_detection)
        return table

    def by_detectability(self) -> Dict[Detectability, Dict[str, int]]:
        """Per-detectability-class counts of mounted / detected attacks.

        This is the aggregation behind the campaign detectability
        matrix.  Detectability is a pure function of the area
        (Sections 2.3, 4.1, 4.2), so the class buckets are folds of
        :meth:`by_area`.
        """
        table: Dict[Detectability, Dict[str, int]] = {}
        for area, counts in self.by_area().items():
            bucket = table.setdefault(
                area.detectability,
                {"mounted": 0, "detected": 0, "expected": 0},
            )
            for key, value in counts.items():
                bucket[key] += value
        return table

    def by_mechanism(self) -> Dict[str, "DetectionReport"]:
        """Split the report into one sub-report per mechanism."""
        split: Dict[str, DetectionReport] = {}
        for outcome in self.outcomes:
            split.setdefault(outcome.mechanism, DetectionReport()).add(outcome)
        return split

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary used by benchmarks and reports."""
        return {
            "attacks": float(self.attack_runs),
            "honest_runs": float(self.honest_runs),
            "true_positives": float(self.true_positives),
            "false_negatives": float(self.false_negatives),
            "accepted_misses": float(self.accepted_misses),
            "bonus_detections": float(self.bonus_detections),
            "false_positives": float(self.false_positives),
            "detection_rate": self.detection_rate,
            "false_positive_rate": self.false_positive_rate,
            "blame_accuracy": self.blame_accuracy,
        }

"""Attack scenario catalogue.

A scenario couples an :class:`~repro.attacks.injector.AttackInjector`
factory with a human-readable description and the paper-derived
expectation of whether the reference-states scheme should detect it.
The catalogue is used by the failure-injection tests and by the
detection-coverage benchmarks (Ablations B and C of DESIGN.md).

Scenarios are declarative: they do not reference concrete hosts.  A test
or benchmark binds a scenario to a malicious host via
:meth:`AttackScenario.build`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.agents.state import AgentState
from repro.attacks.injector import (
    AttackInjector,
    DataTamperInjector,
    DropInputRecordInjector,
    ExecutionLogForgeryInjector,
    IncorrectExecutionInjector,
    InitialStateTamperInjector,
    InputLyingInjector,
    ProtocolDataTamperInjector,
    ReadAttackInjector,
    StateFieldOverwriteInjector,
    WrongSystemCallInjector,
)
from repro.attacks.model import AttackDescriptor

__all__ = [
    "AttackScenario",
    "standard_catalogue",
    "scenario_by_name",
    "catalogue_names",
]


@dataclass(frozen=True)
class AttackScenario:
    """A named, reusable attack configuration."""

    name: str
    description: str
    injector_factory: Callable[[], AttackInjector]
    #: Whether the paper's reference-states scheme is expected to detect
    #: the attack (per-session checking by an honest next host).
    expected_detected: bool

    def build(self) -> AttackInjector:
        """Instantiate a fresh injector for this scenario."""
        return self.injector_factory()

    def describe(self, target_host: str,
                 collaboration: Tuple[str, ...] = ()) -> AttackDescriptor:
        """Descriptor of the scenario mounted on ``target_host``."""
        return self.build().describe(target_host, collaboration)


def _fabricate_inflated_state(state: AgentState) -> AgentState:
    """Fabrication used by the incorrect-execution scenario.

    Takes the genuine resulting state and perturbs every integer and
    float variable, which is what a host skipping the real computation
    and guessing plausible results would produce.
    """
    data = dict(state.data)
    for key, value in data.items():
        if isinstance(value, bool):
            data[key] = not value
        elif isinstance(value, int):
            data[key] = value + 1
        elif isinstance(value, float):
            data[key] = value * 1.5 + 1.0
    return AgentState(data=data, execution=dict(state.execution))


def _plant_marker_field(agent: Any) -> None:
    """Mutation used by the mutate-state-field scenario.

    Plants a variable that no honest execution produces, so the attack
    is guaranteed to change the resulting state regardless of workload.
    """
    agent.data["planted_by_attacker"] = "owned"


def _strip_commitments(protocol_data: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Protocol tampering used by the strip-protocol-data scenario.

    Removes the per-session commitment containers used by the example
    protocol (``prev_session``), the generic framework (``prev_session`` /
    ``sessions``), the traces baseline (``commitments``), and the proof
    baseline (``proof_packages``) — i.e. whatever signed material the
    active mechanism appended for the session the malicious host just ran.
    """
    stripped = dict(protocol_data)
    for key in ("prev_session", "sessions", "commitments", "proof_packages",
                "pending_initial_commitment"):
        stripped.pop(key, None)
    for key in list(stripped):
        if "commitment" in key or "signature" in key or "signed" in key:
            stripped.pop(key)
    return stripped


def standard_catalogue(
    tamper_variable: str = "best_price",
    tamper_value: Any = 1.0,
    quote_service: str = "shop",
    fake_quote: Any = 9999.0,
    read_variables: Optional[Tuple[str, ...]] = None,
) -> List[AttackScenario]:
    """The default catalogue of concrete attacks.

    Parameters are the knobs that adapt the catalogue to a particular
    workload agent (which variable to tamper with, which service to lie
    about); the defaults fit the shopping workload.
    """
    return [
        AttackScenario(
            name="tamper-result-variable",
            description=(
                "after execution, overwrite %r with a value favourable to "
                "the host (manipulation of data)" % tamper_variable
            ),
            injector_factory=lambda: DataTamperInjector(
                tamper_variable, tamper_value, name="tamper-result-variable"
            ),
            expected_detected=True,
        ),
        AttackScenario(
            name="tamper-initial-state",
            description=(
                "modify %r before executing the agent (manipulation of "
                "data before the session)" % tamper_variable
            ),
            injector_factory=lambda: InitialStateTamperInjector(
                tamper_variable, tamper_value, name="tamper-initial-state"
            ),
            expected_detected=True,
        ),
        AttackScenario(
            name="mutate-state-field",
            description=(
                "apply an arbitrary mutation to the resulting state: plant "
                "a variable no honest execution produces (manipulation of "
                "data)"
            ),
            injector_factory=lambda: StateFieldOverwriteInjector(
                _plant_marker_field, name="mutate-state-field"
            ),
            expected_detected=True,
        ),
        AttackScenario(
            name="incorrect-execution",
            description=(
                "do not execute the code faithfully; hand over a fabricated "
                "resulting state (incorrect execution of code)"
            ),
            injector_factory=lambda: IncorrectExecutionInjector(
                _fabricate_inflated_state, name="incorrect-execution"
            ),
            expected_detected=True,
        ),
        AttackScenario(
            name="drop-input-records",
            description=(
                "execute faithfully but suppress the recorded input before "
                "handing it over as reference data"
            ),
            injector_factory=lambda: DropInputRecordInjector(
                drop_from=0, name="drop-input-records"
            ),
            expected_detected=True,
        ),
        AttackScenario(
            name="forge-execution-log",
            description=(
                "replace the execution trace by a fabricated one while "
                "keeping the genuine resulting state (the paper: statement "
                "lists prove nothing by themselves, so this is not expected "
                "to be caught by state comparison)"
            ),
            injector_factory=lambda: ExecutionLogForgeryInjector(
                forged_entries=[{"statement": "0", "assignments": {"x": 0}}],
                name="forge-execution-log",
            ),
            expected_detected=False,
        ),
        AttackScenario(
            name="lie-about-input",
            description=(
                "quote a fake price of %r to the agent and record it as the "
                "genuine input (host lies about input — undetectable by "
                "reference states, Section 4.2)" % fake_quote
            ),
            injector_factory=lambda: InputLyingInjector(
                quote_service, fake_quote, name="lie-about-input"
            ),
            expected_detected=False,
        ),
        AttackScenario(
            name="wrong-system-call",
            description=(
                "return a constant instead of a random number (wrong system "
                "call results — area 12, not preventable)"
            ),
            injector_factory=lambda: WrongSystemCallInjector(
                "random", 0.0, name="wrong-system-call"
            ),
            expected_detected=False,
        ),
        AttackScenario(
            name="read-agent-data",
            description=(
                "spy out agent data without modifying anything (read attack "
                "— outside the scheme's scope, Section 4.2)"
            ),
            injector_factory=lambda: ReadAttackInjector(
                read_variables, name="read-agent-data"
            ),
            expected_detected=False,
        ),
        AttackScenario(
            name="strip-protocol-data",
            description=(
                "remove the protection protocol's signed commitments from "
                "the migrating agent"
            ),
            injector_factory=lambda: ProtocolDataTamperInjector(
                _strip_commitments, name="strip-protocol-data"
            ),
            expected_detected=True,
        ),
    ]


@lru_cache(maxsize=1)
def _default_catalogue_by_name() -> Dict[str, AttackScenario]:
    """The default-parameter catalogue, indexed once.

    Scenario objects are immutable and their factories build fresh
    injectors, so sharing them is safe; campaign analysis looks up
    expectations per journey and must not rebuild the catalogue each
    time.
    """
    return {s.name: s for s in standard_catalogue()}


def scenario_by_name(name: str, **catalogue_kwargs: Any) -> AttackScenario:
    """Look up a single scenario from the standard catalogue by name."""
    if not catalogue_kwargs:
        try:
            return _default_catalogue_by_name()[name]
        except KeyError:
            raise KeyError("no attack scenario named %r" % name) from None
    for scenario in standard_catalogue(**catalogue_kwargs):
        if scenario.name == name:
            return scenario
    raise KeyError("no attack scenario named %r" % name)


def catalogue_names() -> Tuple[str, ...]:
    """The names of every scenario in the standard catalogue, in order."""
    return tuple(_default_catalogue_by_name())

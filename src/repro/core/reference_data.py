"""Reference data sets: what travels with the agent for checking.

Section 5 of the paper: "at the end of an execution session, we have the
needed data in a form that allows to check the execution ... all we have
to do is to include the data in the data part of the agent as this part
is transported automatically."

A :class:`ReferenceDataSet` is exactly that bundle for one execution
session, restricted to the kinds the agent (or the policy) requested.
It converts losslessly to and from canonical dictionaries so it can ride
inside the protocol payload of a migrating agent, and it knows how to
assemble itself from a host's :class:`~repro.platform.session.SessionRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Optional

from repro.agents.execution_log import ExecutionLog
from repro.agents.input import InputLog
from repro.agents.state import AgentState
from repro.core.attributes import ALL_REFERENCE_DATA, ReferenceDataKind
from repro.exceptions import CheckingError
from repro.platform.session import SessionRecord

__all__ = ["ReferenceDataSet"]


@dataclass
class ReferenceDataSet:
    """The reference data of one execution session.

    Fields that were not requested (and therefore not collected) are
    ``None``; checkers that need them report an inconclusive result
    rather than guessing.
    """

    session_host: str
    hop_index: int
    agent_id: str
    code_name: str
    owner: str
    initial_state: Optional[AgentState] = None
    resulting_state: Optional[AgentState] = None
    input_log: Optional[InputLog] = None
    execution_log: Optional[ExecutionLog] = None
    resources: Optional[Dict[str, Any]] = None
    #: Whether the recorded session was the final hop of the agent's task.
    #: Re-execution must replay the session under the same flag, because
    #: agents typically behave differently on their last hop (e.g. placing
    #: the order they have been comparing prices for).
    is_final_hop: bool = False

    # -- assembly ---------------------------------------------------------------

    @classmethod
    def from_session_record(
        cls,
        record: SessionRecord,
        kinds: Iterable[ReferenceDataKind] = ALL_REFERENCE_DATA,
    ) -> "ReferenceDataSet":
        """Collect the requested kinds of reference data from a record."""
        requested = frozenset(kinds)
        return cls(
            session_host=record.host,
            hop_index=record.hop_index,
            agent_id=record.agent_id,
            code_name=record.code_name,
            owner=record.owner,
            initial_state=(
                record.initial_state
                if ReferenceDataKind.INITIAL_STATE in requested else None
            ),
            resulting_state=(
                record.resulting_state
                if ReferenceDataKind.RESULTING_STATE in requested else None
            ),
            input_log=(
                record.input_log.copy()
                if ReferenceDataKind.INPUT in requested else None
            ),
            execution_log=(
                record.execution_log.copy()
                if ReferenceDataKind.EXECUTION_LOG in requested else None
            ),
            resources=(
                dict(record.resources_snapshot)
                if ReferenceDataKind.RESOURCES in requested else None
            ),
            is_final_hop=record.is_final_hop,
        )

    # -- introspection -------------------------------------------------------------

    def available_kinds(self) -> FrozenSet[ReferenceDataKind]:
        """The kinds of reference data actually present in this set."""
        kinds = set()
        if self.initial_state is not None:
            kinds.add(ReferenceDataKind.INITIAL_STATE)
        if self.resulting_state is not None:
            kinds.add(ReferenceDataKind.RESULTING_STATE)
        if self.input_log is not None:
            kinds.add(ReferenceDataKind.INPUT)
        if self.execution_log is not None:
            kinds.add(ReferenceDataKind.EXECUTION_LOG)
        if self.resources is not None:
            kinds.add(ReferenceDataKind.RESOURCES)
        return frozenset(kinds)

    def require(self, *kinds: ReferenceDataKind) -> None:
        """Raise :class:`CheckingError` unless all ``kinds`` are present."""
        missing = [kind for kind in kinds if kind not in self.available_kinds()]
        if missing:
            raise CheckingError(
                "reference data for session at %r is missing: %s"
                % (self.session_host, ", ".join(kind.value for kind in missing))
            )

    # -- transport -----------------------------------------------------------------

    def to_canonical(self) -> Dict[str, Any]:
        return {
            "session_host": self.session_host,
            "hop_index": self.hop_index,
            "agent_id": self.agent_id,
            "code_name": self.code_name,
            "owner": self.owner,
            "is_final_hop": self.is_final_hop,
            "initial_state": (
                self.initial_state.to_canonical() if self.initial_state else None
            ),
            "resulting_state": (
                self.resulting_state.to_canonical() if self.resulting_state else None
            ),
            "input_log": self.input_log.to_canonical() if self.input_log else None,
            "execution_log": (
                self.execution_log.to_canonical() if self.execution_log else None
            ),
            "resources": self.resources,
        }

    @classmethod
    def from_canonical(cls, data: Dict[str, Any]) -> "ReferenceDataSet":
        try:
            return cls(
                session_host=data["session_host"],
                hop_index=int(data["hop_index"]),
                agent_id=data["agent_id"],
                code_name=data["code_name"],
                owner=data["owner"],
                initial_state=(
                    AgentState.from_canonical(data["initial_state"])
                    if data.get("initial_state") is not None else None
                ),
                resulting_state=(
                    AgentState.from_canonical(data["resulting_state"])
                    if data.get("resulting_state") is not None else None
                ),
                input_log=(
                    InputLog.from_canonical(data["input_log"])
                    if data.get("input_log") is not None else None
                ),
                execution_log=(
                    ExecutionLog.from_canonical(data["execution_log"])
                    if data.get("execution_log") is not None else None
                ),
                resources=data.get("resources"),
                is_final_hop=bool(data.get("is_final_hop", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckingError("malformed reference data payload") from exc

    def __setattr__(self, name: str, value: Any) -> None:
        # Assigning any field invalidates the canonical-encoding memo,
        # so digest()/size_bytes() can never describe stale contents.
        if name != "_canonical_cache":
            self.__dict__.pop("_canonical_cache", None)
        object.__setattr__(self, name, value)

    def canonical_bytes(self) -> bytes:
        """Canonical encoding of the bundle, memoized per instance.

        The memo is dropped automatically whenever a field is assigned,
        so repeated calls are cheap while mutation stays safe.
        """
        cached = self.__dict__.get("_canonical_cache")
        if cached is None:
            from repro.crypto.canonical import canonical_encode

            cached = canonical_encode(self.to_canonical())
            self._canonical_cache = cached
        return cached

    def digest(self):
        """Secure hash of the bundle (memoized), for signing and logs."""
        from repro.crypto.hashing import hash_bytes

        return hash_bytes(self.canonical_bytes())

    def size_bytes(self) -> int:
        """Canonical size of the bundle (transport overhead accounting)."""
        return len(self.canonical_bytes())

"""Protection policies: choosing a point in the mechanism space.

The paper's framework exists so that "the programmer [can] choose a
protection mechanism that is appropriate for his/her specific
application".  A :class:`ProtectionPolicy` is that choice, expressed in
the three generic attributes of Section 3.5 (moment of checking,
reference data, checking algorithm) plus a few operational switches
(skip trusted hosts, sign reference data, attach proofs).

Three presets mark the ends and the middle of the protection bandwidth
discussed in Section 4.1:

* :func:`minimal_policy` — check after the task, use only the resulting
  state, employ rules.  Cheap, weak.
* :func:`session_reexecution_policy` — check after every session by
  re-execution with full reference data.  This is the configuration of
  the paper's example mechanism.
* :func:`maximal_policy` — check after every session *and* after the
  task, collect everything, run re-execution plus any additional
  checkers handed in (e.g. partner confirmation).  Powerful, costly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.attributes import (
    ALL_REFERENCE_DATA,
    CheckMoment,
    CheckerKind,
    ReferenceDataKind,
)
from repro.core.checkers.base import Checker
from repro.core.checkers.reexecution import ReExecutionChecker
from repro.core.checkers.rules import Rule, RuleChecker
from repro.exceptions import ConfigurationError

__all__ = [
    "ProtectionPolicy",
    "minimal_policy",
    "session_reexecution_policy",
    "maximal_policy",
]


@dataclass
class ProtectionPolicy:
    """A complete configuration of the checking framework.

    Attributes
    ----------
    name:
        Identifier used in verdicts and reports.
    moments:
        At which moments checks run (after session, after task, or both).
    data_kinds:
        Reference data kinds to collect in addition to whatever the
        agent's requester interfaces declare and the checkers require.
    checkers:
        The checking algorithms to execute at each checking moment.
    skip_trusted_hosts:
        Do not check sessions executed on trusted hosts (the example
        mechanism's optimization: "trusted hosts will not attack by
        definition").
    sign_reference_data:
        Have the executing host sign the reference data it hands over.
    attach_proofs:
        Have the executing host additionally attach a (simulated)
        execution proof that the :class:`ProofChecker` can verify.
    """

    name: str
    moments: FrozenSet[CheckMoment]
    data_kinds: FrozenSet[ReferenceDataKind] = frozenset()
    checkers: Tuple[Checker, ...] = ()
    skip_trusted_hosts: bool = True
    sign_reference_data: bool = True
    attach_proofs: bool = False

    def __post_init__(self) -> None:
        if not self.moments:
            raise ConfigurationError("a protection policy needs at least one moment")
        if not self.checkers:
            raise ConfigurationError("a protection policy needs at least one checker")

    # -- derived configuration -----------------------------------------------------

    def required_data_kinds(self) -> FrozenSet[ReferenceDataKind]:
        """All kinds the policy itself implies (explicit + checker needs)."""
        kinds = set(self.data_kinds)
        for checker in self.checkers:
            kinds.update(checker.kind.required_data)
        if self.attach_proofs:
            kinds.add(ReferenceDataKind.EXECUTION_LOG)
            kinds.add(ReferenceDataKind.RESULTING_STATE)
        return frozenset(kinds)

    def checks_after_session(self) -> bool:
        """Whether the policy checks at the after-session moment."""
        return CheckMoment.AFTER_SESSION in self.moments

    def checks_after_task(self) -> bool:
        """Whether the policy checks at the after-task moment."""
        return CheckMoment.AFTER_TASK in self.moments

    def strongest_checker_kind(self) -> CheckerKind:
        """The most powerful checking algorithm the policy employs."""
        return max((checker.kind for checker in self.checkers),
                   key=lambda kind: kind.power_rank)

    def describe(self) -> dict:
        """Summary dictionary used by reports and benchmarks."""
        return {
            "name": self.name,
            "moments": sorted(moment.value for moment in self.moments),
            "data_kinds": sorted(kind.value for kind in self.required_data_kinds()),
            "checkers": [checker.name for checker in self.checkers],
            "skip_trusted_hosts": self.skip_trusted_hosts,
            "sign_reference_data": self.sign_reference_data,
            "attach_proofs": self.attach_proofs,
        }


def minimal_policy(rules: Iterable[Rule], name: str = "minimal-rules") -> ProtectionPolicy:
    """The weak end of the bandwidth: after-task rule checking.

    "A mechanism at the lower end of the protection scale ... checks
    after the execution task, uses only the resulting agent state, and
    employs rules to check the execution." (Section 4.1)
    """
    return ProtectionPolicy(
        name=name,
        moments=frozenset({CheckMoment.AFTER_TASK}),
        data_kinds=frozenset({ReferenceDataKind.RESULTING_STATE}),
        checkers=(RuleChecker(list(rules)),),
        skip_trusted_hosts=True,
        sign_reference_data=False,
        attach_proofs=False,
    )


def session_reexecution_policy(name: str = "session-reexecution",
                               compare_execution_log: bool = False) -> ProtectionPolicy:
    """Per-session re-execution: the example mechanism's configuration."""
    return ProtectionPolicy(
        name=name,
        moments=frozenset({CheckMoment.AFTER_SESSION}),
        data_kinds=frozenset({
            ReferenceDataKind.INITIAL_STATE,
            ReferenceDataKind.RESULTING_STATE,
            ReferenceDataKind.INPUT,
        }),
        checkers=(ReExecutionChecker(compare_execution_log=compare_execution_log),),
        skip_trusted_hosts=True,
        sign_reference_data=True,
        attach_proofs=False,
    )


def maximal_policy(extra_checkers: Sequence[Checker] = (),
                   name: str = "maximal") -> ProtectionPolicy:
    """The strong end of the bandwidth: everything, at both moments."""
    checkers: List[Checker] = [ReExecutionChecker(compare_execution_log=True)]
    checkers.extend(extra_checkers)
    return ProtectionPolicy(
        name=name,
        moments=frozenset({CheckMoment.AFTER_SESSION, CheckMoment.AFTER_TASK}),
        data_kinds=frozenset(ALL_REFERENCE_DATA),
        checkers=tuple(checkers),
        skip_trusted_hosts=True,
        sign_reference_data=True,
        attach_proofs=True,
    )

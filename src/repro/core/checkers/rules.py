"""Rule-based checking: non-Turing-complete postconditions.

Section 3.5: "This term subsumes simple (i.e. non turing complete) rule
mechanisms that allow to check e.g. postconditions in form of first
order logic (e.g. ``moneySpent + moneyRest = moneyInitial``)".

The DSL below expresses exactly that class of conditions: constants,
variable references into the agent state, arithmetic, comparisons,
boolean connectives, and a handful of aggregates over list-valued
variables.  There is deliberately no loop, recursion, or user function
call — rules are data, not programs, which is what makes them cheap to
transport, evaluate, and reason about (and also what limits the attacks
they can detect, as the paper's state-appraisal analysis points out).

Example
-------
>>> from repro.core.checkers.rules import var, const, Rule, RuleChecker
>>> conservation = Rule(
...     "money-conservation",
...     var("money_spent") + var("money_left") == var("initial.money_left"),
... )
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.attributes import CheckerKind
from repro.core.checkers.base import Checker, CheckContext
from repro.core.verdict import CheckResult
from repro.exceptions import CheckingError

__all__ = [
    "Expr",
    "Var",
    "Const",
    "var",
    "const",
    "Rule",
    "RuleSet",
    "RuleChecker",
    "build_rule_environment",
]


class Expr:
    """Base class of rule expressions; supports operator composition."""

    def evaluate(self, environment: Dict[str, Any]) -> Any:
        """Evaluate the expression against a variable environment."""
        raise NotImplementedError

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: Any) -> "Expr":
        return BinaryOp("+", self, _wrap(other))

    def __sub__(self, other: Any) -> "Expr":
        return BinaryOp("-", self, _wrap(other))

    def __mul__(self, other: Any) -> "Expr":
        return BinaryOp("*", self, _wrap(other))

    def __truediv__(self, other: Any) -> "Expr":
        return BinaryOp("/", self, _wrap(other))

    # -- comparisons --------------------------------------------------------------

    def __eq__(self, other: Any) -> "Expr":  # type: ignore[override]
        return BinaryOp("==", self, _wrap(other))

    def __ne__(self, other: Any) -> "Expr":  # type: ignore[override]
        return BinaryOp("!=", self, _wrap(other))

    def __lt__(self, other: Any) -> "Expr":
        return BinaryOp("<", self, _wrap(other))

    def __le__(self, other: Any) -> "Expr":
        return BinaryOp("<=", self, _wrap(other))

    def __gt__(self, other: Any) -> "Expr":
        return BinaryOp(">", self, _wrap(other))

    def __ge__(self, other: Any) -> "Expr":
        return BinaryOp(">=", self, _wrap(other))

    # -- boolean connectives -------------------------------------------------------

    def __and__(self, other: Any) -> "Expr":
        return BinaryOp("and", self, _wrap(other))

    def __or__(self, other: Any) -> "Expr":
        return BinaryOp("or", self, _wrap(other))

    def __invert__(self) -> "Expr":
        return UnaryOp("not", self)

    # -- hashing (needed because __eq__ is overloaded) ------------------------------

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)

    # -- aggregates ------------------------------------------------------------------

    def sum(self) -> "Expr":
        """Sum of a list-valued expression."""
        return Aggregate("sum", self)

    def length(self) -> "Expr":
        """Length of a list-valued expression."""
        return Aggregate("len", self)

    def minimum(self) -> "Expr":
        """Minimum of a list-valued expression."""
        return Aggregate("min", self)

    def maximum(self) -> "Expr":
        """Maximum of a list-valued expression."""
        return Aggregate("max", self)

    def contains(self, other: Any) -> "Expr":
        """Membership test: ``other in self``."""
        return BinaryOp("in", _wrap(other), self)


class Var(Expr):
    """A reference to a state variable.

    Plain names (``"best_price"``) refer to the checked (resulting)
    state; names prefixed with ``initial.`` refer to the initial state
    and names prefixed with ``execution.`` to the execution-state
    fields, when those are available in the environment.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, environment: Dict[str, Any]) -> Any:
        if self.name not in environment:
            raise CheckingError("rule references unknown variable %r" % self.name)
        return environment[self.name]

    def __repr__(self) -> str:
        return "Var(%r)" % self.name


class Const(Expr):
    """A literal constant."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, environment: Dict[str, Any]) -> Any:
        return self.value

    def __repr__(self) -> str:
        return "Const(%r)" % (self.value,)


class BinaryOp(Expr):
    """A binary operation over two sub-expressions."""

    _OPERATIONS = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "and": lambda a, b: bool(a) and bool(b),
        "or": lambda a, b: bool(a) or bool(b),
        "in": lambda a, b: a in b,
    }

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in self._OPERATIONS:
            raise CheckingError("unknown rule operator %r" % op)
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, environment: Dict[str, Any]) -> Any:
        left = self.left.evaluate(environment)
        right = self.right.evaluate(environment)
        try:
            return self._OPERATIONS[self.op](left, right)
        except (TypeError, ZeroDivisionError) as exc:
            raise CheckingError(
                "rule operator %r failed on %r and %r: %s"
                % (self.op, left, right, exc)
            ) from exc

    def __repr__(self) -> str:
        return "(%r %s %r)" % (self.left, self.op, self.right)


class UnaryOp(Expr):
    """A unary operation (boolean negation or arithmetic negation)."""

    def __init__(self, op: str, operand: Expr) -> None:
        if op not in ("not", "neg"):
            raise CheckingError("unknown unary rule operator %r" % op)
        self.op = op
        self.operand = operand

    def evaluate(self, environment: Dict[str, Any]) -> Any:
        value = self.operand.evaluate(environment)
        if self.op == "not":
            return not bool(value)
        return -value


class Aggregate(Expr):
    """An aggregate over a list-valued sub-expression."""

    _FUNCTIONS = {"sum": sum, "len": len, "min": min, "max": max}

    def __init__(self, func: str, operand: Expr) -> None:
        if func not in self._FUNCTIONS:
            raise CheckingError("unknown aggregate %r" % func)
        self.func = func
        self.operand = operand

    def evaluate(self, environment: Dict[str, Any]) -> Any:
        value = self.operand.evaluate(environment)
        try:
            return self._FUNCTIONS[self.func](value)
        except (TypeError, ValueError) as exc:
            raise CheckingError(
                "aggregate %r failed on %r: %s" % (self.func, value, exc)
            ) from exc


def _wrap(value: Any) -> Expr:
    return value if isinstance(value, Expr) else Const(value)


def var(name: str) -> Var:
    """Shorthand constructor for a variable reference."""
    return Var(name)


def const(value: Any) -> Const:
    """Shorthand constructor for a literal constant."""
    return Const(value)


@dataclass
class Rule:
    """A named postcondition that must evaluate to a truthy value."""

    name: str
    expression: Expr
    description: str = ""

    def holds(self, environment: Dict[str, Any]) -> bool:
        """Evaluate the rule; raises :class:`CheckingError` on bad rules."""
        return bool(self.expression.evaluate(environment))


@dataclass
class RuleSet:
    """An ordered collection of rules evaluated together."""

    rules: List[Rule] = field(default_factory=list)

    def add(self, rule: Rule) -> "RuleSet":
        """Append a rule (returns self for chaining)."""
        self.rules.append(rule)
        return self

    def evaluate(self, environment: Dict[str, Any]) -> List[Tuple[Rule, Optional[bool], Optional[str]]]:
        """Evaluate every rule.

        Returns a list of ``(rule, passed, error)`` triples where
        ``passed`` is ``None`` when the rule could not be evaluated and
        ``error`` carries the reason.
        """
        outcomes: List[Tuple[Rule, Optional[bool], Optional[str]]] = []
        for rule in self.rules:
            try:
                outcomes.append((rule, rule.holds(environment), None))
            except CheckingError as exc:
                outcomes.append((rule, None, str(exc)))
        return outcomes

    def __len__(self) -> int:
        return len(self.rules)


def build_rule_environment(context: CheckContext) -> Dict[str, Any]:
    """Build the variable environment rules are evaluated against.

    The environment exposes:

    * the observed (or, failing that, the claimed resulting) state's
      data variables under their plain names,
    * the same state's execution-state fields under ``execution.<name>``,
    * the initial state's data variables under ``initial.<name>`` when
      the initial state is part of the reference data,
    * the number of input records under ``input.count`` when the input
      log is available.
    """
    environment: Dict[str, Any] = {}
    observed = context.observed_state or context.reference_data.resulting_state
    if observed is not None:
        environment.update(observed.data)
        for key, value in observed.execution.items():
            environment["execution.%s" % key] = value
    initial = context.reference_data.initial_state
    if initial is not None:
        for key, value in initial.data.items():
            environment["initial.%s" % key] = value
    if context.reference_data.input_log is not None:
        environment["input.count"] = len(context.reference_data.input_log)
    return environment


class RuleChecker(Checker):
    """Checks a session by evaluating a rule set against its states."""

    kind = CheckerKind.RULES
    name = "rules"

    def __init__(self, rules: Iterable[Rule],
                 name: str = "rules") -> None:
        self._ruleset = RuleSet(list(rules))
        self.name = name

    def check(self, context: CheckContext) -> CheckResult:
        if (context.observed_state is None
                and context.reference_data.resulting_state is None):
            return self._inconclusive("no state available to evaluate rules on")

        environment = build_rule_environment(context)
        outcomes = self._ruleset.evaluate(environment)

        failed = [rule.name for rule, passed, _error in outcomes if passed is False]
        errored = {
            rule.name: error for rule, passed, error in outcomes if passed is None
        }
        if failed:
            return self._attack(failed_rules=failed, errored_rules=errored)
        if errored:
            return self._inconclusive(
                "some rules could not be evaluated", errored_rules=errored
            )
        return self._ok(evaluated_rules=[rule.name for rule, _p, _e in outcomes])

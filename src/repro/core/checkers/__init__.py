"""Checking algorithms: rules, proofs, re-execution, arbitrary programs."""

from repro.core.checkers.arbitrary import (
    ArbitraryProgramChecker,
    partner_confirmation_program,
    state_equality_program,
)
from repro.core.checkers.base import Checker, CheckContext, CheckerRegistry
from repro.core.checkers.proofs import ExecutionProof, ProofChecker, build_proof
from repro.core.checkers.reexecution import ReExecutionChecker
from repro.core.checkers.rules import (
    Const,
    Expr,
    Rule,
    RuleChecker,
    RuleSet,
    Var,
    build_rule_environment,
    const,
    var,
)

__all__ = [
    "ArbitraryProgramChecker",
    "partner_confirmation_program",
    "state_equality_program",
    "Checker",
    "CheckContext",
    "CheckerRegistry",
    "ExecutionProof",
    "ProofChecker",
    "build_proof",
    "ReExecutionChecker",
    "Const",
    "Expr",
    "Rule",
    "RuleChecker",
    "RuleSet",
    "Var",
    "build_rule_environment",
    "const",
    "var",
]

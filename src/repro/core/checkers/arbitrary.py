"""Arbitrary-program checking.

Section 3.5: "This is the most powerful algorithm as it includes the
presented ones and allows for more, e.g. a certain compare method for
resulting states or the possibility to ask a communication partner about
received messages.  Since this algorithm is not known in advance, the
system can offer only basic support, i.e. the possibility to execute the
program at the checking moments."

The :class:`ArbitraryProgramChecker` wraps a user-supplied callable and
executes it at the checking moment.  The callable receives the full
:class:`~repro.core.checkers.base.CheckContext` (so it may use any
reference data) and may return

* a :class:`~repro.core.verdict.CheckResult` (used verbatim),
* a boolean (``True`` = OK, ``False`` = attack detected),
* ``None`` (inconclusive), or
* raise — which is reported as an inconclusive result rather than
  crashing the checking host.

Two ready-made programs frequently needed by applications are provided:
:func:`partner_confirmation_program` (ask communication partners whether
they really sent the recorded input — the extension of Section 4.3) and
:func:`state_equality_program` (a custom compare method for states that
ignores selected volatile variables).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.agents.input import INPUT_KIND_MESSAGE
from repro.agents.messaging import verify_signed_message
from repro.agents.state import state_diff
from repro.core.attributes import CheckerKind
from repro.core.checkers.base import Checker, CheckContext
from repro.core.verdict import CheckResult, VerdictStatus

__all__ = [
    "ArbitraryProgramChecker",
    "partner_confirmation_program",
    "state_equality_program",
]


class ArbitraryProgramChecker(Checker):
    """Runs an agent-programmer-supplied checking program."""

    kind = CheckerKind.ARBITRARY_PROGRAM
    name = "arbitrary-program"

    def __init__(self, program: Callable[[CheckContext], Any],
                 name: str = "arbitrary-program") -> None:
        self._program = program
        self.name = name

    def check(self, context: CheckContext) -> CheckResult:
        try:
            outcome = self._program(context)
        except Exception as exc:  # noqa: BLE001 - user program may do anything
            return self._inconclusive(
                "checking program raised %s: %s" % (type(exc).__name__, exc)
            )
        if isinstance(outcome, CheckResult):
            return outcome
        if outcome is None:
            return self._inconclusive("checking program returned no verdict")
        if isinstance(outcome, bool):
            return self._ok() if outcome else self._attack(
                reason="checking program reported a violation"
            )
        if isinstance(outcome, dict):
            status = VerdictStatus.OK if outcome.get("ok", False) \
                else VerdictStatus.ATTACK_DETECTED
            return CheckResult(checker=self.name, status=status,
                               details={k: v for k, v in outcome.items() if k != "ok"})
        return self._inconclusive(
            "checking program returned an unsupported value of type %r"
            % type(outcome).__name__
        )


def partner_confirmation_program(keystore_getter: Optional[Callable[[CheckContext], Any]] = None
                                 ) -> Callable[[CheckContext], Any]:
    """Build a program that authenticates recorded partner messages.

    This implements the Section 4.3 extension against hosts lying about
    input: every input record of kind ``message`` must carry a valid
    signature by the claimed sender.  Unsigned or wrongly signed
    messages are reported as an attack.

    Parameters
    ----------
    keystore_getter:
        Optional callable extracting the keystore to verify against; by
        default the context's own keystore is used.
    """

    def program(context: CheckContext) -> Any:
        input_log = context.reference_data.input_log
        if input_log is None:
            return None
        keystore = (
            keystore_getter(context) if keystore_getter else context.keystore
        )
        if keystore is None:
            return None
        unconfirmed = []
        for record in input_log:
            if record.kind != INPUT_KIND_MESSAGE:
                continue
            value = record.value
            if not isinstance(value, dict) or not verify_signed_message(value, keystore):
                unconfirmed.append(record.sequence)
        if unconfirmed:
            return CheckResult(
                checker="partner-confirmation",
                status=VerdictStatus.ATTACK_DETECTED,
                details={"unconfirmed_message_records": unconfirmed},
            )
        return True

    return program


def state_equality_program(ignore_variables: Iterable[str] = ()
                           ) -> Callable[[CheckContext], Any]:
    """Build a program comparing observed and committed states.

    ``ignore_variables`` names data variables that are allowed to differ
    (the "certain compare method for resulting states" the paper
    mentions, e.g. for values whose ordering is timing dependent).
    """
    ignored = frozenset(ignore_variables)

    def program(context: CheckContext) -> Any:
        committed = context.reference_data.resulting_state
        observed = context.observed_state
        if committed is None or observed is None:
            return None
        difference = state_diff(committed, observed)
        relevant_changes = {
            key: value for key, value in difference["changed"].items()
            if key not in ignored
        }
        missing = [key for key in difference["missing"] if key not in ignored]
        unexpected = [key for key in difference["unexpected"] if key not in ignored]
        if relevant_changes or missing or unexpected:
            return CheckResult(
                checker="state-equality",
                status=VerdictStatus.ATTACK_DETECTED,
                details={
                    "changed": relevant_changes,
                    "missing": missing,
                    "unexpected": unexpected,
                },
            )
        return True

    return program

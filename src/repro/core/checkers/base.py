"""Checker interface and checking context.

A checker implements one of the paper's checking algorithms (rules,
proofs, re-execution, arbitrary program).  All checkers share the same
call shape: given a :class:`CheckContext` — the reference data of the
checked session plus the state the agent actually showed up with — they
return a :class:`~repro.core.verdict.CheckResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.agents.agent import AgentCodeRegistry, default_registry
from repro.agents.state import AgentState
from repro.core.attributes import CheckerKind
from repro.core.reference_data import ReferenceDataSet
from repro.core.verdict import CheckResult, VerdictStatus
from repro.crypto.keys import KeyStore

__all__ = ["CheckContext", "Checker", "CheckerRegistry"]


@dataclass
class CheckContext:
    """Everything a checker may look at when checking one session.

    Attributes
    ----------
    reference_data:
        The reference data collected for the checked session.
    observed_state:
        The agent state actually observed by the checking party (the
        state the agent arrived with, or its final state at task end).
    checked_host:
        Host whose session is being checked.
    checking_host:
        Host performing the check.
    hop_index:
        Hop index of the checked session.
    keystore:
        Public keys for verifying any embedded signatures.
    code_registry:
        Registry resolving the agent's code identity for re-execution.
    metrics:
        Optional timing collector (the re-execution checker passes it to
        the replayed agent so "cycle" time is attributed correctly).
    extras:
        Mechanism-specific additional material (signed envelopes,
        partner confirmations, ...) for arbitrary-program checkers.
    """

    reference_data: ReferenceDataSet
    observed_state: Optional[AgentState]
    checked_host: str
    checking_host: str
    hop_index: int
    keystore: Optional[KeyStore] = None
    code_registry: AgentCodeRegistry = field(default_factory=lambda: default_registry)
    metrics: Optional[Any] = None
    extras: Dict[str, Any] = field(default_factory=dict)


class Checker:
    """Base class for checking algorithms."""

    #: Which point of the algorithm bandwidth this checker occupies.
    kind: CheckerKind = CheckerKind.ARBITRARY_PROGRAM
    #: Short name used in check results.
    name: str = "checker"

    def check(self, context: CheckContext) -> CheckResult:
        """Check one session; never raises for ordinary mismatches."""
        raise NotImplementedError

    # -- helpers for subclasses ---------------------------------------------------

    def _ok(self, **details: Any) -> CheckResult:
        return CheckResult(checker=self.name, status=VerdictStatus.OK, details=details)

    def _attack(self, **details: Any) -> CheckResult:
        return CheckResult(
            checker=self.name, status=VerdictStatus.ATTACK_DETECTED, details=details
        )

    def _inconclusive(self, reason: str, **details: Any) -> CheckResult:
        details = dict(details)
        details["reason"] = reason
        return CheckResult(
            checker=self.name, status=VerdictStatus.INCONCLUSIVE, details=details
        )

    def _skipped(self, reason: str) -> CheckResult:
        return CheckResult(
            checker=self.name,
            status=VerdictStatus.SKIPPED,
            details={"reason": reason},
        )


class CheckerRegistry:
    """Optional name → checker factory registry.

    Lets policies refer to checkers by name (useful for configuration
    files and for the ablation benchmarks that sweep over checkers).
    """

    def __init__(self) -> None:
        self._factories: Dict[str, Any] = {}

    def register(self, name: str, factory) -> None:
        """Register a zero-argument checker factory under ``name``."""
        self._factories[name] = factory

    def create(self, name: str) -> Checker:
        """Instantiate the checker registered under ``name``."""
        if name not in self._factories:
            raise KeyError("no checker registered under %r" % name)
        return self._factories[name]()

    def names(self) -> List[str]:
        """All registered checker names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

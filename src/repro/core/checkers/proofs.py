"""Proof-based checking (simulated holographic proofs).

Section 3.4 of the paper describes proof verification: the executing
host constructs a "holographic proof" that an execution trace exists
which leads from the initial to the final agent state; the verifier
checks the proof by inspecting only a small part of it, which is cheaper
than re-executing the agent.  The paper also points out why the approach
is impractical today: "currently, only NP-hard algorithms are known to
construct holographic proofs".

Reproduction note (documented substitution)
-------------------------------------------
Constructing real PCP-style holographic proofs is out of scope (and the
paper itself excludes the approach from further consideration for
exactly that reason).  What this module provides is a *structural
simulation* that preserves the API shape and the cost profile:

* the prover commits to the execution by a segment-wise hash chain over
  the trace, bound to the initial and resulting state digests;
* the verifier spot-checks a constant number of segments plus the
  state bindings, so verification touches O(segments) hashes instead of
  re-running the computation.

The simulation is honest about its security: a malicious host that
fabricates *both* a fake trace and a matching fake proof passes the
proof check (the binding property of real holographic proofs is not
reproduced).  It still detects the common case where the host tampers
with the resulting state or the trace *after* committing, and it gives
the benchmarks a realistic "cheaper than re-execution" data point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.agents.execution_log import ExecutionLog
from repro.agents.state import AgentState
from repro.core.attributes import CheckerKind, ReferenceDataKind
from repro.core.checkers.base import Checker, CheckContext
from repro.core.verdict import CheckResult
from repro.crypto.hashing import hash_chain, hash_value
from repro.exceptions import ProofError

__all__ = ["ExecutionProof", "build_proof", "ProofChecker"]

#: Default number of trace segments a proof commits to.
DEFAULT_SEGMENTS = 8
#: Default number of segments the verifier spot-checks.
DEFAULT_SPOT_CHECKS = 3


@dataclass
class ExecutionProof:
    """A (simulated) holographic proof of one execution session."""

    initial_digest: str
    resulting_digest: str
    segment_count: int
    segment_digests: List[str] = field(default_factory=list)
    trace_length: int = 0

    def to_canonical(self) -> Dict[str, Any]:
        return {
            "initial_digest": self.initial_digest,
            "resulting_digest": self.resulting_digest,
            "segment_count": self.segment_count,
            "segment_digests": list(self.segment_digests),
            "trace_length": self.trace_length,
        }

    @classmethod
    def from_canonical(cls, data: Dict[str, Any]) -> "ExecutionProof":
        try:
            return cls(
                initial_digest=data["initial_digest"],
                resulting_digest=data["resulting_digest"],
                segment_count=int(data["segment_count"]),
                segment_digests=list(data["segment_digests"]),
                trace_length=int(data["trace_length"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProofError("malformed execution proof") from exc


def _segment_bounds(length: int, segments: int) -> List[tuple]:
    """Split ``range(length)`` into ``segments`` contiguous chunks."""
    if segments <= 0:
        raise ProofError("a proof needs at least one segment")
    bounds = []
    base = length // segments
    remainder = length % segments
    start = 0
    for index in range(segments):
        size = base + (1 if index < remainder else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def build_proof(
    initial_state: AgentState,
    resulting_state: AgentState,
    execution_log: ExecutionLog,
    segments: int = DEFAULT_SEGMENTS,
) -> ExecutionProof:
    """Build the proof an honest host attaches to its session."""
    entries = [entry.to_canonical() for entry in execution_log]
    segment_digests = []
    for start, end in _segment_bounds(len(entries), segments):
        segment_digests.append(hash_chain(entries[start:end]).hex())
    return ExecutionProof(
        initial_digest=initial_state.digest().hex(),
        resulting_digest=resulting_state.digest().hex(),
        segment_count=segments,
        segment_digests=segment_digests,
        trace_length=len(entries),
    )


class ProofChecker(Checker):
    """Verifies a transported execution proof against the reference data.

    The proof to verify is taken from ``context.extras["proof"]`` (as a
    canonical dictionary or an :class:`ExecutionProof`); the reference
    data must contain the execution log it commits to.
    """

    kind = CheckerKind.PROOFS
    name = "proof-verification"

    def __init__(self, spot_checks: int = DEFAULT_SPOT_CHECKS,
                 name: str = "proof-verification") -> None:
        self.spot_checks = spot_checks
        self.name = name

    def check(self, context: CheckContext) -> CheckResult:
        raw_proof = context.extras.get("proof")
        if raw_proof is None:
            return self._inconclusive("no execution proof was transported")
        try:
            proof = (
                raw_proof if isinstance(raw_proof, ExecutionProof)
                else ExecutionProof.from_canonical(raw_proof)
            )
        except ProofError as exc:
            return self._attack(reason="malformed proof", error=str(exc))

        data = context.reference_data
        if ReferenceDataKind.EXECUTION_LOG not in data.available_kinds():
            return self._inconclusive(
                "proof verification needs the execution log as reference data"
            )

        observed = context.observed_state or data.resulting_state
        if observed is None:
            return self._inconclusive("no resulting state available to bind the proof")

        # Binding checks: the proof must commit to the states in play.
        if data.initial_state is not None:
            if proof.initial_digest != data.initial_state.digest().hex():
                return self._attack(
                    reason="proof is not bound to the committed initial state"
                )
        if proof.resulting_digest != observed.digest().hex():
            return self._attack(
                reason="proof is not bound to the observed resulting state"
            )

        entries = [entry.to_canonical() for entry in data.execution_log]
        if proof.trace_length != len(entries):
            return self._attack(
                reason="proof commits to a trace of different length",
                proof_trace_length=proof.trace_length,
                transported_trace_length=len(entries),
            )

        bounds = _segment_bounds(len(entries), proof.segment_count)
        if len(bounds) != len(proof.segment_digests):
            return self._attack(reason="proof segment structure is inconsistent")

        # Spot-check a deterministic subset of segments (derived from the
        # proof itself so prover and verifier agree without interaction).
        indices = self._select_segments(proof, len(bounds))
        for index in indices:
            start, end = bounds[index]
            expected = hash_chain(entries[start:end]).hex()
            if expected != proof.segment_digests[index]:
                return self._attack(
                    reason="trace segment does not match the proof commitment",
                    segment=index,
                )
        return self._ok(checked_segments=list(indices))

    def _select_segments(self, proof: ExecutionProof, total: int) -> List[int]:
        if total == 0:
            return []
        count = min(self.spot_checks, total)
        seed_digest = hash_value(proof.to_canonical()).digest
        indices = []
        for position in range(count):
            value = int.from_bytes(
                seed_digest[position * 4:(position + 1) * 4] or b"\x00", "big"
            )
            indices.append(value % total)
        return sorted(set(indices))

"""Re-execution checking.

Section 3.5: "Re-execution aims at executing an agent according to the
reference specification given the same set of conditions (i.e. input) as
the execution to check. ... re-execution needs input, initial agent
state, and execution log or resulting agent state as reference data."

The checker replays the checked session (initial state + recorded input
against the *reference code* from the registry) and compares the
reference state it obtains with the state the checked host claims to
have produced and/or with the state the agent actually arrived with.
Output actions are suppressed during the replay.

Because agents in this library are single-threaded and receive every
external value through the recorded input log, the replay is exact; the
paper's caveat about racing conditions in multi-threaded agents does not
apply ("this is no problem for agent systems that allow only one thread
per agent").
"""

from __future__ import annotations

from typing import Optional

from repro.agents.replay import ReExecutor
from repro.agents.state import AgentState, state_diff
from repro.core.attributes import CheckerKind, ReferenceDataKind
from repro.core.checkers.base import Checker, CheckContext
from repro.core.verdict import CheckResult

__all__ = ["ReExecutionChecker"]


class ReExecutionChecker(Checker):
    """Replays the checked session and compares resulting states.

    Parameters
    ----------
    compare_execution_log:
        Additionally require the replayed execution log to match the
        transported one (when the execution log is part of the
        reference data).
    strict_input_keys:
        Passed through to the replay: whether the recorded input must
        match the code's requests by kind, source, and key.
    """

    kind = CheckerKind.RE_EXECUTION
    name = "re-execution"

    def __init__(self, compare_execution_log: bool = False,
                 strict_input_keys: bool = True,
                 name: str = "re-execution") -> None:
        self.compare_execution_log = compare_execution_log
        self.strict_input_keys = strict_input_keys
        self.name = name

    def check(self, context: CheckContext) -> CheckResult:
        data = context.reference_data
        missing = [
            kind.value
            for kind in (ReferenceDataKind.INITIAL_STATE, ReferenceDataKind.INPUT)
            if kind not in data.available_kinds()
        ]
        if missing:
            return self._inconclusive(
                "re-execution requires reference data that was not collected",
                missing=missing,
            )

        claimed = self._claimed_state(context)
        if claimed is None:
            return self._inconclusive(
                "neither a claimed resulting state nor an observed state is available"
            )

        executor = ReExecutor(
            context.code_registry, strict_input_keys=self.strict_input_keys
        )
        replay = executor.re_execute(
            code_name=data.code_name,
            initial_state=data.initial_state,
            recorded_input=data.input_log,
            host_name=data.session_host,
            hop_index=data.hop_index,
            is_final_hop=data.is_final_hop,
            owner=data.owner,
            agent_id=data.agent_id,
            metrics=context.metrics,
        )

        if not replay.succeeded:
            # A replay failure means the transported reference data does
            # not explain any faithful execution: either the input log
            # was tampered with/truncated or the claimed state cannot be
            # reached.  The checked host cannot substantiate its claim.
            return self._attack(
                reason="reference execution could not reproduce the session",
                replay_error=replay.error,
            )

        reference_state = replay.resulting_state
        if not reference_state.equals(claimed):
            difference = state_diff(reference_state, claimed)
            return self._attack(
                reason="resulting state differs from the reference state",
                state_difference=difference,
            )

        if not replay.input_fully_consumed:
            # The recorded input contains elements the reference code
            # never asked for: the log was padded.  The states match, so
            # the execution result is fine, but the padded log is still
            # reported (it could be an attempt to frame another party).
            unused = len(data.input_log) - len(replay.consumed_input)
            return self._ok(
                note="recorded input contains %d unused entries" % unused,
                unused_input_entries=unused,
            )

        if self.compare_execution_log and data.execution_log is not None:
            if not replay.execution_log.matches(data.execution_log):
                return self._attack(
                    reason="execution log does not match the reference replay",
                )

        details = {"reference_state_digest": reference_state.digest().hex()}
        if context.observed_state is not None and data.resulting_state is not None:
            # When both are available also confirm the host sent the
            # same state it signed (inconsistency there is an attack by
            # the checked host or a transport manipulation).
            if not context.observed_state.equals(data.resulting_state):
                return self._attack(
                    reason=(
                        "the state the agent arrived with differs from the "
                        "state the checked host committed to"
                    ),
                    state_difference=state_diff(
                        data.resulting_state, context.observed_state
                    ),
                )
        return self._ok(**details)

    def _claimed_state(self, context: CheckContext) -> Optional[AgentState]:
        """The state the checked host claims / the agent arrived with."""
        if context.reference_data.resulting_state is not None:
            return context.reference_data.resulting_state
        return context.observed_state

"""The paper's contribution: the reference-states checking framework.

Public surface:

* generic attributes (:mod:`repro.core.attributes`),
* requester interfaces (:mod:`repro.core.requesters`),
* reference data bundles (:mod:`repro.core.reference_data`),
* checking algorithms (:mod:`repro.core.checkers`),
* verdicts (:mod:`repro.core.verdict`),
* the policy-driven framework (:mod:`repro.core.framework`,
  :mod:`repro.core.policy`), and
* the measured example mechanism (:mod:`repro.core.protocol`).
"""

from repro.core.attributes import (
    ALL_REFERENCE_DATA,
    CheckerKind,
    CheckMoment,
    ReferenceDataKind,
)
from repro.core.callbacks import (
    agent_overrides_callback,
    dispatch_check,
    normalize_callback_result,
)
from repro.core.checkers import (
    ArbitraryProgramChecker,
    CheckContext,
    Checker,
    CheckerRegistry,
    ExecutionProof,
    ProofChecker,
    ReExecutionChecker,
    Rule,
    RuleChecker,
    RuleSet,
    build_proof,
    build_rule_environment,
    const,
    partner_confirmation_program,
    state_equality_program,
    var,
)
from repro.core.framework import CheckingFramework, ProtectedAgentMixin
from repro.core.policy import (
    ProtectionPolicy,
    maximal_policy,
    minimal_policy,
    session_reexecution_policy,
)
from repro.core.protocol import (
    ReferenceStateProtocol,
    SessionVerifier,
    check_session_payload,
)
from repro.core.reference_data import ReferenceDataSet
from repro.core.requesters import (
    ExecutionLogRequester,
    FullReferenceDataRequester,
    InitialStateRequester,
    InputRequester,
    ResourceRequester,
    ResultingStateRequester,
    requested_data_kinds,
)
from repro.core.verdict import CheckResult, Verdict, VerdictStatus

__all__ = [
    "ALL_REFERENCE_DATA",
    "CheckerKind",
    "CheckMoment",
    "ReferenceDataKind",
    "agent_overrides_callback",
    "dispatch_check",
    "normalize_callback_result",
    "ArbitraryProgramChecker",
    "CheckContext",
    "Checker",
    "CheckerRegistry",
    "ExecutionProof",
    "ProofChecker",
    "ReExecutionChecker",
    "Rule",
    "RuleChecker",
    "RuleSet",
    "build_proof",
    "build_rule_environment",
    "const",
    "partner_confirmation_program",
    "state_equality_program",
    "var",
    "CheckingFramework",
    "ProtectedAgentMixin",
    "ProtectionPolicy",
    "maximal_policy",
    "minimal_policy",
    "session_reexecution_policy",
    "ReferenceStateProtocol",
    "SessionVerifier",
    "check_session_payload",
    "ReferenceDataSet",
    "ExecutionLogRequester",
    "FullReferenceDataRequester",
    "InitialStateRequester",
    "InputRequester",
    "ResourceRequester",
    "ResultingStateRequester",
    "requested_data_kinds",
    "CheckResult",
    "Verdict",
    "VerdictStatus",
]

"""The checking framework (Section 5).

:class:`CheckingFramework` is the generic, policy-driven protection
mechanism of the paper: it collects the reference data the agent's
requester interfaces and the policy ask for, transports it inside the
agent, and invokes the checking callbacks / checkers at the configured
moments (after every session, after the task, or both).

The framework deliberately stays generic; the specific protocol the
paper uses for its measurements (per-session re-execution with
dual-signed initial states, Section 6) lives in
:mod:`repro.core.protocol` and can be seen as a hand-tuned instance of
what this class does from configuration.

Use :class:`ProtectedAgentMixin` for agents that want the default
framework behaviour without writing their own callbacks, or override
``check_after_session`` / ``check_after_task`` on the agent for a fully
custom ("arbitrary program") check.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.agents.agent import AgentCodeRegistry, MobileAgent, default_registry
from repro.agents.itinerary import Itinerary
from repro.agents.state import AgentState
from repro.core.attributes import CheckMoment
from repro.core.callbacks import dispatch_check
from repro.core.checkers.base import CheckContext
from repro.core.checkers.proofs import build_proof
from repro.core.policy import ProtectionPolicy, session_reexecution_policy
from repro.core.reference_data import ReferenceDataSet
from repro.core.requesters import requested_data_kinds
from repro.core.verdict import CheckResult, Verdict, VerdictStatus
from repro.crypto.dsa import DSASignature
from repro.crypto.signing import SignedEnvelope
from repro.platform.host import Host
from repro.platform.registry import ProtectionMechanism
from repro.platform.session import SessionRecord

__all__ = ["ProtectedAgentMixin", "CheckingFramework"]


class ProtectedAgentMixin:
    """Mixin giving an agent framework-driven default callbacks.

    The mixin's callbacks simply return ``None`` so that the policy's
    fallback checkers run; its purpose is declarative — marking the
    agent as one that opts into framework protection — plus a hook
    (:meth:`protection_rules`) subclasses can override to contribute
    application-level rules that the framework adds to its checkers.
    """

    def protection_rules(self):
        """Application-specific rules to evaluate at every check moment.

        Returns an iterable of :class:`repro.core.checkers.rules.Rule`;
        the default is no extra rules.
        """
        return ()


class CheckingFramework(ProtectionMechanism):
    """Policy-driven protection mechanism implementing the framework.

    Parameters
    ----------
    policy:
        The protection policy (moments, data kinds, checkers).  Defaults
        to per-session re-execution.
    code_registry:
        Registry used by re-execution checkers.
    trusted_hosts:
        Names of hosts the owner trusts; sessions on these hosts are not
        checked when the policy says to skip trusted hosts.  When
        ``None``, the executing host's own ``trusted`` flag is used (as
        recorded at collection time).
    """

    def __init__(
        self,
        policy: Optional[ProtectionPolicy] = None,
        code_registry: Optional[AgentCodeRegistry] = None,
        trusted_hosts: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.policy = policy or session_reexecution_policy()
        self.code_registry = code_registry or default_registry
        self.trusted_hosts = tuple(trusted_hosts) if trusted_hosts is not None else None
        self.name = "framework:%s" % self.policy.name

    # -- ProtectionMechanism hooks ---------------------------------------------------

    def prepare_launch(self, agent: MobileAgent, itinerary: Itinerary,
                       home_host: Host) -> Dict[str, Any]:
        return {
            "mechanism": self.name,
            "policy": self.policy.describe(),
            "prev_session": None,
            "sessions": [],
            "verdicts": [],
        }

    def after_session(
        self,
        host: Host,
        agent: MobileAgent,
        itinerary: Itinerary,
        hop_index: int,
        record: SessionRecord,
        protocol_data: Optional[Dict[str, Any]],
    ) -> Dict[str, Any]:
        data = protocol_data or self.prepare_launch(agent, itinerary, host)
        entry = self._collect_entry(host, agent, record)
        if self.policy.checks_after_session():
            data["prev_session"] = entry
        if self.policy.checks_after_task():
            data.setdefault("sessions", []).append(entry)
        return data

    def on_arrival(
        self,
        host: Host,
        agent: MobileAgent,
        itinerary: Itinerary,
        hop_index: int,
        protocol_data: Optional[Dict[str, Any]],
    ) -> Tuple[List[Verdict], Optional[Dict[str, Any]]]:
        if not self.policy.checks_after_session():
            return [], protocol_data

        checked_host = itinerary.previous_host(hop_index)
        observed_state = agent.capture_state()

        if protocol_data is None or protocol_data.get("prev_session") is None:
            verdict = self._missing_data_verdict(
                host, checked_host, hop_index - 1, CheckMoment.AFTER_SESSION
            )
            return [verdict], protocol_data

        entry = protocol_data["prev_session"]
        protocol_data["prev_session"] = None

        if self._should_skip(host, entry, checked_host):
            verdict = Verdict(
                status=VerdictStatus.SKIPPED,
                mechanism=self.name,
                moment=CheckMoment.AFTER_SESSION,
                checking_host=host.name,
                checked_host=checked_host,
                hop_index=hop_index - 1,
            )
            protocol_data.setdefault("verdicts", []).append(verdict.to_canonical())
            return [verdict], protocol_data

        verdict = self._check_entry(
            host, agent, entry, observed_state,
            moment=CheckMoment.AFTER_SESSION,
            checked_host=checked_host,
            hop_index=hop_index - 1,
        )
        protocol_data.setdefault("verdicts", []).append(verdict.to_canonical())
        return [verdict], protocol_data

    def after_task(
        self,
        host: Host,
        agent: MobileAgent,
        itinerary: Itinerary,
        protocol_data: Optional[Dict[str, Any]],
    ) -> List[Verdict]:
        if not self.policy.checks_after_task():
            return []
        if protocol_data is None:
            return [
                self._missing_data_verdict(
                    host, None, None, CheckMoment.AFTER_TASK
                )
            ]

        entries = list(protocol_data.get("sessions", []))
        verdicts: List[Verdict] = []
        final_state = agent.capture_state()

        for position, entry in enumerate(entries):
            checked_host = entry.get("host")
            hop_index = entry.get("hop_index")
            if self._should_skip(host, entry, checked_host):
                verdicts.append(
                    Verdict(
                        status=VerdictStatus.SKIPPED,
                        mechanism=self.name,
                        moment=CheckMoment.AFTER_TASK,
                        checking_host=host.name,
                        checked_host=checked_host,
                        hop_index=hop_index,
                    )
                )
                continue
            # The state "observed" for session i is the initial state the
            # *next* session started from; for the last session it is the
            # agent's final state.
            observed = self._observed_state_for(entries, position, final_state)
            verdicts.append(
                self._check_entry(
                    host, agent, entry, observed,
                    moment=CheckMoment.AFTER_TASK,
                    checked_host=checked_host,
                    hop_index=hop_index,
                )
            )
        return verdicts

    # -- internal helpers ----------------------------------------------------------

    def _collect_entry(self, host: Host, agent: MobileAgent,
                       record: SessionRecord) -> Dict[str, Any]:
        kinds = set(self.policy.required_data_kinds())
        kinds.update(requested_data_kinds(agent))
        reference = ReferenceDataSet.from_session_record(record, kinds)
        entry: Dict[str, Any] = {
            "host": host.name,
            "hop_index": record.hop_index,
            "trusted": host.trusted,
            "reference": reference.to_canonical(),
        }
        if self.policy.attach_proofs and record.execution_log is not None:
            entry["proof"] = build_proof(
                record.initial_state, record.resulting_state, record.execution_log
            ).to_canonical()
        if self.policy.sign_reference_data:
            envelope = host.sign(entry["reference"])
            entry["signature"] = {
                "signer": envelope.signer,
                "signature": envelope.signature.to_canonical(),
            }
        return entry

    def _should_skip(self, checking_host: Host, entry: Dict[str, Any],
                     checked_host: Optional[str]) -> bool:
        if checked_host is None:
            return False
        collaborates = getattr(checking_host, "collaborates_with", None)
        if callable(collaborates) and collaborates(checked_host):
            return True
        if not self.policy.skip_trusted_hosts:
            return False
        if self.trusted_hosts is not None:
            return checked_host in self.trusted_hosts
        return bool(entry.get("trusted", False))

    def _verify_entry_signature(self, host: Host, entry: Dict[str, Any],
                                checked_host: Optional[str]) -> Optional[CheckResult]:
        if not self.policy.sign_reference_data:
            return None
        signature_info = entry.get("signature")
        if not signature_info:
            return CheckResult(
                checker="reference-data-signature",
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "reference data is not signed"},
            )
        envelope = SignedEnvelope(
            payload=entry.get("reference"),
            signer=signature_info.get("signer"),
            signature=DSASignature.from_canonical(signature_info.get("signature")),
        )
        expected_signer = checked_host or signature_info.get("signer")
        if not host.verify(envelope, expected_signer=expected_signer):
            return CheckResult(
                checker="reference-data-signature",
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "reference data signature does not verify"},
            )
        return None

    def _check_entry(
        self,
        host: Host,
        agent: MobileAgent,
        entry: Dict[str, Any],
        observed_state: Optional[AgentState],
        moment: CheckMoment,
        checked_host: Optional[str],
        hop_index: Optional[int],
    ) -> Verdict:
        results: List[CheckResult] = []
        signature_failure = self._verify_entry_signature(host, entry, checked_host)
        if signature_failure is not None:
            results.append(signature_failure)

        try:
            reference = ReferenceDataSet.from_canonical(entry.get("reference") or {})
        except Exception as exc:  # malformed payload is itself suspicious
            results.append(
                CheckResult(
                    checker="reference-data",
                    status=VerdictStatus.ATTACK_DETECTED,
                    details={"reason": "malformed reference data: %s" % exc},
                )
            )
            return Verdict.from_results(
                results, self.name, moment, host.name, checked_host, hop_index
            )

        context = CheckContext(
            reference_data=reference,
            observed_state=observed_state,
            checked_host=checked_host or reference.session_host,
            checking_host=host.name,
            hop_index=hop_index if hop_index is not None else reference.hop_index,
            keystore=host.keystore,
            code_registry=self.code_registry,
            metrics=host.metrics,
            extras={"proof": entry.get("proof")} if entry.get("proof") else {},
        )

        checkers = list(self.policy.checkers)
        rules = getattr(agent, "protection_rules", None)
        if callable(rules):
            extra_rules = list(rules())
            if extra_rules:
                from repro.core.checkers.rules import RuleChecker

                checkers.append(RuleChecker(extra_rules, name="agent-rules"))

        results.extend(dispatch_check(agent, moment, context, checkers))

        state_difference = None
        for result in results:
            if result.is_attack and "state_difference" in result.details:
                state_difference = result.details["state_difference"]
                break

        return Verdict.from_results(
            results,
            mechanism=self.name,
            moment=moment,
            checking_host=host.name,
            checked_host=checked_host,
            hop_index=hop_index,
            state_difference=state_difference,
        )

    def _missing_data_verdict(self, host: Host, checked_host: Optional[str],
                              hop_index: Optional[int],
                              moment: CheckMoment) -> Verdict:
        result = CheckResult(
            checker="protocol-data",
            status=VerdictStatus.ATTACK_DETECTED,
            details={
                "reason": (
                    "the protection payload that should accompany the agent "
                    "is missing; the previous host removed or never produced it"
                )
            },
        )
        return Verdict.from_results(
            [result], self.name, moment, host.name, checked_host, hop_index
        )

    @staticmethod
    def _observed_state_for(entries: List[Dict[str, Any]], position: int,
                            final_state: AgentState) -> Optional[AgentState]:
        if position + 1 < len(entries):
            next_reference = entries[position + 1].get("reference") or {}
            initial = next_reference.get("initial_state")
            if initial is not None:
                try:
                    return AgentState.from_canonical(initial)
                except Exception:
                    return None
            return None
        return final_state

"""The generic attributes of reference-state mechanisms (Section 3.5).

The paper extracts three orthogonal attributes from the existing
approaches; their combinations span the space of possible mechanisms:

* **moment of checking** — after every execution session, or after the
  agent finished its task;
* **used reference data** — initial state, resulting state, input,
  execution log, replicated host resources;
* **checking algorithm** — rules, proofs, re-execution, or an arbitrary
  program.

These enums are used by policies, checkers, requester interfaces, and
the benchmark ablations to name points in that space.
"""

from __future__ import annotations

from enum import Enum, unique
from typing import Tuple

__all__ = ["CheckMoment", "ReferenceDataKind", "CheckerKind", "ALL_REFERENCE_DATA"]


@unique
class CheckMoment(Enum):
    """When the reference state is checked."""

    #: Checked as the first action on the next host (callback
    #: ``checkAfterSession``).
    AFTER_SESSION = "after-session"
    #: Checked by the last host after the task finished (callback
    #: ``checkAfterTask``).
    AFTER_TASK = "after-task"

    @property
    def callback_name(self) -> str:
        """Name of the agent callback invoked at this moment (Fig. 4)."""
        return {
            CheckMoment.AFTER_SESSION: "checkAfterSession",
            CheckMoment.AFTER_TASK: "checkAfterTask",
        }[self]


@unique
class ReferenceDataKind(Enum):
    """Which reference data a checking mechanism uses (Fig. 4 / Fig. 5)."""

    INITIAL_STATE = "initial-state"
    RESULTING_STATE = "resulting-state"
    INPUT = "input"
    EXECUTION_LOG = "execution-log"
    RESOURCES = "resources"

    @property
    def requester_interface(self) -> str:
        """Name of the agent-side requester interface (Fig. 4)."""
        return {
            ReferenceDataKind.INITIAL_STATE: "InitialStateRequester",
            ReferenceDataKind.RESULTING_STATE: "ResultingStateRequester",
            ReferenceDataKind.INPUT: "InputRequester",
            ReferenceDataKind.EXECUTION_LOG: "ExecutionLogRequester",
            ReferenceDataKind.RESOURCES: "ResourceRequester",
        }[self]

    @property
    def host_accessor(self) -> str:
        """Name of the host-side accessor method (Fig. 5)."""
        return {
            ReferenceDataKind.INITIAL_STATE: "getInitialState",
            ReferenceDataKind.RESULTING_STATE: "getResultingState",
            ReferenceDataKind.INPUT: "getInput",
            ReferenceDataKind.EXECUTION_LOG: "getExecutionLog",
            ReferenceDataKind.RESOURCES: "getResource",
        }[self]


#: Every reference data kind, in a stable order.
ALL_REFERENCE_DATA: Tuple[ReferenceDataKind, ...] = (
    ReferenceDataKind.INITIAL_STATE,
    ReferenceDataKind.RESULTING_STATE,
    ReferenceDataKind.INPUT,
    ReferenceDataKind.EXECUTION_LOG,
    ReferenceDataKind.RESOURCES,
)


@unique
class CheckerKind(Enum):
    """Which checking algorithm a mechanism employs (Section 3.5).

    The members are ordered by increasing power as discussed in the
    paper: rules < proofs ≈ re-execution < arbitrary program (the
    arbitrary program subsumes all the others).
    """

    RULES = "rules"
    PROOFS = "proofs"
    RE_EXECUTION = "re-execution"
    ARBITRARY_PROGRAM = "arbitrary-program"

    @property
    def power_rank(self) -> int:
        """Relative power ordering used by the policy presets."""
        return {
            CheckerKind.RULES: 1,
            CheckerKind.PROOFS: 2,
            CheckerKind.RE_EXECUTION: 3,
            CheckerKind.ARBITRARY_PROGRAM: 4,
        }[self]

    @property
    def required_data(self) -> Tuple[ReferenceDataKind, ...]:
        """The reference data kinds this algorithm needs (Section 3.5).

        Rules can work on any data but need at least the resulting
        state; proofs are self-contained apart from the resulting state
        they bind; re-execution needs input, initial state, and either
        the execution log or the resulting state; an arbitrary program
        may use anything (we declare the full set so frameworks collect
        everything).
        """
        if self is CheckerKind.RULES:
            return (ReferenceDataKind.RESULTING_STATE,)
        if self is CheckerKind.PROOFS:
            return (ReferenceDataKind.RESULTING_STATE,
                    ReferenceDataKind.EXECUTION_LOG)
        if self is CheckerKind.RE_EXECUTION:
            return (
                ReferenceDataKind.INITIAL_STATE,
                ReferenceDataKind.INPUT,
                ReferenceDataKind.RESULTING_STATE,
            )
        return ALL_REFERENCE_DATA

"""Check results, verdicts, and blame assignment.

A :class:`CheckResult` is the outcome of running one checking algorithm
against one session's reference data.  A :class:`Verdict` aggregates the
results of all checkers run at one checking moment and names the host
that is blamed when an attack is detected.  Verdicts are what the
journey driver collects and what the detection metrics consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Any, Dict, List, Optional, Tuple

from repro.core.attributes import CheckMoment

__all__ = ["VerdictStatus", "CheckResult", "Verdict"]


@unique
class VerdictStatus(Enum):
    """Possible outcomes of a check."""

    #: The session is consistent with the reference state.
    OK = "ok"
    #: The session deviates from the reference state: an attack (or a
    #: fault — the paper's attack definition includes unintentional
    #: errors) was detected.
    ATTACK_DETECTED = "attack-detected"
    #: The check could not be carried out (missing reference data,
    #: unverifiable signatures, replay failure); no statement about the
    #: session can be made.
    INCONCLUSIVE = "inconclusive"
    #: The check was skipped on purpose (trusted host, collaboration,
    #: or policy said not to check).
    SKIPPED = "skipped"


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one checking algorithm on one session."""

    checker: str
    status: VerdictStatus
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_attack(self) -> bool:
        """Whether this single result indicates an attack."""
        return self.status is VerdictStatus.ATTACK_DETECTED

    def to_canonical(self) -> Dict[str, Any]:
        return {
            "checker": self.checker,
            "status": self.status.value,
            "details": self.details,
        }


@dataclass
class Verdict:
    """Aggregated outcome of one checking moment.

    Attributes
    ----------
    status:
        Overall status: attack detected if any checker detected one,
        otherwise inconclusive if any checker was inconclusive,
        otherwise skipped if everything was skipped, otherwise OK.
    mechanism:
        Name of the protection mechanism that produced the verdict.
    moment:
        The checking moment (after-session / after-task).
    checking_host:
        The host that carried out the check.
    checked_host:
        The host whose execution session was checked (``None`` for
        task-level summaries that do not single out a session).
    hop_index:
        Hop index of the checked session.
    results:
        The individual checker results that fed the verdict.
    state_difference:
        Structured diff between reference and observed state, when one
        was computed (this is what lets the owner "prove his/her damage"
        — the complete state is available, not just hashes).
    """

    status: VerdictStatus
    mechanism: str
    moment: CheckMoment
    checking_host: str
    checked_host: Optional[str] = None
    hop_index: Optional[int] = None
    results: List[CheckResult] = field(default_factory=list)
    state_difference: Optional[Dict[str, Any]] = None

    # -- aggregation -----------------------------------------------------------

    @classmethod
    def from_results(
        cls,
        results: List[CheckResult],
        mechanism: str,
        moment: CheckMoment,
        checking_host: str,
        checked_host: Optional[str] = None,
        hop_index: Optional[int] = None,
        state_difference: Optional[Dict[str, Any]] = None,
    ) -> "Verdict":
        """Aggregate individual checker results into one verdict."""
        status = cls._aggregate_status(results)
        return cls(
            status=status,
            mechanism=mechanism,
            moment=moment,
            checking_host=checking_host,
            checked_host=checked_host,
            hop_index=hop_index,
            results=list(results),
            state_difference=state_difference,
        )

    @staticmethod
    def _aggregate_status(results: List[CheckResult]) -> VerdictStatus:
        if not results:
            return VerdictStatus.SKIPPED
        statuses = {result.status for result in results}
        if VerdictStatus.ATTACK_DETECTED in statuses:
            return VerdictStatus.ATTACK_DETECTED
        if VerdictStatus.INCONCLUSIVE in statuses:
            return VerdictStatus.INCONCLUSIVE
        if VerdictStatus.OK in statuses:
            return VerdictStatus.OK
        return VerdictStatus.SKIPPED

    # -- convenience -------------------------------------------------------------

    @property
    def is_attack(self) -> bool:
        """Whether the verdict reports a detected attack."""
        return self.status is VerdictStatus.ATTACK_DETECTED

    @property
    def blamed_host(self) -> Optional[str]:
        """The host held responsible, when an attack was detected."""
        return self.checked_host if self.is_attack else None

    @property
    def failed_checkers(self) -> Tuple[str, ...]:
        """Names of checkers that reported an attack."""
        return tuple(r.checker for r in self.results if r.is_attack)

    def to_canonical(self) -> Dict[str, Any]:
        """Canonical form, so verdicts can be signed and transported."""
        return {
            "status": self.status.value,
            "mechanism": self.mechanism,
            "moment": self.moment.value,
            "checking_host": self.checking_host,
            "checked_host": self.checked_host,
            "hop_index": self.hop_index,
            "results": [result.to_canonical() for result in self.results],
            "state_difference": self.state_difference,
        }

"""Callback dispatch: ``checkAfterSession`` / ``checkAfterTask``.

Figure 4 of the paper defines two callbacks the host invokes on the
agent: ``checkAfterSession`` ("called by the host as the first action
when arriving") and ``checkAfterTask`` ("called by the last host").  The
idea of the framework is "to let the agent programmer decide about the
check mechanism a host has to execute": the agent's callback *is* the
checking program; the framework merely provides the reference data and
basic functionality such as signing.

:func:`dispatch_check` performs that invocation.  Agents that do not
override the callbacks fall back to the checkers configured in the
active :class:`~repro.core.policy.ProtectionPolicy`, so simple agents
get protection without writing checking code.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.agents.agent import MobileAgent
from repro.core.attributes import CheckMoment
from repro.core.checkers.base import Checker, CheckContext
from repro.core.verdict import CheckResult, VerdictStatus

__all__ = ["agent_overrides_callback", "normalize_callback_result", "dispatch_check"]


def agent_overrides_callback(agent: MobileAgent, moment: CheckMoment) -> bool:
    """Whether the agent class overrides the callback for ``moment``."""
    if moment is CheckMoment.AFTER_SESSION:
        return type(agent).check_after_session is not MobileAgent.check_after_session
    return type(agent).check_after_task is not MobileAgent.check_after_task


def normalize_callback_result(value: Any, checker_name: str) -> List[CheckResult]:
    """Coerce whatever an agent callback returned into check results.

    Supported return values: ``None`` (no statement — an empty list is
    returned so the framework falls back to its own checkers), a bool, a
    single :class:`CheckResult`, or a list/tuple of :class:`CheckResult`.
    """
    if value is None:
        return []
    if isinstance(value, CheckResult):
        return [value]
    if isinstance(value, bool):
        status = VerdictStatus.OK if value else VerdictStatus.ATTACK_DETECTED
        return [CheckResult(checker=checker_name, status=status)]
    if isinstance(value, (list, tuple)):
        results: List[CheckResult] = []
        for item in value:
            if isinstance(item, CheckResult):
                results.append(item)
            else:
                results.extend(normalize_callback_result(item, checker_name))
        return results
    return [
        CheckResult(
            checker=checker_name,
            status=VerdictStatus.INCONCLUSIVE,
            details={"reason": "callback returned unsupported value %r" % (value,)},
        )
    ]


def dispatch_check(
    agent: MobileAgent,
    moment: CheckMoment,
    context: CheckContext,
    fallback_checkers: Sequence[Checker] = (),
) -> List[CheckResult]:
    """Run the check for one moment, honouring the agent's callbacks.

    If the agent overrides the callback for ``moment``, it is invoked
    with the check context and its result is used (the agent programmer
    chose the check mechanism).  If the agent does not override the
    callback — or its callback returns ``None`` — the policy's fallback
    checkers are executed instead.

    A callback that raises is reported as an inconclusive result; the
    fallback checkers still run so a buggy custom check does not silence
    the framework entirely.
    """
    results: List[CheckResult] = []
    callback_name = moment.callback_name

    if agent_overrides_callback(agent, moment):
        try:
            if moment is CheckMoment.AFTER_SESSION:
                value = agent.check_after_session(context)
            else:
                value = agent.check_after_task(context)
        except Exception as exc:  # noqa: BLE001 - agent callback is user code
            results.append(
                CheckResult(
                    checker=callback_name,
                    status=VerdictStatus.INCONCLUSIVE,
                    details={
                        "reason": "agent callback raised %s: %s"
                        % (type(exc).__name__, exc)
                    },
                )
            )
            value = None
        results.extend(normalize_callback_result(value, callback_name))

    if not results:
        for checker in fallback_checkers:
            results.append(checker.check(context))
    return results

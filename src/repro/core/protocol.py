"""The example mechanism: per-session checking by the next host.

Section 6 of the paper demonstrates the framework with a mechanism from
Hohl's technical report 09/99 ("A New Protocol Protecting Mobile Agents
From Some Modification Attacks").  Its characteristics, all reproduced
here:

* it is based on Vigna's traces idea but **checks every execution
  session** instead of waiting for a suspicion;
* the **next host** checks the session of the current host, regardless
  of whether that next host is trusted;
* the reference data is the **initial state**, the **resulting state**,
  and the **input** of the session;
* **digital signatures and secure hashes** authenticate the data a host
  produces; **initial states are signed by both the checking host and
  the checked host** (dual commitment), so neither can later claim a
  different state was handed over;
* sessions on **trusted hosts are not checked** ("trusted hosts will not
  attack by definition");
* the mechanism transports the **complete initial state** of the checked
  session (digest-pinned by both signatures), so the next host can
  re-execute and the owner "is able to prove his/her damage in case of
  a fraud"; the resulting state needs no copy of its own — it is the
  very agent state that migrates, pinned by a signed digest (the paper's
  "signs hashes of initial and resulting states");
* the known limitation is inherited: **collaboration attacks of two or
  more consecutive hosts cannot be detected** — the collaborating next
  host simply skips the check.

The expected cost profile (Table 2) is that the protocol roughly doubles
the execution cost of light agents and adds ~1/3 for computation-heavy
agents (the main routine runs once more during checking).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.agents.agent import AgentCodeRegistry, MobileAgent, default_registry
from repro.agents.input import InputLog
from repro.agents.itinerary import Itinerary
from repro.agents.state import AgentState
from repro.core.attributes import CheckMoment
from repro.core.checkers.base import Checker, CheckContext
from repro.core.checkers.reexecution import ReExecutionChecker
from repro.core.reference_data import ReferenceDataSet
from repro.core.verdict import CheckResult, Verdict, VerdictStatus
from repro.crypto.canonical import canonical_equal
from repro.crypto.dsa import DSASignature
from repro.crypto.signing import SignedEnvelope
from repro.platform.host import Host
from repro.platform.registry import ProtectionMechanism
from repro.platform.session import SessionRecord

__all__ = ["ReferenceStateProtocol", "SessionVerifier", "check_session_payload"]

#: Key under which the protocol stores its payload version.  Version 2
#: switched the per-session commitments from signing full states to
#: signing state *digests* (the form the paper itself describes: "signs
#: hashes of initial and resulting states"); the full initial state
#: still travels once per session — unsigned but digest-pinned — because
#: the next host needs it for re-execution.
_PROTOCOL_VERSION = 2


class ReferenceStateProtocol(ProtectionMechanism):
    """Per-session re-execution checking by the next host.

    Parameters
    ----------
    code_registry:
        Registry providing the reference agent code for re-execution.
    trusted_hosts:
        Names of hosts the owner trusts.  Sessions executed on these
        hosts are not checked.  When ``None``, the checked host's
        ``trusted`` flag recorded at departure time is used.
    checker:
        The checking algorithm applied to untrusted sessions; defaults
        to :class:`~repro.core.checkers.reexecution.ReExecutionChecker`.
    check_trusted_hosts:
        Set to ``True`` to check every session regardless of trust
        (useful for ablation measurements of the skip optimization).
    """

    name = "reference-state-protocol"

    def __init__(
        self,
        code_registry: Optional[AgentCodeRegistry] = None,
        trusted_hosts: Optional[Iterable[str]] = None,
        checker: Optional[Checker] = None,
        check_trusted_hosts: bool = False,
    ) -> None:
        self.code_registry = code_registry or default_registry
        self.trusted_hosts = (
            frozenset(trusted_hosts) if trusted_hosts is not None else None
        )
        self.checker = checker or ReExecutionChecker()
        self.check_trusted_hosts = check_trusted_hosts

    # ------------------------------------------------------------------ hooks --

    def prepare_launch(self, agent: MobileAgent, itinerary: Itinerary,
                       home_host: Host) -> Dict[str, Any]:
        initial_state = agent.capture_state()
        commitment = self._make_commitment(
            home_host, agent, hop_index=0, state=initial_state, sender_envelope=None
        )
        return {
            "mechanism": self.name,
            "version": _PROTOCOL_VERSION,
            "prev_session": None,
            "pending_initial_commitment": commitment,
            "verdict_history": [],
        }

    def after_session(
        self,
        host: Host,
        agent: MobileAgent,
        itinerary: Itinerary,
        hop_index: int,
        record: SessionRecord,
        protocol_data: Optional[Dict[str, Any]],
    ) -> Dict[str, Any]:
        data = protocol_data or self.prepare_launch(agent, itinerary, host)

        # The resulting state needs no transport of its own: it *is* the
        # agent state that migrates.  Signing its digest pins it — the
        # next host hashes what actually arrived and compares — without
        # re-encoding the whole state into the protocol payload (the
        # dominant per-hop cost of protocol version 1).
        resulting_envelope = host.sign({
            "agent_id": record.agent_id,
            "hop_index": hop_index,
            "role": "resulting-state",
            "state_digest": record.resulting_state.digest().hex(),
        })
        input_envelope = host.sign({
            "agent_id": record.agent_id,
            "hop_index": hop_index,
            "role": "session-input",
            "input": record.input_log.to_canonical(),
        })

        data["prev_session"] = {
            "host": host.name,
            "hop_index": hop_index,
            "agent_id": record.agent_id,
            "code_name": record.code_name,
            "owner": record.owner,
            "trusted": host.trusted,
            "initial_commitment": data.pop("pending_initial_commitment", None),
            "resulting_envelope": resulting_envelope.to_canonical(),
            "input_envelope": input_envelope.to_canonical(),
        }
        return data

    def on_arrival(
        self,
        host: Host,
        agent: MobileAgent,
        itinerary: Itinerary,
        hop_index: int,
        protocol_data: Optional[Dict[str, Any]],
    ) -> Tuple[List[Verdict], Optional[Dict[str, Any]]]:
        observed_state = agent.capture_state()
        checked_host = itinerary.previous_host(hop_index)
        verdicts: List[Verdict] = []

        if protocol_data is None or protocol_data.get("prev_session") is None:
            verdict = self._protocol_data_missing_verdict(host, checked_host, hop_index)
            data = protocol_data if protocol_data is not None else {
                "mechanism": self.name,
                "version": _PROTOCOL_VERSION,
                "verdict_history": [],
            }
            data["prev_session"] = None
            data["pending_initial_commitment"] = self._make_commitment(
                host, agent, hop_index, observed_state, sender_envelope=None
            )
            self._append_verdict(host, data, verdict)
            return [verdict], data

        prev = protocol_data["prev_session"]
        protocol_data["prev_session"] = None

        skip_reason = self._skip_reason(host, prev, checked_host)
        if skip_reason is not None:
            verdict = Verdict(
                status=VerdictStatus.SKIPPED,
                mechanism=self.name,
                moment=CheckMoment.AFTER_SESSION,
                checking_host=host.name,
                checked_host=checked_host,
                hop_index=prev.get("hop_index"),
                results=[CheckResult(
                    checker="session-check",
                    status=VerdictStatus.SKIPPED,
                    details={"reason": skip_reason},
                )],
            )
        else:
            verdict = self._check_previous_session(
                host, prev, observed_state, checked_host
            )
        verdicts.append(verdict)
        self._append_verdict(host, protocol_data, verdict)

        # Dual commitment on the current session's initial state: this
        # (checking) host acknowledges the state it received; the sending
        # host's signature over the same state is its resulting-state
        # envelope, which is attached as the sender half.
        protocol_data["pending_initial_commitment"] = self._make_commitment(
            host,
            agent,
            hop_index,
            observed_state,
            sender_envelope=prev.get("resulting_envelope"),
        )
        return verdicts, protocol_data

    def after_task(
        self,
        host: Host,
        agent: MobileAgent,
        itinerary: Itinerary,
        protocol_data: Optional[Dict[str, Any]],
    ) -> List[Verdict]:
        history = (protocol_data or {}).get("verdict_history", [])
        attacks = [
            entry for entry in history
            if entry.get("verdict", {}).get("status") == VerdictStatus.ATTACK_DETECTED.value
        ]
        blamed = sorted({
            entry["verdict"].get("checked_host")
            for entry in attacks
            if entry.get("verdict", {}).get("checked_host")
        })
        summary = Verdict(
            status=(
                VerdictStatus.ATTACK_DETECTED if attacks else VerdictStatus.OK
            ),
            mechanism=self.name,
            moment=CheckMoment.AFTER_TASK,
            checking_host=host.name,
            checked_host=blamed[0] if blamed else None,
            results=[CheckResult(
                checker="journey-summary",
                status=(
                    VerdictStatus.ATTACK_DETECTED if attacks else VerdictStatus.OK
                ),
                details={
                    "session_verdicts": len(history),
                    "attacks_detected": len(attacks),
                    "blamed_hosts": blamed,
                },
            )],
        )
        return [summary]

    # ------------------------------------------------------------ protocol steps --

    def _make_commitment(
        self,
        receiver: Host,
        agent: MobileAgent,
        hop_index: int,
        state: AgentState,
        sender_envelope: Optional[Dict[str, Any]],
    ) -> Dict[str, Any]:
        """Build the (dual-signable) commitment on a session's initial state.

        Both halves of the dual commitment sign the state's *digest*:
        the receiver half here, the sender half being the previous
        host's resulting-state envelope over the same digest.  The full
        state rides along under ``"state"`` — unsigned, but pinned by
        the signed digest — because the next host must re-execute from
        it.  Embedding the :class:`~repro.agents.state.AgentState`
        object (rather than its expanded dictionary) lets the canonical
        encoder splice in the state's memoized encoding when the
        commitment is packed for the wire.
        """
        payload = {
            "agent_id": agent.agent_id,
            "hop_index": hop_index,
            "role": "initial-state",
            "state_digest": state.digest().hex(),
        }
        receiver_envelope = receiver.sign(payload)
        return {
            "payload": payload,
            "state": state,
            "receiver_signature": receiver_envelope.to_canonical(),
            "sender_envelope": sender_envelope,
        }

    def _skip_reason(self, checking_host: Host, prev: Dict[str, Any],
                     checked_host: Optional[str]) -> Optional[str]:
        """Return why the check is skipped, or ``None`` to check."""
        collaborates = getattr(checking_host, "collaborates_with", None)
        if callable(collaborates) and checked_host and collaborates(checked_host):
            return "checking host collaborates with the checked host"
        if self.check_trusted_hosts:
            return None
        if self._is_trusted(checked_host, prev):
            return "checked host is trusted; trusted hosts are not checked"
        return None

    def _is_trusted(self, checked_host: Optional[str], prev: Dict[str, Any]) -> bool:
        if checked_host is None:
            return False
        if self.trusted_hosts is not None:
            return checked_host in self.trusted_hosts
        return bool(prev.get("trusted", False))

    def _check_previous_session(
        self,
        host: Host,
        prev: Dict[str, Any],
        observed_state: AgentState,
        checked_host: Optional[str],
    ) -> Verdict:
        """Verify signatures and re-execute the previous session."""
        results: List[CheckResult] = []
        hop_index = prev.get("hop_index")
        claimed_host = prev.get("host")

        if checked_host is not None and claimed_host != checked_host:
            results.append(CheckResult(
                checker="session-metadata",
                status=VerdictStatus.ATTACK_DETECTED,
                details={
                    "reason": "protocol data claims a different executing host",
                    "claimed_host": claimed_host,
                    "expected_host": checked_host,
                },
            ))

        resulting = self._verify_envelope(
            host, prev.get("resulting_envelope"), checked_host, "resulting-state",
            results,
        )
        session_input = self._verify_envelope(
            host, prev.get("input_envelope"), checked_host, "session-input", results
        )
        initial_state = self._verify_commitment(
            host, prev.get("initial_commitment"), results
        )

        claimed_digest: Optional[str] = None
        if resulting is not None:
            claimed_digest = resulting.get("state_digest")
            if not isinstance(claimed_digest, str):
                results.append(CheckResult(
                    checker="resulting-state",
                    status=VerdictStatus.ATTACK_DETECTED,
                    details={"reason": "malformed committed resulting-state digest"},
                ))
                claimed_digest = None

        input_log: Optional[InputLog] = None
        if session_input is not None:
            try:
                input_log = InputLog.from_canonical(session_input.get("input"))
            except Exception:
                results.append(CheckResult(
                    checker="session-input",
                    status=VerdictStatus.ATTACK_DETECTED,
                    details={"reason": "malformed committed input log"},
                ))

        # Consistency between what the host signed and what it actually
        # sent: the arriving agent state *is* the claimed resulting
        # state, so one digest comparison replaces decoding and
        # re-encoding a transported copy.
        if (claimed_digest is not None
                and claimed_digest != observed_state.digest().hex()):
            results.append(CheckResult(
                checker="arrival-consistency",
                status=VerdictStatus.ATTACK_DETECTED,
                details={
                    "reason": (
                        "the agent state that arrived differs from the state "
                        "the checked host signed"
                    ),
                },
            ))

        if not any(result.is_attack for result in results):
            reference = ReferenceDataSet(
                session_host=claimed_host or (checked_host or "unknown"),
                hop_index=hop_index if hop_index is not None else 0,
                agent_id=prev.get("agent_id", "unknown"),
                code_name=prev.get("code_name", "unknown"),
                owner=prev.get("owner", "unknown"),
                initial_state=initial_state,
                # The digest match above established that the observed
                # state is exactly the state the checked host committed
                # to, so it serves as the claimed resulting state.
                resulting_state=(
                    observed_state if claimed_digest is not None else None
                ),
                input_log=input_log,
            )
            context = CheckContext(
                reference_data=reference,
                observed_state=observed_state,
                checked_host=checked_host or claimed_host or "unknown",
                checking_host=host.name,
                hop_index=hop_index if hop_index is not None else 0,
                keystore=host.keystore,
                code_registry=self.code_registry,
                metrics=host.metrics,
            )
            results.append(self.checker.check(context))

        state_difference = None
        for result in results:
            if result.is_attack and "state_difference" in result.details:
                state_difference = result.details["state_difference"]
                break

        return Verdict.from_results(
            results,
            mechanism=self.name,
            moment=CheckMoment.AFTER_SESSION,
            checking_host=host.name,
            checked_host=checked_host or claimed_host,
            hop_index=hop_index,
            state_difference=state_difference,
        )

    # ------------------------------------------------------------ verification --

    def _verify_envelope(
        self,
        host: Host,
        envelope_data: Optional[Dict[str, Any]],
        expected_signer: Optional[str],
        role: str,
        results: List[CheckResult],
    ) -> Optional[Dict[str, Any]]:
        """Verify a signed envelope from the protocol payload.

        Returns the payload on success and appends an attack result on
        failure (missing, malformed, wrong signer, or bad signature).
        """
        checker_name = "%s-signature" % role
        if not envelope_data:
            results.append(CheckResult(
                checker=checker_name,
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "the %s commitment is missing" % role},
            ))
            return None
        try:
            envelope = SignedEnvelope(
                payload=envelope_data["payload"],
                signer=envelope_data["signer"],
                signature=DSASignature.from_canonical(envelope_data["signature"]),
            )
        except Exception:
            results.append(CheckResult(
                checker=checker_name,
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "the %s commitment is malformed" % role},
            ))
            return None
        payload = envelope.payload if isinstance(envelope.payload, dict) else {}
        if payload.get("role") != role:
            results.append(CheckResult(
                checker=checker_name,
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "the commitment role does not match %r" % role},
            ))
            return None
        if not host.verify(envelope, expected_signer=expected_signer):
            results.append(CheckResult(
                checker=checker_name,
                status=VerdictStatus.ATTACK_DETECTED,
                details={
                    "reason": "the %s signature does not verify" % role,
                    "claimed_signer": envelope.signer,
                },
            ))
            return None
        return payload

    def _verify_commitment(
        self,
        host: Host,
        commitment: Optional[Dict[str, Any]],
        results: List[CheckResult],
    ) -> Optional[AgentState]:
        """Verify the dual-signed initial-state commitment.

        Returns the committed initial state on success.  The receiver
        (checked host) signature over the state digest is mandatory;
        the transported full state must hash to that digest; the sender
        envelope — the previous host's resulting-state commitment over
        the same digest — is verified when present.
        """
        checker_name = "initial-state-commitment"
        if not commitment:
            results.append(CheckResult(
                checker=checker_name,
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "the initial-state commitment is missing"},
            ))
            return None
        payload = commitment.get("payload") or {}
        receiver_data = commitment.get("receiver_signature")
        if not receiver_data:
            results.append(CheckResult(
                checker=checker_name,
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "the receiver signature on the initial state is missing"},
            ))
            return None
        try:
            receiver_envelope = SignedEnvelope(
                payload=receiver_data["payload"],
                signer=receiver_data["signer"],
                signature=DSASignature.from_canonical(receiver_data["signature"]),
            )
        except Exception:
            results.append(CheckResult(
                checker=checker_name,
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "the receiver signature is malformed"},
            ))
            return None
        if not host.verify(receiver_envelope):
            results.append(CheckResult(
                checker=checker_name,
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "the receiver signature on the initial state does not verify"},
            ))
            return None
        if not canonical_equal(receiver_envelope.payload, payload):
            results.append(CheckResult(
                checker=checker_name,
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "the receiver signed a different initial state"},
            ))
            return None
        committed_digest = payload.get("state_digest")
        if not isinstance(committed_digest, str):
            results.append(CheckResult(
                checker=checker_name,
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "the committed initial-state digest is malformed"},
            ))
            return None

        try:
            committed_state = AgentState.from_canonical(commitment.get("state"))
        except Exception:
            results.append(CheckResult(
                checker=checker_name,
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "the committed initial state is malformed"},
            ))
            return None
        if committed_state.digest().hex() != committed_digest:
            results.append(CheckResult(
                checker=checker_name,
                status=VerdictStatus.ATTACK_DETECTED,
                details={
                    "reason": (
                        "the transported initial state does not hash to the "
                        "digest both hosts signed"
                    )
                },
            ))
            return None

        sender_envelope_data = commitment.get("sender_envelope")
        if sender_envelope_data:
            try:
                sender_envelope = SignedEnvelope(
                    payload=sender_envelope_data["payload"],
                    signer=sender_envelope_data["signer"],
                    signature=DSASignature.from_canonical(
                        sender_envelope_data["signature"]
                    ),
                )
            except Exception:
                results.append(CheckResult(
                    checker=checker_name,
                    status=VerdictStatus.ATTACK_DETECTED,
                    details={"reason": "the sender half of the commitment is malformed"},
                ))
                return None
            if not host.verify(sender_envelope):
                results.append(CheckResult(
                    checker=checker_name,
                    status=VerdictStatus.ATTACK_DETECTED,
                    details={"reason": "the sender signature on the initial state does not verify"},
                ))
                return None
            sender_payload = (
                sender_envelope.payload
                if isinstance(sender_envelope.payload, dict) else {}
            )
            if sender_payload.get("state_digest") != committed_digest:
                results.append(CheckResult(
                    checker=checker_name,
                    status=VerdictStatus.ATTACK_DETECTED,
                    details={
                        "reason": (
                            "the sender and the receiver committed to different "
                            "initial states"
                        )
                    },
                ))
                return None

        return committed_state

    # ------------------------------------------------------------------ misc --

    def _protocol_data_missing_verdict(self, host: Host,
                                       checked_host: Optional[str],
                                       hop_index: int) -> Verdict:
        result = CheckResult(
            checker="protocol-data",
            status=VerdictStatus.ATTACK_DETECTED,
            details={
                "reason": (
                    "the protocol payload that must accompany the agent is "
                    "missing; the previous host removed or never produced it"
                )
            },
        )
        return Verdict.from_results(
            [result],
            mechanism=self.name,
            moment=CheckMoment.AFTER_SESSION,
            checking_host=host.name,
            checked_host=checked_host,
            hop_index=hop_index - 1,
        )

    def _append_verdict(self, host: Host, data: Dict[str, Any],
                        verdict: Verdict) -> None:
        """Append a host-signed verdict to the travelling history."""
        envelope = host.sign(verdict.to_canonical())
        data.setdefault("verdict_history", []).append({
            "verdict": verdict.to_canonical(),
            "signer": envelope.signer,
            "signature": envelope.signature.to_canonical(),
        })


# ---------------------------------------------------------------------------
# Detached session checking (the verification-service entry point)
# ---------------------------------------------------------------------------


class SessionVerifier:
    """A minimal checking principal that is not an agent platform.

    The paper's framework assumes verification may happen at *trusted
    parties* that many migrating agents contact; such a party verifies
    signatures and re-executes sessions but never hosts agents itself.
    This facade provides exactly the surface
    :meth:`ReferenceStateProtocol._check_previous_session` needs from a
    host — a name, a keystore, a metrics sink, and envelope
    verification — without the session machinery of
    :class:`~repro.platform.host.Host`.
    """

    def __init__(self, name: str, keystore: Any,
                 metrics: Optional[Any] = None) -> None:
        from repro.agents.context import NullMetrics

        self.name = name
        self.keystore = keystore
        self.metrics = metrics if metrics is not None else NullMetrics()

    def verify(self, envelope: SignedEnvelope,
               expected_signer: Optional[str] = None,
               category: str = "protocol_crypto",
               message: Optional[bytes] = None) -> bool:
        """Verify an envelope against the keystore (host-compatible)."""
        if expected_signer is not None and envelope.signer != expected_signer:
            return False
        with self.metrics.measure(category):
            return envelope.verify(self.keystore, message=message)


def check_session_payload(
    prev_session: Dict[str, Any],
    observed_state: Any,
    checked_host: Optional[str],
    *,
    checking_host: str,
    keystore: Any,
    code_registry: Optional[AgentCodeRegistry] = None,
    checker: Optional[Checker] = None,
    metrics: Optional[Any] = None,
) -> Verdict:
    """Check one protocol-v2 ``prev_session`` payload outside a journey.

    This is the wire-facing twin of the in-journey check the next host
    performs on arrival: given the previous session's commitments (in
    canonical form, exactly as they travel), the observed agent state,
    and the name of the checked host, it verifies every signature,
    re-executes the session, and returns the same
    :class:`~repro.core.verdict.Verdict` the in-process protocol would
    produce — bit for bit, because verdicts contain no wall-clock or
    transport-dependent data.  ``checking_host`` names the principal on
    whose behalf the check runs (it is stamped into the verdict), which
    lets a verification service answer for many checking hosts.
    """
    protocol = ReferenceStateProtocol(
        code_registry=code_registry, checker=checker
    )
    verifier = SessionVerifier(checking_host, keystore, metrics=metrics)
    if not isinstance(observed_state, AgentState):
        observed_state = AgentState.from_canonical(observed_state)
    return protocol._check_previous_session(
        verifier, prev_session, observed_state, checked_host
    )

"""Requester interfaces: how agents declare the reference data they need.

The paper (Section 5, Fig. 4) models the declaration of needed reference
data "by declaring the implementation of interfaces named
``InitalStateRequester``, ``ResultingStateRequester``,
``InputRequester``, ``ExecutionLogRequester``, and
``ResourceRequester``, similar to the usage of ``Clonable`` in Java".

In Python the same idea maps onto marker mixin classes: an agent class
inherits the requester mixins for the data kinds its checking mechanism
needs, and the framework inspects the class to decide what to collect
and transport.  :func:`requested_data_kinds` performs that inspection.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Union

from repro.core.attributes import ReferenceDataKind

__all__ = [
    "InitialStateRequester",
    "ResultingStateRequester",
    "InputRequester",
    "ExecutionLogRequester",
    "ResourceRequester",
    "FullReferenceDataRequester",
    "requested_data_kinds",
]


class InitialStateRequester:
    """Marker: the agent's checking mechanism needs the initial state."""

    _reference_data_kind = ReferenceDataKind.INITIAL_STATE


class ResultingStateRequester:
    """Marker: the agent's checking mechanism needs the resulting state."""

    _reference_data_kind = ReferenceDataKind.RESULTING_STATE


class InputRequester:
    """Marker: the agent's checking mechanism needs the session input."""

    _reference_data_kind = ReferenceDataKind.INPUT


class ExecutionLogRequester:
    """Marker: the agent's checking mechanism needs the execution log."""

    _reference_data_kind = ReferenceDataKind.EXECUTION_LOG


class ResourceRequester:
    """Marker: the agent's checking mechanism needs replicated resources."""

    _reference_data_kind = ReferenceDataKind.RESOURCES


class FullReferenceDataRequester(
    InitialStateRequester,
    ResultingStateRequester,
    InputRequester,
    ExecutionLogRequester,
    ResourceRequester,
):
    """Convenience marker requesting every kind of reference data."""


_MARKERS = (
    InitialStateRequester,
    ResultingStateRequester,
    InputRequester,
    ExecutionLogRequester,
    ResourceRequester,
)


def requested_data_kinds(agent_or_class: Union[object, type]) -> FrozenSet[ReferenceDataKind]:
    """Return the reference-data kinds an agent declares it needs.

    Accepts either an agent instance or an agent class.  Agents that
    declare nothing get an empty set; the protection policy may still
    add kinds of its own (the union is what gets collected).
    """
    cls = agent_or_class if isinstance(agent_or_class, type) else type(agent_or_class)
    kinds = set()
    for marker in _MARKERS:
        if issubclass(cls, marker):
            kinds.add(marker._reference_data_kind)
    return frozenset(kinds)


def kinds_to_names(kinds: Iterable[ReferenceDataKind]) -> tuple:
    """Stable, sorted tuple of kind values (for canonical payloads)."""
    return tuple(sorted(kind.value for kind in kinds))


__all__.append("kinds_to_names")

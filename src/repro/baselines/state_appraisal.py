"""State appraisal (Farmer, Guttman, Swarup — Section 3.1).

The state appraisal mechanism "checks the validity of the state of an
agent as the first step of executing an agent arrived at a host".  The
reference data is structured as a set of rules formulated by the agent
programmer; the check is done by the receiving host, which has its own
interest in executing only untampered agents.

Properties reproduced here (and asserted by the tests):

* only the *current* state of the arrived agent is considered — no
  input, no initial state, no execution log;
* attacks that keep the state consistent with the rules go undetected
  (the paper's lowest-price example: without the used prices, no
  inconsistency can be found);
* if the receiving host does not check (e.g. because it collaborates
  with the attacker), nothing is detected.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.agents.agent import MobileAgent
from repro.agents.itinerary import Itinerary
from repro.core.attributes import CheckMoment
from repro.core.checkers.base import CheckContext
from repro.core.checkers.rules import Rule, RuleChecker
from repro.core.reference_data import ReferenceDataSet
from repro.core.verdict import Verdict, VerdictStatus
from repro.platform.host import Host
from repro.platform.registry import ProtectionMechanism

__all__ = ["StateAppraisalMechanism"]


class StateAppraisalMechanism(ProtectionMechanism):
    """Rule-based appraisal of the arrived agent state at every host.

    Parameters
    ----------
    rules:
        The appraisal rules (postconditions over the agent's data
        variables).  They are evaluated against the state the agent
        arrives with.
    appraise_at_task_end:
        Also appraise the final state at the last host (on by default,
        mirroring that the home host certainly wants to appraise the
        returning agent).
    """

    name = "state-appraisal"

    def __init__(self, rules: Iterable[Rule],
                 appraise_at_task_end: bool = True) -> None:
        self._checker = RuleChecker(list(rules), name="state-appraisal-rules")
        self.appraise_at_task_end = appraise_at_task_end

    # -- hooks ---------------------------------------------------------------------

    def prepare_launch(self, agent: MobileAgent, itinerary: Itinerary,
                       home_host: Host) -> Dict[str, Any]:
        return {"mechanism": self.name}

    def on_arrival(
        self,
        host: Host,
        agent: MobileAgent,
        itinerary: Itinerary,
        hop_index: int,
        protocol_data: Optional[Dict[str, Any]],
    ) -> Tuple[List[Verdict], Optional[Dict[str, Any]]]:
        checked_host = itinerary.previous_host(hop_index)
        collaborates = getattr(host, "collaborates_with", None)
        if callable(collaborates) and checked_host and collaborates(checked_host):
            verdict = Verdict(
                status=VerdictStatus.SKIPPED,
                mechanism=self.name,
                moment=CheckMoment.AFTER_SESSION,
                checking_host=host.name,
                checked_host=checked_host,
                hop_index=hop_index - 1,
            )
            return [verdict], protocol_data
        verdict = self._appraise(
            host, agent, checked_host, hop_index - 1, CheckMoment.AFTER_SESSION
        )
        return [verdict], protocol_data

    def after_task(
        self,
        host: Host,
        agent: MobileAgent,
        itinerary: Itinerary,
        protocol_data: Optional[Dict[str, Any]],
    ) -> List[Verdict]:
        if not self.appraise_at_task_end:
            return []
        previous = itinerary.previous_host(len(itinerary) - 1)
        return [
            self._appraise(host, agent, previous, len(itinerary) - 1,
                           CheckMoment.AFTER_TASK)
        ]

    # -- internals ---------------------------------------------------------------------

    def _appraise(self, host: Host, agent: MobileAgent,
                  checked_host: Optional[str], hop_index: int,
                  moment: CheckMoment) -> Verdict:
        observed = agent.capture_state()
        # State appraisal has no transported reference data: the bundle
        # contains only the observed state itself.
        reference = ReferenceDataSet(
            session_host=checked_host or host.name,
            hop_index=max(hop_index, 0),
            agent_id=agent.agent_id,
            code_name=agent.get_code_name(),
            owner=agent.owner,
            resulting_state=observed,
        )
        context = CheckContext(
            reference_data=reference,
            observed_state=observed,
            checked_host=checked_host or host.name,
            checking_host=host.name,
            hop_index=max(hop_index, 0),
            keystore=host.keystore,
            metrics=host.metrics,
        )
        result = self._checker.check(context)
        return Verdict.from_results(
            [result],
            mechanism=self.name,
            moment=moment,
            checking_host=host.name,
            checked_host=checked_host,
            hop_index=hop_index if hop_index >= 0 else None,
        )

"""Proof verification (Yee; Biehl, Meyer, Wetzel — Section 3.4).

"Here, all proofs are sent to the agent originator, which checks the
proofs after the agent finishes with its task."  Every host attaches a
(short) proof of its execution to the agent; the originator verifies all
of them at task end, which is cheaper than re-executing the journey.

The proofs themselves are the simulated holographic proofs of
:mod:`repro.core.checkers.proofs` — see that module's docstring for the
documented substitution (real PCP constructions are NP-hard to build,
which is exactly why the paper sets the approach aside).

Unlike the traces baseline the execution log travels with the agent (it
is part of the "proof package"), so the originator needs no cooperation
from the hosts at verification time; the price is a larger agent.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.agents.agent import MobileAgent
from repro.agents.execution_log import ExecutionLog
from repro.agents.itinerary import Itinerary
from repro.agents.state import AgentState
from repro.core.attributes import CheckMoment
from repro.core.checkers.base import CheckContext
from repro.core.checkers.proofs import ProofChecker, build_proof
from repro.core.reference_data import ReferenceDataSet
from repro.core.verdict import CheckResult, Verdict, VerdictStatus
from repro.crypto.dsa import DSASignature
from repro.crypto.signing import SignedEnvelope
from repro.platform.host import Host
from repro.platform.registry import ProtectionMechanism
from repro.platform.session import SessionRecord

__all__ = ["ProofVerificationMechanism"]


class ProofVerificationMechanism(ProtectionMechanism):
    """Per-session proofs collected for the originator to verify at task end.

    Parameters
    ----------
    segments:
        Number of trace segments each proof commits to.
    verify_at_task_end:
        Whether the final host (normally the originator's home host)
        verifies the collected proofs in ``after_task``.  Verification
        can also be invoked manually through :meth:`verify_proofs`.
    """

    name = "proof-verification"

    def __init__(self, segments: int = 8, verify_at_task_end: bool = True) -> None:
        self.segments = segments
        self.verify_at_task_end = verify_at_task_end
        self._checker = ProofChecker()

    # -- journey-time hooks -------------------------------------------------------

    def prepare_launch(self, agent: MobileAgent, itinerary: Itinerary,
                       home_host: Host) -> Dict[str, Any]:
        return {"mechanism": self.name, "proof_packages": []}

    def after_session(
        self,
        host: Host,
        agent: MobileAgent,
        itinerary: Itinerary,
        hop_index: int,
        record: SessionRecord,
        protocol_data: Optional[Dict[str, Any]],
    ) -> Dict[str, Any]:
        data = protocol_data or self.prepare_launch(agent, itinerary, host)
        proof = build_proof(
            record.initial_state,
            record.resulting_state,
            record.execution_log,
            segments=self.segments,
        )
        envelope = host.sign({
            "role": "proof-package",
            "agent_id": record.agent_id,
            "hop_index": hop_index,
            "proof": proof.to_canonical(),
            "resulting_state_digest": record.resulting_state.digest().hex(),
        })
        package = {
            "host": host.name,
            "hop_index": hop_index,
            "code_name": record.code_name,
            "owner": record.owner,
            "agent_id": record.agent_id,
            "trusted": host.trusted,
            "proof": proof.to_canonical(),
            "execution_log": record.execution_log.to_canonical(),
            "initial_state": record.initial_state.to_canonical(),
            "resulting_state": record.resulting_state.to_canonical(),
            "envelope": envelope.to_canonical(),
        }
        data.setdefault("proof_packages", []).append(package)
        return data

    def after_task(
        self,
        host: Host,
        agent: MobileAgent,
        itinerary: Itinerary,
        protocol_data: Optional[Dict[str, Any]],
    ) -> List[Verdict]:
        if not self.verify_at_task_end:
            return []
        return self.verify_proofs(host, agent, protocol_data or {})

    # -- originator-side verification ----------------------------------------------------

    def verify_proofs(self, verifier_host: Host, agent: MobileAgent,
                      protocol_data: Dict[str, Any]) -> List[Verdict]:
        """Verify every collected proof package and return the verdicts."""
        packages = protocol_data.get("proof_packages", [])
        verdicts: List[Verdict] = []
        final_state = agent.capture_state()

        for position, package in enumerate(packages):
            results: List[CheckResult] = []
            self._verify_envelope(verifier_host, package, results)

            try:
                reference = ReferenceDataSet(
                    session_host=package["host"],
                    hop_index=int(package["hop_index"]),
                    agent_id=package["agent_id"],
                    code_name=package["code_name"],
                    owner=package["owner"],
                    initial_state=AgentState.from_canonical(package["initial_state"]),
                    resulting_state=AgentState.from_canonical(
                        package["resulting_state"]
                    ),
                    execution_log=ExecutionLog.from_canonical(
                        package["execution_log"]
                    ),
                )
            except Exception:
                results.append(CheckResult(
                    checker="proof-package",
                    status=VerdictStatus.ATTACK_DETECTED,
                    details={"reason": "malformed proof package"},
                ))
                verdicts.append(self._verdict(verifier_host, package, results))
                continue

            # Chain consistency: each session must start from the state the
            # previous session ended with.  A host that tampers with the
            # agent *before* executing it breaks this link.
            if position > 0:
                previous_resulting = packages[position - 1].get("resulting_state")
                if previous_resulting is not None and reference.initial_state is not None:
                    try:
                        previous_state = AgentState.from_canonical(previous_resulting)
                    except Exception:
                        previous_state = None
                    if (previous_state is not None
                            and not previous_state.equals(reference.initial_state)):
                        results.append(CheckResult(
                            checker="state-chain",
                            status=VerdictStatus.ATTACK_DETECTED,
                            details={"reason": (
                                "session did not start from the previous "
                                "session's resulting state"
                            )},
                        ))

            observed = self._observed_state(packages, position, final_state)
            context = CheckContext(
                reference_data=reference,
                observed_state=observed,
                checked_host=package["host"],
                checking_host=verifier_host.name,
                hop_index=int(package["hop_index"]),
                keystore=verifier_host.keystore,
                metrics=verifier_host.metrics,
                extras={"proof": package["proof"]},
            )
            results.append(self._checker.check(context))
            verdicts.append(self._verdict(verifier_host, package, results))
        return verdicts

    # -- internals -----------------------------------------------------------------

    def _verify_envelope(self, verifier_host: Host, package: Dict[str, Any],
                         results: List[CheckResult]) -> None:
        envelope_data = package.get("envelope") or {}
        try:
            envelope = SignedEnvelope(
                payload=envelope_data["payload"],
                signer=envelope_data["signer"],
                signature=DSASignature.from_canonical(envelope_data["signature"]),
            )
        except Exception:
            results.append(CheckResult(
                checker="proof-signature",
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "proof package is not properly signed"},
            ))
            return
        if not verifier_host.verify(envelope, expected_signer=package.get("host")):
            results.append(CheckResult(
                checker="proof-signature",
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "proof package signature does not verify"},
            ))

    def _verdict(self, verifier_host: Host, package: Dict[str, Any],
                 results: List[CheckResult]) -> Verdict:
        return Verdict.from_results(
            results,
            mechanism=self.name,
            moment=CheckMoment.AFTER_TASK,
            checking_host=verifier_host.name,
            checked_host=package.get("host"),
            hop_index=package.get("hop_index"),
        )

    @staticmethod
    def _observed_state(packages: List[Dict[str, Any]], position: int,
                        final_state: AgentState) -> Optional[AgentState]:
        # For intermediate packages the proof is only checked against the
        # state the host itself committed to (binding against the *next*
        # host's initial state would mis-blame the earlier host when the
        # next host tampered before executing — the chain check covers
        # that case and blames the right side).  The last package is
        # additionally bound to the state the agent actually came home
        # with.
        if position + 1 < len(packages):
            return None
        return final_state

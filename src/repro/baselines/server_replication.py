"""Server replication with voting (Minsky, van Renesse, Schneider, Stoller).

Section 3.2: "The authors assume for every stage, i.e. an execution
session on one host, a set of independent, replicated hosts ... Every
execution step is processed in parallel by all replicated hosts.  After
the execution, the hosts vote about the result of the step. ... The
executions with the most votes wins, and the next step is executed.
Obviously, even (n/2 - 1) malicious hosts can be tolerated."

The replicated execution model does not fit the linear itinerary of the
other mechanisms, so this baseline ships its own journey driver,
:class:`ServerReplicationProtocol.run`, which executes every stage on
all of its replicas, votes on the resulting state (by canonical digest),
carries the majority state forward, and reports every minority replica
as a detected attacker.

Reproduction notes:

* "the input to the agent has to be shared and one host must not be
  able to hold back input to the other hosts" — replicas of a stage
  must offer the same services; the scenario builder is responsible for
  that (tests construct replicas with identical data and a malicious
  replica that tampers).
* collaboration attacks below the majority threshold are detected; at
  or above the threshold the wrong state wins, which the tests assert
  as the expected failure mode;
* the agent executed under replication must be *location independent*:
  its resulting state may depend on its inputs but not on the replica's
  host name, otherwise honest replicas produce different states and no
  quorum forms (the paper's shared-input requirement in code form).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.agents.agent import AgentCodeRegistry, MobileAgent, default_registry
from repro.agents.itinerary import Itinerary
from repro.agents.state import AgentState
from repro.core.attributes import CheckMoment
from repro.core.verdict import CheckResult, Verdict, VerdictStatus
from repro.exceptions import ReplicationError
from repro.platform.host import Host
from repro.platform.session import SessionRecord

__all__ = ["ReplicationStage", "StageOutcome", "ReplicatedJourneyResult",
           "ServerReplicationProtocol"]


@dataclass
class ReplicationStage:
    """One stage: a set of independent replica hosts offering the same data."""

    replicas: List[Host]

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ReplicationError("a replication stage needs at least one replica")

    @property
    def size(self) -> int:
        """Number of replicas in this stage."""
        return len(self.replicas)

    def names(self) -> Tuple[str, ...]:
        """Replica host names in stage order."""
        return tuple(host.name for host in self.replicas)


@dataclass
class StageOutcome:
    """Result of executing and voting on one stage."""

    stage_index: int
    votes: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    winning_digest: Optional[str] = None
    winning_state: Optional[AgentState] = None
    minority_hosts: Tuple[str, ...] = ()
    records: List[SessionRecord] = field(default_factory=list)
    tie: bool = False

    @property
    def unanimous(self) -> bool:
        """Whether every replica produced the same resulting state."""
        return len(self.votes) == 1


@dataclass
class ReplicatedJourneyResult:
    """Everything observed when running an agent through replicated stages."""

    final_state: AgentState
    stage_outcomes: List[StageOutcome] = field(default_factory=list)
    verdicts: List[Verdict] = field(default_factory=list)

    @property
    def detected_attack(self) -> bool:
        """Whether any stage produced minority (outvoted) results."""
        return any(outcome.minority_hosts for outcome in self.stage_outcomes)

    def blamed_hosts(self) -> Tuple[str, ...]:
        """All outvoted replica hosts across stages, deduplicated."""
        blamed = set()
        for outcome in self.stage_outcomes:
            blamed.update(outcome.minority_hosts)
        return tuple(sorted(blamed))


class ServerReplicationProtocol:
    """Executes an agent through stages of replicated hosts with voting.

    Parameters
    ----------
    code_registry:
        Registry used to re-instantiate the agent for every replica, so
        each replica executes from the same initial state with its own
        agent object (no accidental sharing).
    minimum_quorum:
        Minimum number of identical votes required for a stage result to
        be accepted; defaults to a strict majority of the stage size.
    """

    name = "server-replication"

    def __init__(self, code_registry: Optional[AgentCodeRegistry] = None,
                 minimum_quorum: Optional[int] = None) -> None:
        self.code_registry = code_registry or default_registry
        self.minimum_quorum = minimum_quorum

    def run(self, agent: MobileAgent,
            stages: Sequence[ReplicationStage]) -> ReplicatedJourneyResult:
        """Run ``agent`` through ``stages`` and return the voted result.

        Raises
        ------
        ReplicationError
            If a stage cannot reach the required quorum (a tie or too
            many diverging replicas).
        """
        if not stages:
            raise ReplicationError("at least one replication stage is required")

        current_state = agent.capture_state()
        result = ReplicatedJourneyResult(final_state=current_state)

        for stage_index, stage in enumerate(stages):
            outcome = self._run_stage(agent, stage, stage_index, current_state)
            result.stage_outcomes.append(outcome)
            result.verdicts.extend(
                self._stage_verdicts(stage, stage_index, outcome)
            )
            if outcome.winning_state is None:
                raise ReplicationError(
                    "stage %d could not reach a quorum (tie between %d vote groups)"
                    % (stage_index, len(outcome.votes))
                )
            current_state = outcome.winning_state

        result.final_state = current_state
        return result

    # -- internals -----------------------------------------------------------------

    def _run_stage(self, agent: MobileAgent, stage: ReplicationStage,
                   stage_index: int, initial_state: AgentState) -> StageOutcome:
        outcome = StageOutcome(stage_index=stage_index)
        digests: Dict[str, AgentState] = {}
        per_host_digest: Dict[str, str] = {}

        for replica in stage.replicas:
            replica_agent = self.code_registry.instantiate(
                agent.get_code_name(), initial_state,
                owner=agent.owner, agent_id=agent.agent_id,
            )
            # Each replica executes the stage as a standalone session; the
            # stage structure itself plays the role of the itinerary.
            replica_itinerary = Itinerary(hosts=[replica.name])
            record = replica.execute_agent(replica_agent, replica_itinerary, 0)
            outcome.records.append(record)
            digest = record.resulting_state.digest().hex()
            per_host_digest[replica.name] = digest
            digests.setdefault(digest, record.resulting_state)

        counts = Counter(per_host_digest.values())
        outcome.votes = {
            digest: tuple(sorted(
                name for name, host_digest in per_host_digest.items()
                if host_digest == digest
            ))
            for digest in counts
        }

        required = self.minimum_quorum or (stage.size // 2 + 1)
        winning_digest, winning_count = counts.most_common(1)[0]
        tied = [d for d, c in counts.items() if c == winning_count]
        if len(tied) > 1 or winning_count < required:
            outcome.tie = True
            return outcome

        outcome.winning_digest = winning_digest
        outcome.winning_state = digests[winning_digest]
        outcome.minority_hosts = tuple(sorted(
            name for name, digest in per_host_digest.items()
            if digest != winning_digest
        ))
        return outcome

    def _stage_verdicts(self, stage: ReplicationStage, stage_index: int,
                        outcome: StageOutcome) -> List[Verdict]:
        verdicts: List[Verdict] = []
        checking = ",".join(stage.names())
        for host in outcome.minority_hosts:
            result = CheckResult(
                checker="stage-vote",
                status=VerdictStatus.ATTACK_DETECTED,
                details={
                    "reason": "replica result was outvoted by the stage majority",
                    "stage": stage_index,
                },
            )
            verdicts.append(Verdict.from_results(
                [result],
                mechanism=self.name,
                moment=CheckMoment.AFTER_SESSION,
                checking_host=checking,
                checked_host=host,
                hop_index=stage_index,
            ))
        if not outcome.minority_hosts and outcome.winning_state is not None:
            result = CheckResult(checker="stage-vote", status=VerdictStatus.OK,
                                 details={"stage": stage_index})
            verdicts.append(Verdict.from_results(
                [result],
                mechanism=self.name,
                moment=CheckMoment.AFTER_SESSION,
                checking_host=checking,
                checked_host=None,
                hop_index=stage_index,
            ))
        return verdicts

"""Cryptographic execution traces (Vigna — Section 3.3).

Every host records a trace of the statements whose effect depends on
input from outside the agent.  After the session, the host signs a hash
of the trace and a hash of the resulting agent state and forwards those
hashes with the agent; the trace itself stays stored at the host.  Only
when the owner *suspects* a fraud does it request the traces and
re-execute the journey hop by hop, comparing each re-executed resulting
state with the hash the host committed to.

Differences from the paper's example mechanism (Section 6), reproduced
faithfully because they are exactly what motivates the example
mechanism:

* checking is **suspicion-driven and happens after the task**, so a
  compromised agent keeps working on later hosts before the fraud is
  found;
* only **hashes** of the resulting states travel with the agent, so the
  owner can identify *which* host cheated but cannot present the
  complete tampered state as evidence;
* hosts must **cooperate during the investigation** by handing over
  their stored traces; a host that refuses stalls the investigation at
  its hop (the investigation reports it as unresolvable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.agents.agent import AgentCodeRegistry, MobileAgent, default_registry
from repro.agents.input import InputLog
from repro.agents.itinerary import Itinerary
from repro.agents.replay import ReExecutor
from repro.agents.state import AgentState
from repro.core.attributes import CheckMoment
from repro.core.verdict import CheckResult, Verdict, VerdictStatus
from repro.crypto.dsa import DSASignature
from repro.crypto.signing import SignedEnvelope
from repro.platform.host import Host
from repro.platform.registry import ProtectionMechanism
from repro.platform.session import SessionRecord

__all__ = ["StoredTrace", "TraceCommitment", "InvestigationReport",
           "VignaTracesMechanism"]


@dataclass
class StoredTrace:
    """What the executing host keeps locally for a possible investigation."""

    host: str
    hop_index: int
    input_log: InputLog
    trace_digest: str
    resulting_state_digest: str


@dataclass(frozen=True)
class TraceCommitment:
    """The signed hashes that travel with the agent (one per session)."""

    host: str
    hop_index: int
    code_name: str
    owner: str
    agent_id: str
    initial_state_digest: str
    trace_digest: str
    resulting_state_digest: str
    envelope: Dict[str, Any]
    is_final_hop: bool = False

    def to_canonical(self) -> Dict[str, Any]:
        return {
            "host": self.host,
            "hop_index": self.hop_index,
            "code_name": self.code_name,
            "owner": self.owner,
            "agent_id": self.agent_id,
            "initial_state_digest": self.initial_state_digest,
            "trace_digest": self.trace_digest,
            "resulting_state_digest": self.resulting_state_digest,
            "envelope": self.envelope,
            "is_final_hop": self.is_final_hop,
        }

    @classmethod
    def from_canonical(cls, data: Dict[str, Any]) -> "TraceCommitment":
        return cls(
            host=data["host"],
            hop_index=int(data["hop_index"]),
            code_name=data["code_name"],
            owner=data["owner"],
            agent_id=data["agent_id"],
            initial_state_digest=data["initial_state_digest"],
            trace_digest=data["trace_digest"],
            resulting_state_digest=data["resulting_state_digest"],
            envelope=dict(data["envelope"]),
            is_final_hop=bool(data.get("is_final_hop", False)),
        )


@dataclass
class InvestigationReport:
    """Outcome of an owner-triggered investigation of a journey."""

    verdicts: List[Verdict] = field(default_factory=list)
    first_cheating_host: Optional[str] = None
    stalled_at_host: Optional[str] = None

    @property
    def detected_attack(self) -> bool:
        """Whether the investigation identified at least one cheater."""
        return self.first_cheating_host is not None

    def blamed_hosts(self) -> Tuple[str, ...]:
        """All hosts blamed by the investigation."""
        return tuple(sorted({
            v.checked_host for v in self.verdicts
            if v.is_attack and v.checked_host
        }))


class VignaTracesMechanism(ProtectionMechanism):
    """Traces recording during the journey plus owner-side investigation."""

    name = "vigna-traces"

    def __init__(self, code_registry: Optional[AgentCodeRegistry] = None) -> None:
        self.code_registry = code_registry or default_registry
        #: Traces kept by the executing hosts, keyed by (host, hop index).
        #: In a deployment each host would store its own trace; the
        #: single-process simulation centralizes them here and the
        #: ``trace_provider`` of :meth:`investigate` models the request.
        self.stored_traces: Dict[Tuple[str, int], StoredTrace] = {}

    # -- journey-time hooks -------------------------------------------------------

    def prepare_launch(self, agent: MobileAgent, itinerary: Itinerary,
                       home_host: Host) -> Dict[str, Any]:
        return {
            "mechanism": self.name,
            "launch_state_digest": agent.capture_state().digest().hex(),
            "commitments": [],
        }

    def after_session(
        self,
        host: Host,
        agent: MobileAgent,
        itinerary: Itinerary,
        hop_index: int,
        record: SessionRecord,
        protocol_data: Optional[Dict[str, Any]],
    ) -> Dict[str, Any]:
        data = protocol_data or self.prepare_launch(agent, itinerary, host)

        trace_digest = record.execution_log.digest().hex()
        resulting_digest = record.resulting_state.digest().hex()
        initial_digest = record.initial_state.digest().hex()

        # The trace itself stays at the host (here: in the mechanism's
        # host-keyed store); only the signed hashes travel.
        self.stored_traces[(host.name, hop_index)] = StoredTrace(
            host=host.name,
            hop_index=hop_index,
            input_log=record.input_log.copy(),
            trace_digest=trace_digest,
            resulting_state_digest=resulting_digest,
        )

        envelope = host.sign({
            "role": "trace-commitment",
            "agent_id": record.agent_id,
            "hop_index": hop_index,
            "initial_state_digest": initial_digest,
            "trace_digest": trace_digest,
            "resulting_state_digest": resulting_digest,
        })
        commitment = TraceCommitment(
            host=host.name,
            hop_index=hop_index,
            code_name=record.code_name,
            owner=record.owner,
            agent_id=record.agent_id,
            initial_state_digest=initial_digest,
            trace_digest=trace_digest,
            resulting_state_digest=resulting_digest,
            envelope=envelope.to_canonical(),
            is_final_hop=record.is_final_hop,
        )
        data.setdefault("commitments", []).append(commitment.to_canonical())
        return data

    # -- owner-side investigation ----------------------------------------------------

    def investigate(
        self,
        owner_host: Host,
        initial_state: AgentState,
        protocol_data: Dict[str, Any],
        trace_provider: Optional[Callable[[str, int], Optional[StoredTrace]]] = None,
        suspicious: bool = True,
    ) -> InvestigationReport:
        """Re-execute the whole journey from stored traces.

        Parameters
        ----------
        owner_host:
            The owner's (home) host: provides the keystore to verify the
            commitments and the signer identity of the investigation.
        initial_state:
            The agent state as it was originally launched (the owner
            knows it — it created the agent).
        protocol_data:
            The protocol payload the agent returned with (the chain of
            signed commitments).
        trace_provider:
            How to obtain the stored trace of a host; defaults to this
            mechanism's own store.  Returning ``None`` models a host
            refusing to cooperate.
        suspicious:
            The paper's precondition: the owner only investigates when a
            fraud is suspected.  Passing ``False`` returns an empty
            report — this models the mechanism's main weakness.
        """
        report = InvestigationReport()
        if not suspicious:
            return report

        provider = trace_provider or (
            lambda host, hop: self.stored_traces.get((host, hop))
        )
        commitments = [
            TraceCommitment.from_canonical(entry)
            for entry in protocol_data.get("commitments", [])
        ]
        executor = ReExecutor(self.code_registry)
        current_state = initial_state

        for commitment in sorted(commitments, key=lambda c: c.hop_index):
            results: List[CheckResult] = []

            envelope_ok = self._verify_commitment(owner_host, commitment, results)
            stored = provider(commitment.host, commitment.hop_index)
            if stored is None:
                report.stalled_at_host = commitment.host
                results.append(CheckResult(
                    checker="trace-request",
                    status=VerdictStatus.INCONCLUSIVE,
                    details={"reason": "host did not provide its stored trace"},
                ))
                report.verdicts.append(self._verdict(owner_host, commitment, results))
                break

            # The host commits on its trace: a provided trace whose hash
            # does not match the committed hash is itself an attack.
            if envelope_ok and stored.trace_digest != commitment.trace_digest:
                results.append(CheckResult(
                    checker="trace-hash",
                    status=VerdictStatus.ATTACK_DETECTED,
                    details={"reason": "provided trace does not match the committed hash"},
                ))

            if commitment.initial_state_digest != current_state.digest().hex():
                results.append(CheckResult(
                    checker="initial-state-hash",
                    status=VerdictStatus.ATTACK_DETECTED,
                    details={"reason": (
                        "the host started from a different initial state than "
                        "the previous host produced"
                    )},
                ))

            replay = executor.re_execute(
                code_name=commitment.code_name,
                initial_state=current_state,
                recorded_input=stored.input_log,
                host_name=commitment.host,
                hop_index=commitment.hop_index,
                is_final_hop=commitment.is_final_hop,
                owner=commitment.owner,
                agent_id=commitment.agent_id,
                metrics=owner_host.metrics,
            )
            if not replay.succeeded:
                results.append(CheckResult(
                    checker="re-execution",
                    status=VerdictStatus.ATTACK_DETECTED,
                    details={"reason": "the recorded input cannot reproduce the session",
                             "replay_error": replay.error},
                ))
            else:
                replay_digest = replay.resulting_state.digest().hex()
                if replay_digest != commitment.resulting_state_digest:
                    results.append(CheckResult(
                        checker="re-execution",
                        status=VerdictStatus.ATTACK_DETECTED,
                        details={"reason": (
                            "re-executed resulting state does not match the hash "
                            "the host signed"
                        )},
                    ))
                else:
                    results.append(CheckResult(
                        checker="re-execution", status=VerdictStatus.OK
                    ))
                # The re-executed state (matching or not) is the reference
                # the next hop must have started from.
                current_state = replay.resulting_state

            verdict = self._verdict(owner_host, commitment, results)
            report.verdicts.append(verdict)
            if verdict.is_attack and report.first_cheating_host is None:
                report.first_cheating_host = commitment.host
                # The paper's procedure stops once the cheating host is
                # identified: later states are derived from a compromised
                # execution anyway.
                break

        return report

    # -- internals -----------------------------------------------------------------

    def _verify_commitment(self, owner_host: Host, commitment: TraceCommitment,
                           results: List[CheckResult]) -> bool:
        envelope_data = commitment.envelope
        try:
            envelope = SignedEnvelope(
                payload=envelope_data["payload"],
                signer=envelope_data["signer"],
                signature=DSASignature.from_canonical(envelope_data["signature"]),
            )
        except Exception:
            results.append(CheckResult(
                checker="commitment-signature",
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "trace commitment is malformed"},
            ))
            return False
        if not owner_host.verify(envelope, expected_signer=commitment.host):
            results.append(CheckResult(
                checker="commitment-signature",
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "trace commitment signature does not verify"},
            ))
            return False
        payload = envelope.payload if isinstance(envelope.payload, dict) else {}
        consistent = (
            payload.get("trace_digest") == commitment.trace_digest
            and payload.get("resulting_state_digest") == commitment.resulting_state_digest
            and payload.get("initial_state_digest") == commitment.initial_state_digest
        )
        if not consistent:
            results.append(CheckResult(
                checker="commitment-signature",
                status=VerdictStatus.ATTACK_DETECTED,
                details={"reason": "commitment fields do not match the signed payload"},
            ))
            return False
        return True

    def _verdict(self, owner_host: Host, commitment: TraceCommitment,
                 results: List[CheckResult]) -> Verdict:
        return Verdict.from_results(
            results,
            mechanism=self.name,
            moment=CheckMoment.AFTER_TASK,
            checking_host=owner_host.name,
            checked_host=commitment.host,
            hop_index=commitment.hop_index,
        )

"""Runnable implementations of the four existing approaches (Section 3)."""

from repro.baselines.execution_traces import (
    InvestigationReport,
    StoredTrace,
    TraceCommitment,
    VignaTracesMechanism,
)
from repro.baselines.proof_verification import ProofVerificationMechanism
from repro.baselines.server_replication import (
    ReplicatedJourneyResult,
    ReplicationStage,
    ServerReplicationProtocol,
    StageOutcome,
)
from repro.baselines.state_appraisal import StateAppraisalMechanism

__all__ = [
    "InvestigationReport",
    "StoredTrace",
    "TraceCommitment",
    "VignaTracesMechanism",
    "ProofVerificationMechanism",
    "ReplicatedJourneyResult",
    "ReplicationStage",
    "ServerReplicationProtocol",
    "StageOutcome",
    "StateAppraisalMechanism",
]

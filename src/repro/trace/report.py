"""Campaign forensics report built from a recorded trace.

One trace in, one incident-response artifact out: campaign summary
(precision/recall/FPR and the per-scenario detection matrix, exactly as
:meth:`~repro.sim.campaign.CampaignResult.summary` computes them),
time-to-detection percentiles over the detected campaign journeys, and
a blame summary (which hosts were blamed, and whether blame landed on
the actual strike target).  The JSON form is the machine artifact (CI
uploads it per campaign-smoke run); the HTML form is a dependency-free
single file an operator can open from the artifact store.
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, Iterable, List, Optional

from repro.obs import percentile
from repro.sim.trace import attack_events
from repro.trace import campaign_result_from_trace

__all__ = [
    "REPORT_SCHEMA",
    "build_report",
    "render_html",
    "write_report",
]

#: Version of the report JSON artifact.
REPORT_SCHEMA = "repro-trace-report/1"


def _time_to_detection(events: Iterable[Dict[str, Any]],
                       result: Any) -> Dict[str, Any]:
    times = sorted(
        outcome.time_to_detection
        for outcome in result.campaign_journeys
        if outcome.detected and outcome.time_to_detection is not None
    )
    return {
        "detections": len(times),
        "p50": percentile(times, 0.50) if times else None,
        "p95": percentile(times, 0.95) if times else None,
        "p99": percentile(times, 0.99) if times else None,
        "mean": (sum(times) / len(times)) if times else None,
        "max": times[-1] if times else None,
    }


def _blame_summary(events: Iterable[Dict[str, Any]],
                   result: Any) -> Dict[str, Any]:
    ordered = list(events)
    attacks = attack_events(ordered)
    blamed_counts: Dict[str, int] = {}
    correct = 0
    blamed_journeys = 0
    for outcome in result.campaign_journeys:
        if not outcome.blamed_hosts:
            continue
        blamed_journeys += 1
        for host in outcome.blamed_hosts:
            blamed_counts[host] = blamed_counts.get(host, 0) + 1
        attack = attacks.get(outcome.journey_id)
        if attack is not None and attack.get("target") in outcome.blamed_hosts:
            correct += 1
    return {
        "blamed_journeys": blamed_journeys,
        "correct_blame": correct,
        "blame_accuracy": (
            correct / blamed_journeys if blamed_journeys else None
        ),
        "hosts": dict(sorted(
            blamed_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )),
    }


def build_report(events: Iterable[Dict[str, Any]],
                 source: Optional[str] = None) -> Dict[str, Any]:
    """The complete forensics report of one trace, JSON-ready."""
    ordered = list(events)
    result = campaign_result_from_trace(ordered)
    return {
        "schema": REPORT_SCHEMA,
        "source": source,
        "config": result.config.to_canonical(),
        "campaign": result.summary(),
        "time_to_detection": _time_to_detection(ordered, result),
        "blame": _blame_summary(ordered, result),
    }


# -- HTML rendering ----------------------------------------------------------------

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #1b1f24; max-width: 70em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #d0d7de; padding: 0.35em 0.8em;
         text-align: left; font-size: 0.9em; }
th { background: #f6f8fa; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.ok { color: #1a7f37; } .bad { color: #cf222e; }
.meta { color: #57606a; font-size: 0.85em; }
"""


def _fmt(value: Any, digits: int = 4) -> str:
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return ("%%.%df" % digits) % value
    return html.escape(str(value))


def _kv_table(rows: List[Any]) -> str:
    cells = "".join(
        "<tr><th>%s</th><td class='num'>%s</td></tr>"
        % (html.escape(str(key)), _fmt(value))
        for key, value in rows
    )
    return "<table>%s</table>" % cells


def render_html(report: Dict[str, Any]) -> str:
    """Render the report dict as one self-contained HTML page."""
    campaign = report["campaign"]
    ttd = report["time_to_detection"]
    blame = report["blame"]

    summary_rows = [
        ("journeys", campaign["journeys"]),
        ("campaign attacked", campaign["campaign_attacked"]),
        ("benign", campaign["benign_journeys"]),
        ("precision", campaign["precision"]),
        ("recall", campaign["recall"]),
        ("false positive rate", campaign["false_positive_rate"]),
        ("always-detectable recall", campaign["always_detectable_recall"]),
    ]
    ttd_rows = [
        ("detections", ttd["detections"]),
        ("p50 (virtual s)", ttd["p50"]),
        ("p95 (virtual s)", ttd["p95"]),
        ("p99 (virtual s)", ttd["p99"]),
        ("mean", ttd["mean"]),
        ("max", ttd["max"]),
    ]

    scenario_cells = []
    for name, stats in sorted(campaign["per_scenario"].items()):
        expected = stats["expected_detected"]
        rate = stats["detection_rate"]
        cls = "ok" if (rate or 0.0) >= 1.0 or not expected else "bad"
        scenario_cells.append(
            "<tr><td>%s</td><td class='num'>%s</td><td class='num'>%s</td>"
            "<td class='num %s'>%s</td><td>%s</td>"
            "<td class='num'>%s</td><td class='num'>%s</td></tr>" % (
                html.escape(name),
                _fmt(stats["injected"]),
                _fmt(stats["detected"]),
                cls, _fmt(rate),
                _fmt(expected),
                _fmt(stats["mean_hops_to_detection"], 2),
                _fmt(stats["mean_time_to_detection"]),
            )
        )
    matrix_cells = []
    for cls_name, row in sorted(campaign["detectability_matrix"].items()):
        matrix_cells.append(
            "<tr><td>%s</td><td>%s</td><td class='num'>%s</td>"
            "<td class='num'>%s</td><td class='num'>%s</td></tr>" % (
                html.escape(cls_name),
                html.escape(", ".join(str(a) for a in row["areas"])),
                _fmt(row["mounted"]),
                _fmt(row["detected"]),
                _fmt(row["detection_rate"]),
            )
        )
    blame_cells = "".join(
        "<tr><td>%s</td><td class='num'>%d</td></tr>"
        % (html.escape(host), count)
        for host, count in blame["hosts"].items()
    )

    return """<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>repro trace report</title>
<style>%(style)s</style></head><body>
<h1>Campaign forensics report</h1>
<p class="meta">schema %(schema)s · source %(source)s ·
attack fraction %(fraction)s · seed %(seed)s</p>
<h2>Campaign summary</h2>
%(summary)s
<h2>Time to detection (virtual seconds, detected campaign journeys)</h2>
%(ttd)s
<h2>Per-scenario detection</h2>
<table><tr><th>scenario</th><th>injected</th><th>detected</th>
<th>rate</th><th>expected</th><th>mean hops-to-det</th>
<th>mean time-to-det</th></tr>%(scenarios)s</table>
<h2>Detectability matrix</h2>
<table><tr><th>class</th><th>areas</th><th>mounted</th>
<th>detected</th><th>rate</th></tr>%(matrix)s</table>
<h2>Blame (%(blamed)s journeys blamed, accuracy %(accuracy)s)</h2>
<table><tr><th>host</th><th>blamed count</th></tr>%(blame)s</table>
</body></html>
""" % {
        "style": _STYLE,
        "schema": html.escape(str(report["schema"])),
        "source": html.escape(str(report.get("source") or "-")),
        "fraction": _fmt(report["config"].get("attack_fraction")),
        "seed": _fmt(report["config"].get("seed")),
        "summary": _kv_table(summary_rows),
        "ttd": _kv_table(ttd_rows),
        "scenarios": "".join(scenario_cells),
        "matrix": "".join(matrix_cells),
        "blamed": _fmt(blame["blamed_journeys"]),
        "accuracy": _fmt(blame["blame_accuracy"]),
        "blame": blame_cells,
    }


def write_report(
    report: Dict[str, Any],
    json_path: Optional[str] = None,
    html_path: Optional[str] = None,
) -> None:
    """Write the JSON and/or HTML artifacts."""
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if html_path:
        with open(html_path, "w", encoding="utf-8") as handle:
            handle.write(render_html(report))

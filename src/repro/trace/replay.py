"""Deterministic single-journey policy replay over a recorded trace.

The fleet is shard-decomposable: journey ``index`` draws only from its
own named substreams, so a :class:`~repro.sim.fleet.FleetEngine` over
the range ``[index, index+1)`` reproduces that journey's events bit for
bit — no temp files, no other journeys, milliseconds of work.  Replay
builds on that twice:

* **Fidelity replay** (no ``--checker``): re-execute the journey under
  the checker the trace recorded and require the replayed events to be
  byte-identical to the recorded ones.  A divergence means the trace,
  the code, or the environment changed — the regression surface.
* **Policy replay** (``--checker <name>``): re-execute under a
  *different* :mod:`repro.baselines` checker and diff the verdicts hop
  by hop — "would state appraisal have caught what the reference-state
  protocol caught?", answered on the exact recorded journey.

Checker names are the mechanisms' own ``name`` attributes
(:data:`CHECKERS`).  Server replication is excluded: it re-executes
agents on replica sets rather than hooking the journey, so it has no
per-hop verdict stream to diff.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional

from repro.sim.fleet import FleetConfig, FleetEngine, journey_id_for_index
from repro.sim.trace import events_to_jsonl, fleet_event_key, journey_events
from repro.trace import trace_config

__all__ = [
    "CHECKERS",
    "ReplayResult",
    "checker_names",
    "recorded_checker_name",
    "replay_journey",
]


def _reference_state(system: Any) -> Any:
    from repro.core.protocol import ReferenceStateProtocol

    return ReferenceStateProtocol(
        code_registry=system.code_registry,
        trusted_hosts=("home",),
    )


def _state_appraisal(system: Any) -> Any:
    from repro.baselines.state_appraisal import StateAppraisalMechanism
    from repro.workloads.shopping import shopping_rules

    return StateAppraisalMechanism(shopping_rules())


def _vigna_traces(system: Any) -> Any:
    from repro.baselines.execution_traces import VignaTracesMechanism

    return VignaTracesMechanism(code_registry=system.code_registry)


def _proof_verification(system: Any) -> Any:
    from repro.baselines.proof_verification import ProofVerificationMechanism

    return ProofVerificationMechanism()


#: checker name → factory(system) building the protection mechanism.
#: ``unprotected`` maps to ``None``: the engine runs with no protocol,
#: exactly like a ``protected=False`` recording.
CHECKERS: Dict[str, Optional[Callable[[Any], Any]]] = {
    "reference-state-protocol": _reference_state,
    "unprotected": None,
    "state-appraisal": _state_appraisal,
    "vigna-traces": _vigna_traces,
    "proof-verification": _proof_verification,
}


def checker_names() -> List[str]:
    """Replayable checker names, sorted."""
    return sorted(CHECKERS)


def recorded_checker_name(config: FleetConfig) -> str:
    """The checker the trace was recorded under."""
    return "reference-state-protocol" if config.protected else "unprotected"


class _PolicyReplayEngine(FleetEngine):
    """A one-journey engine whose protocol is swappable.

    ``_build_protocol`` is the engine's documented override hook (the
    request-recording engine uses it the same way); the factory decides
    which checker guards the replayed journey.
    """

    def __init__(
        self,
        config: FleetConfig,
        index: int,
        checker_factory: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        super().__init__(config, agent_start=index, agent_stop=index + 1)
        self._checker_factory = checker_factory

    def _build_protocol(self, system: Any) -> Any:
        if self._checker_factory is None:
            return super()._build_protocol(system)
        return self._checker_factory(system)


@dataclass
class ReplayResult:
    """Outcome of replaying one journey under one checker."""

    journey_id: str
    checker: str
    recorded_checker: str
    #: Byte-identical recorded vs replayed event streams (the fidelity
    #: criterion; only expected to hold when ``checker`` is the
    #: recorded one).
    identical: bool
    recorded_events: List[Dict[str, Any]]
    replayed_events: List[Dict[str, Any]]
    #: Per-hop verdict comparison rows.
    hop_diffs: List[Dict[str, Any]]
    #: Outcome-level field comparison (detected, blamed, ...).
    outcome_diff: Dict[str, Dict[str, Any]]

    @property
    def verdicts_changed(self) -> bool:
        """Whether any hop verdict count or outcome field differs."""
        return any(row["changed"] for row in self.hop_diffs) or any(
            cell["recorded"] != cell["replayed"]
            for cell in self.outcome_diff.values()
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "journey": self.journey_id,
            "checker": self.checker,
            "recorded_checker": self.recorded_checker,
            "identical": self.identical,
            "verdicts_changed": self.verdicts_changed,
            "hops": self.hop_diffs,
            "outcome": self.outcome_diff,
        }


def _journey_index(journey_id: str) -> int:
    digits = journey_id.lstrip("j")
    if not digits.isdigit():
        raise ValueError("malformed journey id %r" % journey_id)
    index = int(digits)
    if journey_id_for_index(index) != journey_id:
        raise ValueError("malformed journey id %r" % journey_id)
    return index


def _hop_rows(events: List[Dict[str, Any]]) -> Dict[int, Dict[str, Any]]:
    return {
        int(event["hop_index"]): event
        for event in events
        if event.get("event") == "hop"
    }


def _complete_row(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    for event in events:
        if event.get("event") == "complete":
            return event
    return {}


def replay_journey(
    events: List[Dict[str, Any]],
    journey_id: str,
    checker: Optional[str] = None,
) -> ReplayResult:
    """Re-execute one recorded journey, optionally under another checker.

    The journey's configuration comes from the trace header; its index
    comes from the journey id (ids are a pure function of position).
    Replay runs a one-journey engine entirely in memory and compares
    the emitted events to the recorded ones.
    """
    config = trace_config(events)
    index = _journey_index(journey_id)
    if not 0 <= index < config.num_agents:
        raise ValueError(
            "journey %s outside the recorded fleet of %d journeys"
            % (journey_id, config.num_agents)
        )
    recorded = journey_events(events, journey_id)
    if not recorded:
        raise ValueError("journey %s not found in trace" % journey_id)

    recorded_checker = recorded_checker_name(config)
    effective = checker or recorded_checker
    if effective not in CHECKERS:
        raise ValueError(
            "unknown checker %r (known: %s)"
            % (effective, ", ".join(checker_names()))
        )

    run_config = replace(
        config,
        protected=(effective != "unprotected"),
        trace_path=None,
    )
    factory = CHECKERS[effective]
    if effective == "reference-state-protocol":
        # The engine's default _build_protocol is the production
        # construction; fidelity replay must exercise exactly it.
        factory = None
    engine = _PolicyReplayEngine(run_config, index, factory)
    engine.run()

    replayed = [
        event for event in sorted(engine.trace.events, key=fleet_event_key)
        if event.get("event") != "fleet"
    ]
    identical = events_to_jsonl(recorded) == events_to_jsonl(replayed)

    recorded_hops = _hop_rows(recorded)
    replayed_hops = _hop_rows(replayed)
    hop_diffs = []
    for hop_index in sorted(set(recorded_hops) | set(replayed_hops)):
        before = recorded_hops.get(hop_index, {})
        after = replayed_hops.get(hop_index, {})
        row = {
            "hop_index": hop_index,
            "host": before.get("host", after.get("host")),
            "recorded_verdicts": before.get("verdicts"),
            "replayed_verdicts": after.get("verdicts"),
        }
        row["changed"] = row["recorded_verdicts"] != row["replayed_verdicts"]
        hop_diffs.append(row)

    before_complete = _complete_row(recorded)
    after_complete = _complete_row(replayed)
    outcome_diff = {
        field: {
            "recorded": before_complete.get(field),
            "replayed": after_complete.get(field),
        }
        for field in (
            "detected", "blamed", "detected_at_hop", "expected",
        )
    }
    return ReplayResult(
        journey_id=journey_id,
        checker=effective,
        recorded_checker=recorded_checker,
        identical=identical,
        recorded_events=recorded,
        replayed_events=replayed,
        hop_diffs=hop_diffs,
        outcome_diff=outcome_diff,
    )

"""Trace forensics: rebuild fleet/campaign results from JSONL traces.

The fleet's JSONL traces were write-only until now: replayable in
principle, but nothing read them back into the result types the rest of
the stack analyzes.  This package is the read side — the operator
console (``python -m repro.trace``) and the library it sits on:

* :func:`load_trace` / :func:`trace_config` — open a trace and recover
  the exact :class:`~repro.sim.fleet.FleetConfig` that produced it.
* :func:`fleet_result_from_trace` / :func:`campaign_result_from_trace`
  — reconstruct :class:`~repro.sim.fleet.FleetResult` /
  :class:`~repro.sim.campaign.CampaignResult` from events alone, so a
  finished trace answers the same precision/recall/matrix questions as
  the live run (pinned to exact-equality by the tests).
* :func:`list_journeys` / :func:`journey_timeline` — per-journey
  drill-down for incident response: what launched, what struck, which
  hop alarmed.
* :mod:`repro.trace.replay` — deterministic single-journey *policy
  replay*: re-run one journey's detection under a different checker
  than the one recorded and diff the verdicts hop by hop.
* :mod:`repro.trace.report` — the campaign forensics report
  (time-to-detection percentiles, detection matrix, blame summary) as
  JSON and a self-contained HTML artifact.

Everything works off the recorded events; nothing here requires the
live run, its seed, or its host processes.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional

from repro.sim.campaign import CampaignResult
from repro.sim.fleet import FleetConfig, FleetResult, JourneyOutcome
from repro.sim.trace import (
    _read_events_tolerant,
    attack_events,
    journey_events,
    read_trace,
)

__all__ = [
    "load_trace",
    "trace_header",
    "trace_config",
    "fleet_result_from_trace",
    "campaign_result_from_trace",
    "list_journeys",
    "journey_timeline",
]


def load_trace(path: str, strict: bool = False) -> List[Dict[str, Any]]:
    """Read a JSONL trace file into its event list.

    The default is the tolerant reader (a torn final line — the
    signature of a worker killed mid-append — is dropped); ``strict``
    raises on any undecodable line instead.
    """
    if strict:
        return read_trace(path)
    events, _ = _read_events_tolerant(path)
    return events


def trace_header(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """The ``fleet`` header event of a trace (raises if absent)."""
    for event in events:
        if event.get("event") == "fleet":
            return event
    raise ValueError("trace has no fleet header event")


def trace_config(events: Iterable[Dict[str, Any]]) -> FleetConfig:
    """Reconstruct the :class:`FleetConfig` recorded in the header.

    The canonical config snapshot covers every field that shapes the
    deterministic surface; sequence fields come back as JSON lists and
    are re-tupled here so the reconstructed config is usable for
    replay (:mod:`repro.trace.replay` re-executes journeys under it).
    """
    data = dict(trace_header(events).get("config") or {})
    data["attack_scenarios"] = tuple(data.get("attack_scenarios") or ())
    data["journey_scenarios"] = tuple(data.get("journey_scenarios") or ())
    data["workload_mix"] = tuple(
        (str(workload), float(weight))
        for workload, weight in (data.get("workload_mix") or ())
    )
    known = {field.name for field in dataclasses.fields(FleetConfig)}
    return FleetConfig(**{
        key: value for key, value in data.items() if key in known
    })


def _outcome_from_events(
    launch: Dict[str, Any], complete: Dict[str, Any]
) -> JourneyOutcome:
    return JourneyOutcome(
        journey_id=str(complete["journey"]),
        workload=str(launch.get("workload", "")),
        itinerary=tuple(launch.get("itinerary") or ()),
        malicious_visited=tuple(complete.get("malicious_visited") or ()),
        # Resident-host scenario names are not recorded per journey;
        # campaign analysis never reads them (it attributes by
        # ``attack_scenario`` and excludes ``malicious_visited``).
        scenarios=(),
        expected_detected=bool(complete.get("expected")),
        detected=bool(complete.get("detected")),
        blamed_hosts=tuple(complete.get("blamed") or ()),
        hops=int(complete.get("hops") or 0),
        wire_bytes=int(complete.get("wire_bytes") or 0),
        launched_at=float(launch.get("ts") or 0.0),
        completed_at=float(complete.get("ts") or 0.0),
        attack_scenario=complete.get("attack_scenario"),
        attack_hop=complete.get("attack_hop"),
        detected_at_hop=complete.get("detected_at_hop"),
        detected_at=complete.get("detected_at"),
    )


def fleet_result_from_trace(
    events: Iterable[Dict[str, Any]],
) -> FleetResult:
    """Reconstruct a :class:`FleetResult` from trace events alone.

    Every field campaign analysis reads is recovered exactly (the tests
    pin ``CampaignResult.summary()`` to equality with the live run).
    Quantities the trace deliberately does not carry come back neutral:
    wall-clock phase costs are zero, ``events_processed`` is zero, and
    the resident-malicious-host map is empty — so the reconstructed
    result is for *analysis*, not for re-signing
    (:meth:`~repro.sim.fleet.FleetResult.deterministic_signature` of a
    reconstruction is not comparable to the live run's).
    """
    ordered = list(events)
    config = trace_config(ordered)
    launches: Dict[str, Dict[str, Any]] = {}
    completes: List[Dict[str, Any]] = []
    for event in ordered:
        kind = event.get("event")
        if kind == "launch":
            launches[str(event["journey"])] = event
        elif kind == "complete":
            completes.append(event)

    outcomes = []
    for complete in completes:
        journey = str(complete["journey"])
        launch = launches.get(journey)
        if launch is None:
            raise ValueError(
                "trace has a complete event for %s but no launch" % journey
            )
        outcomes.append(_outcome_from_events(launch, complete))
    outcomes.sort(key=lambda o: (o.completed_at, o.journey_id))

    malicious: Dict[str, str] = {}
    return FleetResult(
        config=config,
        outcomes=outcomes,
        malicious_hosts=malicious,
        virtual_makespan=max(
            (o.completed_at for o in outcomes), default=0.0
        ),
        events_processed=0,
        wall_seconds=0.0,
    )


def campaign_result_from_trace(
    events: Iterable[Dict[str, Any]],
) -> CampaignResult:
    """The campaign detection-quality view over a recorded trace."""
    return CampaignResult(fleet=fleet_result_from_trace(list(events)))


def list_journeys(
    events: Iterable[Dict[str, Any]],
    attacked_only: bool = False,
    detected_only: bool = False,
) -> List[Dict[str, Any]]:
    """One summary row per journey, in journey-id order.

    The ``list`` console view: ground truth (scenario, strike hop) and
    outcome (detected, blamed, time to detection) side by side.
    """
    ordered = list(events)
    result = fleet_result_from_trace(ordered)
    rows = []
    for outcome in sorted(result.outcomes, key=lambda o: o.journey_id):
        if attacked_only and not outcome.attacked:
            continue
        if detected_only and not outcome.detected:
            continue
        rows.append({
            "journey": outcome.journey_id,
            "workload": outcome.workload,
            "hops": outcome.hops,
            "attack_scenario": outcome.attack_scenario,
            "attack_hop": outcome.attack_hop,
            "malicious_visited": list(outcome.malicious_visited),
            "expected": outcome.expected_detected,
            "detected": outcome.detected,
            "detected_at_hop": outcome.detected_at_hop,
            "time_to_detection": outcome.time_to_detection,
            "blamed": list(outcome.blamed_hosts),
        })
    return rows


def journey_timeline(
    events: Iterable[Dict[str, Any]], journey_id: str
) -> Dict[str, Any]:
    """Hop-by-hop timeline of one journey, with attack and detection.

    The ``show`` console view.  Each hop row carries the virtual
    timestamp, host, transfer size, verdict count, and markers for the
    attack strike hop and the first detection hop.
    """
    own = journey_events(events, journey_id)
    if not own:
        raise ValueError("journey %s not found in trace" % journey_id)
    launch = next(
        (e for e in own if e.get("event") == "launch"), None
    )
    attack = next(
        (e for e in own if e.get("event") == "attack"), None
    )
    complete = next(
        (e for e in own if e.get("event") == "complete"), None
    )
    detected_at_hop = (
        complete.get("detected_at_hop") if complete else None
    )
    hops = []
    for event in own:
        if event.get("event") != "hop":
            continue
        hop_index = event.get("hop_index")
        hops.append({
            "ts": event.get("ts"),
            "hop_index": hop_index,
            "host": event.get("host"),
            "wire_bytes": event.get("wire_bytes"),
            "verdicts": event.get("verdicts"),
            "attacked_here": bool(
                attack is not None and attack.get("hop") == hop_index
            ),
            "detected_here": bool(
                detected_at_hop is not None and detected_at_hop == hop_index
            ),
        })
    return {
        "journey": journey_id,
        "launch": launch,
        "attack": attack,
        "hops": hops,
        "complete": complete,
    }

"""``python -m repro.trace`` — the trace forensics console.

Subcommands
-----------
``list <trace>``
    One row per journey: ground truth vs outcome.
``show <trace> <journey>``
    Hop-by-hop timeline of one journey with attack/detection markers.
``report <trace> [--json out.json] [--html out.html]``
    Campaign forensics report: summary, time-to-detection percentiles,
    per-scenario matrix, blame.  Prints the headline numbers and
    optionally writes the JSON/HTML artifacts.
``replay <trace> <journey> [--checker <name>]``
    Deterministic single-journey replay.  Without ``--checker`` this is
    a fidelity check (recorded events must reproduce byte-identically;
    exit 1 if they do not).  With ``--checker`` it is a policy replay:
    the journey re-runs under a different checker and the verdicts are
    diffed hop by hop (divergence is the expected output, not an
    error).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.trace import journey_timeline, list_journeys, load_trace
from repro.trace.replay import checker_names, replay_journey
from repro.trace.report import build_report, render_html, write_report


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return "%.4f" % value
    return str(value)


def _print_table(headers: List[str], rows: List[List[Any]]) -> None:
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells
        else len(header)
        for i, header in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in cells:
        print("  ".join(value.ljust(w) for value, w in zip(row, widths)))


def _cmd_list(args: argparse.Namespace) -> int:
    events = load_trace(args.trace, strict=args.strict)
    rows = list_journeys(
        events, attacked_only=args.attacked, detected_only=args.detected
    )
    if args.limit:
        rows = rows[: args.limit]
    _print_table(
        ["journey", "workload", "scenario", "hop", "expected",
         "detected", "det.hop", "ttd", "blamed"],
        [
            [
                row["journey"], row["workload"], row["attack_scenario"],
                row["attack_hop"], row["expected"], row["detected"],
                row["detected_at_hop"], row["time_to_detection"],
                ",".join(row["blamed"]) or None,
            ]
            for row in rows
        ],
    )
    print("%d journeys" % len(rows))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    events = load_trace(args.trace, strict=args.strict)
    timeline = journey_timeline(events, args.journey)
    launch = timeline["launch"] or {}
    attack = timeline["attack"]
    complete = timeline["complete"] or {}
    print("journey   %s (%s)" % (args.journey, launch.get("workload", "?")))
    print("itinerary %s" % " -> ".join(launch.get("itinerary", [])))
    if attack is not None:
        print(
            "attack    %s at hop %s (target %s, expected %s)"
            % (attack.get("scenario"), attack.get("hop"),
               attack.get("target"), _fmt(attack.get("expected")))
        )
    rows = []
    for hop in timeline["hops"]:
        marker = []
        if hop["attacked_here"]:
            marker.append("ATTACK")
        if hop["detected_here"]:
            marker.append("DETECTED")
        rows.append([
            hop["hop_index"], hop["host"], hop["ts"],
            hop["wire_bytes"], hop["verdicts"],
            " ".join(marker) or None,
        ])
    _print_table(
        ["hop", "host", "ts", "wire_bytes", "verdicts", "events"], rows
    )
    print(
        "outcome   detected=%s blamed=%s hops=%s wire_bytes=%s"
        % (_fmt(complete.get("detected")),
           ",".join(complete.get("blamed", [])) or "-",
           _fmt(complete.get("hops")), _fmt(complete.get("wire_bytes")))
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    events = load_trace(args.trace, strict=args.strict)
    report = build_report(events, source=args.trace)
    # Artifacts land before any console output: a closed stdout (pager
    # quit, broken pipe) must not cost the files.
    write_report(report, json_path=args.json, html_path=args.html)
    campaign = report["campaign"]
    ttd = report["time_to_detection"]
    print("campaign  journeys=%d attacked=%d benign=%d" % (
        campaign["journeys"], campaign["campaign_attacked"],
        campaign["benign_journeys"],
    ))
    print("quality   precision=%s recall=%s fpr=%s" % (
        _fmt(campaign["precision"]), _fmt(campaign["recall"]),
        _fmt(campaign["false_positive_rate"]),
    ))
    print("ttd       detections=%d p50=%s p95=%s p99=%s" % (
        ttd["detections"], _fmt(ttd["p50"]), _fmt(ttd["p95"]),
        _fmt(ttd["p99"]),
    ))
    _print_table(
        ["scenario", "injected", "detected", "rate", "expected"],
        [
            [name, stats["injected"], stats["detected"],
             stats["detection_rate"], stats["expected_detected"]]
            for name, stats in sorted(campaign["per_scenario"].items())
        ],
    )
    for path in (args.json, args.html):
        if path:
            print("wrote %s" % path)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    events = load_trace(args.trace, strict=args.strict)
    result = replay_journey(events, args.journey, checker=args.checker)
    print("journey   %s" % result.journey_id)
    print("recorded  %s" % result.recorded_checker)
    print("replayed  %s" % result.checker)
    print("identical %s" % _fmt(result.identical))
    _print_table(
        ["hop", "host", "recorded", "replayed", "changed"],
        [
            [row["hop_index"], row["host"], row["recorded_verdicts"],
             row["replayed_verdicts"], row["changed"]]
            for row in result.hop_diffs
        ],
    )
    for field, cell in result.outcome_diff.items():
        flag = "" if cell["recorded"] == cell["replayed"] else "  << changed"
        print("%-16s recorded=%s replayed=%s%s" % (
            field, _fmt(cell["recorded"]), _fmt(cell["replayed"]), flag,
        ))
    if args.json_output:
        with open(args.json_output, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.json_output)
    if result.checker == result.recorded_checker and not result.identical:
        print("FIDELITY FAILURE: replay under the recorded checker "
              "diverged from the trace", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Forensics console over fleet JSONL traces.",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="refuse traces with a torn final line instead of dropping it",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cmd = commands.add_parser("list", help="one summary row per journey")
    cmd.add_argument("trace")
    cmd.add_argument("--attacked", action="store_true",
                     help="only journeys that carried an attack")
    cmd.add_argument("--detected", action="store_true",
                     help="only journeys that alarmed")
    cmd.add_argument("--limit", type=int, default=0,
                     help="print at most N rows")
    cmd.set_defaults(handler=_cmd_list)

    cmd = commands.add_parser("show", help="hop-by-hop journey timeline")
    cmd.add_argument("trace")
    cmd.add_argument("journey")
    cmd.set_defaults(handler=_cmd_show)

    cmd = commands.add_parser("report", help="campaign forensics report")
    cmd.add_argument("trace")
    cmd.add_argument("--json", help="write the JSON artifact here")
    cmd.add_argument("--html", help="write the HTML artifact here")
    cmd.set_defaults(handler=_cmd_report)

    cmd = commands.add_parser(
        "replay", help="deterministic single-journey policy replay"
    )
    cmd.add_argument("trace")
    cmd.add_argument("journey")
    cmd.add_argument("--checker", choices=checker_names(),
                     help="re-run detection under this checker "
                          "(default: the recorded one)")
    cmd.add_argument("--json-output", help="write the diff as JSON here")
    cmd.set_defaults(handler=_cmd_replay)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())

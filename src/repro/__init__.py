"""repro — reproduction of "A Framework to Protect Mobile Agents by Using
Reference States" (Fritz Hohl, 2000).

The library re-implements, in pure Python, the paper's checking
framework for mobile-agent protection plus every substrate it depends
on:

* :mod:`repro.crypto` — canonical serialization, hashing, DSA, PKI;
* :mod:`repro.net` — simulated network, clocks, agent transport;
* :mod:`repro.agents` — mobile agents, states, inputs, traces, weak
  migration, re-execution;
* :mod:`repro.platform` — hosts, execution sessions, the journey driver,
  malicious hosts;
* :mod:`repro.attacks` — the Figure-2 attack model, injectors, detection
  metrics;
* :mod:`repro.core` — **the paper's contribution**: reference data,
  requester interfaces, checking algorithms, the policy-driven checking
  framework, and the measured example protocol;
* :mod:`repro.baselines` — state appraisal, server replication, Vigna
  traces, and proof verification;
* :mod:`repro.workloads` — the paper's generic agent plus shopping and
  survey applications;
* :mod:`repro.bench` — the harness that regenerates Tables 1 and 2;
* :mod:`repro.sim` — the discrete-event fleet engine interleaving
  thousands of protected journeys, with replayable JSONL traces.

Quickstart
----------
>>> from repro.core import ReferenceStateProtocol
>>> from repro.workloads import build_generic_scenario
>>> scenario, agent = build_generic_scenario(cycles=1, input_elements=1)
>>> protocol = ReferenceStateProtocol(trusted_hosts=scenario.trusted_host_names)
>>> result = scenario.system.launch(agent, scenario.itinerary, protection=protocol)
>>> result.detected_attack()
False
"""

from repro.exceptions import (
    AgentError,
    AttackDetected,
    CheckingError,
    ConfigurationError,
    CryptoError,
    ExecutionError,
    InputReplayError,
    ItineraryError,
    MigrationError,
    NetworkError,
    ProofError,
    ProtocolError,
    ReplicationError,
    ReproError,
    SerializationError,
    SignatureError,
    TransportError,
)

__version__ = "1.0.0"

#: Stable verification-service entry points re-exported lazily (PEP
#: 562): ``from repro import connect`` works without paying the
#: service/asyncio import cost in programs that never touch it.
_SERVICE_EXPORTS = ("connect", "Verifier", "ServiceConfig",
                    "ClusterConfig")


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        from repro import service as _service

        return getattr(_service, name)
    raise AttributeError(
        "module %r has no attribute %r" % (__name__, name)
    )


__all__ = [
    "__version__",
    "connect",
    "Verifier",
    "ServiceConfig",
    "ClusterConfig",
    "AgentError",
    "AttackDetected",
    "CheckingError",
    "ConfigurationError",
    "CryptoError",
    "ExecutionError",
    "InputReplayError",
    "ItineraryError",
    "MigrationError",
    "NetworkError",
    "ProofError",
    "ProtocolError",
    "ReplicationError",
    "ReproError",
    "SerializationError",
    "SignatureError",
    "TransportError",
]

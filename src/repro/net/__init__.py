"""Simulated distributed substrate: clocks, events, network, transport."""

from repro.net.clock import Clock, VirtualClock, WallClock
from repro.net.network import (
    LatencyModel,
    Message,
    Network,
    NetworkStats,
    UniformLatency,
)
from repro.net.simulator import Event, EventSimulator
from repro.net.transport import (
    AgentTransfer,
    AgentTransport,
    MSG_KIND_AGENT,
    TransferCodec,
)

__all__ = [
    "Clock",
    "VirtualClock",
    "WallClock",
    "LatencyModel",
    "Message",
    "Network",
    "NetworkStats",
    "UniformLatency",
    "Event",
    "EventSimulator",
    "AgentTransfer",
    "AgentTransport",
    "MSG_KIND_AGENT",
    "TransferCodec",
]

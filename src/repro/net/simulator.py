"""A small discrete-event simulator.

Agent migrations, message deliveries, and replicated-stage voting in the
server-replication baseline are modelled as events on a virtual
timeline.  The simulator is intentionally minimal: a priority queue of
``(timestamp, sequence, callback)`` entries drained in order, with the
sequence number breaking ties deterministically (events scheduled first
fire first).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.net.clock import VirtualClock

__all__ = ["Event", "EventSimulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(timestamp, sequence)`` so the heap pops them in
    schedule order; the callback itself is excluded from comparison.
    """

    timestamp: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class EventSimulator:
    """Drains scheduled events in timestamp order on a virtual clock."""

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock or VirtualClock()
        self._queue: List[Event] = []
        self._sequence = 0
        self._processed = 0

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def processed(self) -> int:
        """Number of events that have been executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule an event in the past")
        event = Event(
            timestamp=self.clock.now() + delay,
            sequence=self._sequence,
            callback=callback,
        )
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, timestamp: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute virtual timestamp."""
        return self.schedule(max(0.0, timestamp - self.clock.now()), callback)

    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty (cancelled events are skipped silently).
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.timestamp)
            event.callback()
            self._processed += 1
            return True
        return False

    def run(self, max_events: Optional[int] = None,
            until: Optional[float] = None) -> int:
        """Run events until the queue drains (or a limit is hit).

        Parameters
        ----------
        max_events:
            Optional cap on the number of events to execute.
        until:
            Optional virtual timestamp; events scheduled after it are
            left in the queue.

        Returns
        -------
        int
            The number of events executed by this call.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            next_event = self._peek()
            if next_event is None:
                break
            if until is not None and next_event.timestamp > until:
                break
            if self.step():
                executed += 1
        return executed

    def _peek(self) -> Optional[Event]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

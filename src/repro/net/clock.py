"""Clock abstractions.

The benchmark harness needs *wall-clock* time (the paper's Tables 1 and
2 are real measured milliseconds), while the discrete-event network
simulation needs a *virtual* clock it can advance instantly.  Both are
expressed through the :class:`Clock` interface so that components do not
care which one they are running against.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

__all__ = ["Clock", "WallClock", "VirtualClock"]


class Clock(ABC):
    """Minimal clock interface: read the current time in seconds."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in (possibly virtual) seconds."""

    def now_ms(self) -> float:
        """Return the current time in milliseconds."""
        return self.now() * 1000.0


class WallClock(Clock):
    """Real wall-clock time based on :func:`time.perf_counter`.

    ``perf_counter`` is monotonic and high-resolution, which is what the
    overhead measurements need.
    """

    def now(self) -> float:
        return time.perf_counter()


class VirtualClock(Clock):
    """A manually advanced clock for discrete-event simulation.

    The clock never moves on its own; the simulator advances it to the
    timestamp of the next scheduled event.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises
        ------
        ValueError
            If ``timestamp`` is in the past; virtual time is monotonic.
        """
        if timestamp < self._now:
            raise ValueError(
                "cannot move virtual clock backwards (%.6f < %.6f)"
                % (timestamp, self._now)
            )
        self._now = float(timestamp)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds."""
        if delta < 0:
            raise ValueError("cannot advance virtual clock by a negative delta")
        self._now += float(delta)

"""Simulated network: topology, latency, and message channels.

The paper measured agent migration "in one address space" (no real
network transfer), and this reproduction likewise runs all hosts in a
single Python process.  The network layer still exists so that

* agent transfer goes through an explicit serialize → deliver →
  deserialize path (so state really is only what is transported),
* scenarios can attach a latency model and count bytes on the wire,
* partitions and message loss can be injected for failure tests.

Addresses are plain strings (host names).  The network does not inspect
payloads; it moves :class:`Message` objects between registered
endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.exceptions import HostNotFoundError, NetworkError

__all__ = ["Message", "LatencyModel", "UniformLatency", "Network", "NetworkStats"]


@dataclass(frozen=True)
class Message:
    """A unit of network traffic between two named endpoints."""

    sender: str
    recipient: str
    kind: str
    payload: bytes

    @property
    def size(self) -> int:
        """Payload size in bytes (used for traffic accounting)."""
        return len(self.payload)


class LatencyModel:
    """Base latency model: zero latency between all endpoint pairs."""

    def latency(self, sender: str, recipient: str, size: int) -> float:
        """Return the delivery delay in seconds for a message."""
        return 0.0


@dataclass
class UniformLatency(LatencyModel):
    """Constant base latency plus a per-byte transfer cost."""

    base_seconds: float = 0.001
    seconds_per_byte: float = 0.0

    def latency(self, sender: str, recipient: str, size: int) -> float:
        if sender == recipient:
            return 0.0
        return self.base_seconds + self.seconds_per_byte * size


@dataclass
class NetworkStats:
    """Aggregate traffic counters kept by the network."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)

    def record_send(self, message: Message) -> None:
        self.messages_sent += 1
        self.bytes_sent += message.size
        self.bytes_by_kind[message.kind] = (
            self.bytes_by_kind.get(message.kind, 0) + message.size
        )

    def record_delivery(self) -> None:
        self.messages_delivered += 1

    def record_drop(self) -> None:
        self.messages_dropped += 1


class Network:
    """Connects named endpoints and delivers messages between them.

    Endpoints register a handler ``handler(message) -> None``.  Delivery
    is synchronous by default (suitable for the benchmark harness, which
    wants real elapsed time, not virtual time); when a simulator is
    attached, delivery is scheduled on the virtual timeline instead.
    """

    def __init__(self, latency_model: Optional[LatencyModel] = None,
                 simulator=None) -> None:
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self._latency_model = latency_model or LatencyModel()
        self._simulator = simulator
        self._partitions: Set[Tuple[str, str]] = set()
        self._drop_kinds: Set[str] = set()
        self.stats = NetworkStats()
        self._delivery_log: List[Message] = []

    # -- endpoint management ----------------------------------------------

    def register(self, name: str, handler: Callable[[Message], None]) -> None:
        """Register an endpoint under ``name``."""
        if name in self._handlers:
            raise NetworkError("endpoint %r is already registered" % name)
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        """Remove an endpoint; undelivered messages to it will fail."""
        self._handlers.pop(name, None)

    def endpoints(self) -> Tuple[str, ...]:
        """Names of all registered endpoints, sorted."""
        return tuple(sorted(self._handlers))

    # -- fault injection ----------------------------------------------------

    def partition(self, left: str, right: str) -> None:
        """Cut the (bidirectional) link between two endpoints."""
        self._partitions.add((left, right))
        self._partitions.add((right, left))

    def heal(self, left: str, right: str) -> None:
        """Restore a previously cut link."""
        self._partitions.discard((left, right))
        self._partitions.discard((right, left))

    def drop_kind(self, kind: str) -> None:
        """Silently drop all messages of the given kind (lossy link)."""
        self._drop_kinds.add(kind)

    def allow_kind(self, kind: str) -> None:
        """Stop dropping messages of the given kind."""
        self._drop_kinds.discard(kind)

    # -- sending ------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Send a message, honouring partitions, drops, and latency.

        Raises
        ------
        HostNotFoundError
            If the recipient endpoint is not registered.
        NetworkError
            If the link between sender and recipient is partitioned.
        """
        self.stats.record_send(message)
        if message.kind in self._drop_kinds:
            self.stats.record_drop()
            return
        if (message.sender, message.recipient) in self._partitions:
            self.stats.record_drop()
            raise NetworkError(
                "network partition between %r and %r"
                % (message.sender, message.recipient)
            )
        handler = self._handlers.get(message.recipient)
        if handler is None:
            raise HostNotFoundError(
                "no endpoint registered for %r" % message.recipient
            )
        delay = self._latency_model.latency(
            message.sender, message.recipient, message.size
        )
        if self._simulator is not None and delay > 0:
            self._simulator.schedule(delay, lambda: self._deliver(handler, message))
        else:
            self._deliver(handler, message)

    def _deliver(self, handler: Callable[[Message], None], message: Message) -> None:
        self._delivery_log.append(message)
        self.stats.record_delivery()
        handler(message)

    # -- observability -------------------------------------------------------

    @property
    def delivery_log(self) -> Tuple[Message, ...]:
        """All messages delivered so far, in delivery order."""
        return tuple(self._delivery_log)

    def delivered_of_kind(self, kind: str) -> Tuple[Message, ...]:
        """Delivered messages filtered by kind."""
        return tuple(m for m in self._delivery_log if m.kind == kind)

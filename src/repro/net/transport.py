"""Agent transfer over the simulated network.

Weak migration ships three things to the next host: the agent's *code
identity* (which class to instantiate — the code itself is assumed to be
available or cacheable at the destination, as discussed in the paper's
Section 5.3), the agent's *data state*, and any *protocol data* the
protection mechanism appended to the agent.  The transfer payload is a
plain dictionary of canonical values so that exactly what is transported
is explicit and measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.crypto.canonical import canonical_decode, canonical_encode
from repro.exceptions import TransportError
from repro.net.network import Message, Network

__all__ = ["AgentTransfer", "TransferCodec", "AgentTransport", "MSG_KIND_AGENT"]

#: Network message kind used for agent migrations.
MSG_KIND_AGENT = "agent-transfer"
#: Network message kind used for protocol control messages (commitments,
#: trace requests, verdict notifications, ...).
MSG_KIND_CONTROL = "control"


@dataclass
class AgentTransfer:
    """Everything that crosses the wire when an agent migrates.

    Attributes
    ----------
    agent_class:
        Registered code identity of the agent (see
        :class:`repro.agents.agent.AgentCodeRegistry`).
    agent_id:
        Globally unique identifier of the agent instance.
    owner:
        Name of the agent's owner (home principal).
    state:
        The agent's combined data + execution state as a dictionary.
    protocol_data:
        Additional data appended by a protection mechanism (signed
        states, input logs, reference data).  ``None`` for plain agents.
    itinerary:
        The agent's route information, as a canonical dictionary.
    hop_index:
        Which hop of the itinerary this transfer corresponds to.
    """

    agent_class: str
    agent_id: str
    owner: str
    state: Dict[str, Any]
    protocol_data: Optional[Dict[str, Any]]
    itinerary: Dict[str, Any]
    hop_index: int

    def to_canonical(self) -> dict:
        return {
            "agent_class": self.agent_class,
            "agent_id": self.agent_id,
            "owner": self.owner,
            "state": self.state,
            "protocol_data": self.protocol_data,
            "itinerary": self.itinerary,
            "hop_index": self.hop_index,
        }

    @classmethod
    def from_canonical(cls, data: dict) -> "AgentTransfer":
        try:
            return cls(
                agent_class=data["agent_class"],
                agent_id=data["agent_id"],
                owner=data["owner"],
                state=data["state"],
                protocol_data=data["protocol_data"],
                itinerary=data["itinerary"],
                hop_index=int(data["hop_index"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TransportError("malformed agent transfer payload") from exc


class TransferCodec:
    """Serializes transfers to bytes and back using the canonical codec."""

    def encode(self, transfer: AgentTransfer) -> bytes:
        """Serialize a transfer to wire bytes."""
        return canonical_encode(transfer.to_canonical())

    def decode(self, data: bytes) -> AgentTransfer:
        """Deserialize wire bytes back into a transfer.

        Raises
        ------
        TransportError
            If the bytes do not decode into a well-formed transfer.
        """
        try:
            decoded = canonical_decode(data)
        except Exception as exc:
            raise TransportError("cannot decode agent transfer bytes") from exc
        if not isinstance(decoded, dict):
            raise TransportError("agent transfer payload is not a dictionary")
        return AgentTransfer.from_canonical(decoded)


class AgentTransport:
    """Endpoint adapter: ships :class:`AgentTransfer` objects over a network.

    Each host owns one :class:`AgentTransport`; incoming transfers are
    handed to the ``on_transfer`` callback the host registered, control
    messages to ``on_control``.
    """

    def __init__(self, name: str, network: Network) -> None:
        self.name = name
        self._network = network
        self._codec = TransferCodec()
        self._on_transfer = None
        self._on_control = None
        network.register(name, self._handle_message)

    def set_handlers(self, on_transfer, on_control=None) -> None:
        """Install the callbacks invoked on incoming traffic."""
        self._on_transfer = on_transfer
        self._on_control = on_control

    def send_agent(self, destination: str, transfer: AgentTransfer) -> int:
        """Send an agent transfer; returns the payload size in bytes."""
        payload = self._codec.encode(transfer)
        self._network.send(
            Message(
                sender=self.name,
                recipient=destination,
                kind=MSG_KIND_AGENT,
                payload=payload,
            )
        )
        return len(payload)

    def send_control(self, destination: str, payload: Any) -> int:
        """Send an arbitrary canonical control payload."""
        encoded = canonical_encode(payload)
        self._network.send(
            Message(
                sender=self.name,
                recipient=destination,
                kind=MSG_KIND_CONTROL,
                payload=encoded,
            )
        )
        return len(encoded)

    def _handle_message(self, message: Message) -> None:
        if message.kind == MSG_KIND_AGENT:
            if self._on_transfer is None:
                raise TransportError(
                    "endpoint %r received an agent transfer but has no handler"
                    % self.name
                )
            transfer = self._codec.decode(message.payload)
            self._on_transfer(message.sender, transfer)
        elif message.kind == MSG_KIND_CONTROL:
            if self._on_control is not None:
                self._on_control(message.sender, canonical_decode(message.payload))
        else:  # pragma: no cover - defensive
            raise TransportError("unknown message kind %r" % message.kind)

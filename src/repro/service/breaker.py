"""Per-backend circuit breaker for the cluster gateway.

The health monitor and the breaker answer different questions.  The
monitor asks "does this backend answer a probe?" — which a *flapping*
verifier (up for a probe, dead for the next three requests) passes
often enough to keep being routed to, burning a failover round trip on
the request path every time.  The breaker asks "has this backend been
failing *real requests*?" and, once tripped, sheds it from routing for
a cooldown that doubles while the flapping continues — probe results
never close a breaker, only request-path successes do.

States follow the classic machine:

``closed``
    Healthy.  Requests flow; ``failure_threshold`` consecutive
    request-path failures trip the breaker open.
``open``
    Shed.  :meth:`blocked` is true until the cooldown elapses, so the
    router never offers the backend a request to fail.
``half-open``
    Probation.  After the cooldown, up to ``half_open_probes``
    concurrent trial requests may pass; a success closes the breaker,
    a failure re-opens it with the cooldown doubled (capped at
    ``max_cooldown``).  Closing within ``flap_window`` of the next trip
    keeps the doubled cooldown — a backend alternating fast between
    fine and failing earns longer and longer time-outs instead of a
    fresh start every flap.

The clock is injectable (``clock=time.monotonic``) so the whole state
machine is unit-testable without sleeping.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict

from repro.exceptions import ConfigurationError

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Request-path failure breaker for one backend."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 1.0,
        max_cooldown: float = 30.0,
        flap_window: float = 10.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be positive")
        if cooldown <= 0:
            raise ConfigurationError("cooldown must be positive")
        if max_cooldown < cooldown:
            raise ConfigurationError("max_cooldown must be >= cooldown")
        if half_open_probes < 1:
            raise ConfigurationError("half_open_probes must be positive")
        self.failure_threshold = failure_threshold
        self.base_cooldown = cooldown
        self.max_cooldown = max_cooldown
        self.flap_window = flap_window
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._cooldown = cooldown
        self._open_until = 0.0
        self._last_trip = float("-inf")
        self._half_open_inflight = 0
        self._trips = 0

    @property
    def trips(self) -> int:
        """How many times this breaker has opened."""
        return self._trips

    @property
    def state(self) -> str:
        """Current state, advancing ``open`` → ``half-open`` on expiry."""
        if self._state == OPEN and self._clock() >= self._open_until:
            self._state = HALF_OPEN
            self._half_open_inflight = 0
        return self._state

    def blocked(self) -> bool:
        """Whether routing must avoid this backend right now.

        Pure with respect to trial budget — the router calls this for
        *every* candidate when building its avoid set, so it must not
        consume half-open probes for backends the ring never picks.
        """
        state = self.state
        if state == OPEN:
            return True
        if state == HALF_OPEN:
            return self._half_open_inflight >= self.half_open_probes
        return False

    def begin_attempt(self) -> None:
        """Account one request routed to this backend."""
        if self.state == HALF_OPEN:
            self._half_open_inflight += 1

    def record_success(self) -> None:
        """A routed request succeeded — close (or stay closed)."""
        if self.state == HALF_OPEN:
            self._half_open_inflight = max(0, self._half_open_inflight - 1)
            self._state = CLOSED
            # Deliberately NOT resetting the doubled cooldown here: it
            # only relaxes back to base after the backend stays closed
            # longer than the flap window (checked at the next trip).
        self._consecutive_failures = 0

    def record_failure(self) -> None:
        """A routed request failed on transport — count, maybe trip."""
        state = self.state
        if state == HALF_OPEN:
            self._half_open_inflight = max(0, self._half_open_inflight - 1)
            self._trip(escalate=True)
            return
        if state == OPEN:
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            now = self._clock()
            self._trip(escalate=now - self._last_trip <= self.flap_window)

    def _trip(self, escalate: bool) -> None:
        now = self._clock()
        if escalate:
            self._cooldown = min(self.max_cooldown, self._cooldown * 2.0)
        else:
            self._cooldown = self.base_cooldown
        self._state = OPEN
        self._open_until = now + self._cooldown
        self._last_trip = now
        self._consecutive_failures = 0
        self._trips += 1

    def stats(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "trips": self._trips,
            "cooldown": self._cooldown,
            "consecutive_failures": self._consecutive_failures,
        }

"""The reference-state verification service.

Hohl's framework assumes verification happens at trusted parties that
many migrating agents contact — the shape of a network service under
load.  This package is that serving layer:

* :mod:`repro.service.wire` — length-prefixed canonical framing;
* :mod:`repro.service.cache` — the LRU verdict cache;
* :mod:`repro.service.batching` — time-/size-bounded micro-batching
  over :func:`repro.crypto.dsa.batch_verify`;
* :mod:`repro.service.server` — the asyncio TCP server with
  bounded-queue backpressure and structured metrics;
* :mod:`repro.service.client` — the pooled, pipelined client;
* :mod:`repro.service.loadgen` — multi-process replay of fleet journey
  request streams (:mod:`repro.sim.requests`) at a target RPS.

``python -m repro.service`` exposes the server and the loadgen on the
command line; the benchmark harness's ``service`` section measures the
whole stack against the in-process ground truth.
"""

from repro.service.batching import MicroBatcher, SettledVerification
from repro.service.cache import VerdictCache
from repro.service.client import (
    ServiceClient,
    ServiceResponseError,
    connect_with_retry,
)
from repro.service.loadgen import (
    LoadgenReport,
    build_loadgen_stream,
    replay_requests,
    run_loadgen,
)
from repro.service.server import (
    ServiceConfig,
    ServiceThread,
    VerificationService,
    build_service_keystore,
)
from repro.service.wire import (
    MAX_FRAME_BYTES,
    decode_body,
    encode_frame,
    read_frame,
    split_frames,
)

__all__ = [
    "MicroBatcher",
    "SettledVerification",
    "VerdictCache",
    "ServiceClient",
    "ServiceResponseError",
    "connect_with_retry",
    "LoadgenReport",
    "build_loadgen_stream",
    "replay_requests",
    "run_loadgen",
    "ServiceConfig",
    "ServiceThread",
    "VerificationService",
    "build_service_keystore",
    "MAX_FRAME_BYTES",
    "decode_body",
    "encode_frame",
    "read_frame",
    "split_frames",
]

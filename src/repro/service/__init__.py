"""The reference-state verification service.

Hohl's framework assumes verification happens at trusted parties that
many migrating agents contact — the shape of a network service under
load.  This package is that serving layer:

* :mod:`repro.service.api` — **the public client surface**:
  :func:`connect` returns a :class:`Verifier` for any endpoint shape
  (in-process thread, single TCP server, cluster gateway);
* :mod:`repro.service.wire` — length-prefixed canonical framing and
  ``wire/2`` version negotiation;
* :mod:`repro.service.cache` — the LRU verdict cache with tagged
  invalidation;
* :mod:`repro.service.batching` — time-/size-bounded micro-batching
  over :func:`repro.crypto.dsa.batch_verify`;
* :mod:`repro.service.server` — the asyncio TCP server with
  bounded-queue backpressure and structured metrics;
* :mod:`repro.service.cluster` — the gateway tier: consistent-hash
  routing (:mod:`repro.service.ring`), health checking
  (:mod:`repro.service.health`), idempotent failover, and the local
  multi-process launcher;
* :mod:`repro.service.retry` — the typed :class:`RetryPolicy`
  (deadline + jittered exponential backoff) that governs dialing and
  idempotent request retry everywhere;
* :mod:`repro.service.breaker` — the per-backend
  :class:`CircuitBreaker` the gateway uses to shed flapping verifiers
  from the request path;
* :mod:`repro.service.client` — the pooled, pipelined wire client
  underneath :func:`connect`;
* :mod:`repro.service.loadgen` — multi-process replay of fleet journey
  request streams (:mod:`repro.sim.requests`) at a target RPS.

``python -m repro.service`` exposes the server, the cluster, and the
loadgen on the command line; the benchmark harness's ``service`` and
``cluster`` sections measure the whole stack against the in-process
ground truth.

The one way to talk to any of it::

    from repro.service import connect
    verifier = await connect("127.0.0.1:7753")
    response = await verifier.verify(signer, message, signature)
"""

import warnings

from repro.exceptions import RetryExhausted
from repro.service.api import Verifier, connect, resolve_endpoint
from repro.service.batching import MicroBatcher, SettledVerification
from repro.service.breaker import CircuitBreaker
from repro.service.cache import VerdictCache
from repro.service.cluster import (
    ClusterConfig,
    ClusterGateway,
    ClusterThread,
    LocalCluster,
    SpawnedVerifier,
    spawn_verifier,
)
from repro.service.health import BackendState, HealthMonitor
from repro.service.loadgen import (
    LoadgenReport,
    build_loadgen_stream,
    fetch_server_stats,
    replay_requests,
    run_loadgen,
)
from repro.service.retry import DEFAULT_RETRYABLE, RetryPolicy
from repro.service.ring import HashRing
from repro.service.server import (
    ServiceConfig,
    ServiceThread,
    VerificationService,
    build_service_keystore,
)
from repro.service.wire import (
    MAX_FRAME_BYTES,
    WIRE_MAJOR,
    WIRE_VERSION,
    decode_body,
    encode_frame,
    read_frame,
    split_frames,
)

__all__ = [
    # The public surface: one connect call, one protocol, two configs.
    "connect",
    "Verifier",
    "ServiceConfig",
    "ClusterConfig",
    "resolve_endpoint",
    # Server- and cluster-side building blocks.
    "VerificationService",
    "ServiceThread",
    "ClusterGateway",
    "ClusterThread",
    "LocalCluster",
    "SpawnedVerifier",
    "spawn_verifier",
    "build_service_keystore",
    "HashRing",
    "HealthMonitor",
    "BackendState",
    "MicroBatcher",
    "SettledVerification",
    "VerdictCache",
    # Robustness: typed retry and per-backend circuit breaking.
    "RetryPolicy",
    "RetryExhausted",
    "DEFAULT_RETRYABLE",
    "CircuitBreaker",
    # Load generation.
    "LoadgenReport",
    "build_loadgen_stream",
    "fetch_server_stats",
    "replay_requests",
    "run_loadgen",
    # Wire protocol.
    "MAX_FRAME_BYTES",
    "WIRE_VERSION",
    "WIRE_MAJOR",
    "decode_body",
    "encode_frame",
    "read_frame",
    "split_frames",
    # Deprecated (still importable, warn on access).
    "ServiceClient",
    "ServiceResponseError",
    "connect_with_retry",
]

#: Old facade names → (replacement hint).  Accessing them through the
#: package still works for one release but warns; the implementation
#: modules themselves (``repro.service.client``) stay warning-free for
#: internal use.
_DEPRECATED = {
    "ServiceClient": "repro.service.connect(endpoint)",
    "connect_with_retry": "repro.service.connect(endpoint)",
    "ServiceResponseError": "repro.service.client.ServiceResponseError",
}


def __getattr__(name: str):
    if name in _DEPRECATED:
        warnings.warn(
            "repro.service.%s is deprecated; use %s instead"
            % (name, _DEPRECATED[name]),
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.service import client as _client

        return getattr(_client, name)
    raise AttributeError(
        "module %r has no attribute %r" % (__name__, name)
    )

"""Command line for the verification service.

``python -m repro.service serve`` runs a single verification server;
``python -m repro.service cluster`` runs a gateway over existing
verifier backends; ``python -m repro.service spawn-cluster`` launches
N verifier subprocesses *plus* the gateway (the local deployment the
CI ``cluster-smoke`` job drives); ``python -m repro.service loadgen``
replays a deterministic journey request stream against any of them —
a client cannot tell a gateway from a verifier — verifying every
verdict against the in-process ground truth.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional, Tuple

from repro.crypto.tablecache import enable_table_cache
from repro.service.cluster import (
    ClusterConfig,
    ClusterGateway,
    SpawnedVerifier,
    spawn_verifier,
)
from repro.service.loadgen import (
    build_loadgen_stream,
    fetch_server_stats,
    run_loadgen,
)
from repro.service.server import ServiceConfig, VerificationService
from repro.sim.fleet import FleetConfig


def _parse_target(target: str) -> Tuple[str, int]:
    host, _, port = target.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            "target must look like HOST:PORT, got %r" % target
        )
    return host, int(port)


def _add_gateway_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-entries", type=int, default=65536,
                        help="gateway verdict-cache capacity (0 disables)")
    parser.add_argument("--gather-batch", type=int, default=64,
                        help="gateway→backend aggregation window size")
    parser.add_argument("--gather-delay-ms", type=float, default=1.0,
                        help="gateway→backend aggregation latency bound")
    parser.add_argument("--health-interval", type=float, default=0.25,
                        help="seconds between backend health probes")
    parser.add_argument("--failure-threshold", type=int, default=3,
                        help="consecutive probe failures before mark-down")
    parser.add_argument("--max-attempts", type=int, default=4,
                        help="routing attempts per request across failovers")
    parser.add_argument("--breaker-threshold", type=int, default=3,
                        help="consecutive request failures before a "
                             "backend's circuit breaker sheds it from "
                             "routing (0 disables breakers)")
    parser.add_argument("--breaker-cooldown", type=float, default=1.0,
                        help="seconds a tripped breaker sheds its backend "
                             "(doubles while the backend keeps flapping)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Reference-state verification service: server and loadgen",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser(
        "serve", help="run a verification server until interrupted"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (0 = pick a free port; the bound "
                            "address is announced on stdout)")
    serve.add_argument("--max-batch", type=int, default=256,
                       help="micro-batch window size (1 disables batching)")
    serve.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="micro-batch window latency bound")
    serve.add_argument("--cache-entries", type=int, default=65536,
                       help="LRU verdict-cache capacity (0 disables)")
    serve.add_argument("--max-queue", type=int, default=8192,
                       help="in-flight bound before busy responses")
    serve.add_argument("--fleet-hosts", type=int, default=40,
                       help="fleet-shaped host population whose "
                            "deterministic keys the server registers")
    serve.add_argument("--backend", default=None,
                       choices=("python", "gmpy2", "auto"),
                       help="pin the crypto backend (default: "
                            "REPRO_CRYPTO_BACKEND, else auto-detect)")
    serve.add_argument("--table-cache", default=None, metavar="PATH|off",
                       help="persistent fixed-base table cache directory "
                            "('off' disables; default: REPRO_TABLE_CACHE, "
                            "else ~/.cache/repro/tables)")

    cluster = commands.add_parser(
        "cluster", help="run a gateway over existing verifier backends"
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument("--port", type=int, default=0,
                         help="gateway listen port (0 = pick a free port)")
    cluster.add_argument("--backends", type=_parse_target, nargs="+",
                         required=True, metavar="HOST:PORT",
                         help="verifier backend addresses")
    _add_gateway_arguments(cluster)

    spawn = commands.add_parser(
        "spawn-cluster",
        help="spawn N verifier subprocesses plus the gateway",
    )
    spawn.add_argument("--verifiers", type=int, default=3,
                       help="verifier subprocesses to launch")
    spawn.add_argument("--host", default="127.0.0.1")
    spawn.add_argument("--port", type=int, default=0,
                       help="gateway listen port (0 = pick a free port)")
    spawn.add_argument("--max-batch", type=int, default=256,
                       help="per-verifier micro-batch window size")
    spawn.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="per-verifier micro-batch latency bound")
    spawn.add_argument("--fleet-hosts", type=int, default=40,
                       help="fleet-shaped PKI size of every verifier")
    spawn.add_argument("--backend", default=None,
                       choices=("python", "gmpy2", "auto"),
                       help="pin every verifier's crypto backend")
    spawn.add_argument("--table-cache", default=None, metavar="PATH|off",
                       help="table-cache directory shared by the verifiers")
    _add_gateway_arguments(spawn)

    loadgen = commands.add_parser(
        "loadgen", help="replay a journey request stream against a server"
    )
    loadgen.add_argument("--target", type=_parse_target, required=True,
                         metavar="HOST:PORT")
    loadgen.add_argument("--requests", type=int, default=200)
    loadgen.add_argument("--rps", type=float, default=0.0,
                         help="target request rate (0 = unthrottled)")
    loadgen.add_argument("--processes", type=int, default=1)
    loadgen.add_argument("--connections", type=int, default=2,
                         help="pooled connections per process")
    loadgen.add_argument("--max-inflight", type=int, default=128,
                         help="pipelined requests in flight per process")
    loadgen.add_argument("--adversarial-fraction", type=float, default=0.0,
                         help="fraction of verify requests whose "
                              "signatures are corrupted (expected verdict "
                              "False)")
    loadgen.add_argument("--agents", type=int, default=30,
                         help="journeys of the generating fleet")
    loadgen.add_argument("--hosts", type=int, default=8,
                         help="service hosts of the generating fleet "
                              "(must not exceed the server's "
                              "--fleet-hosts)")
    loadgen.add_argument("--hops", type=int, default=3)
    loadgen.add_argument("--seed", type=int, default=7)
    loadgen.add_argument("--no-sessions", action="store_true",
                         help="replay only raw verify requests")
    loadgen.add_argument("--json", default=None, metavar="PATH",
                         help="write the merged report as JSON")
    loadgen.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="write the server's full stats envelope "
                              "(schema'd counters + telemetry) plus the "
                              "loadgen summary as one JSON snapshot")
    loadgen.add_argument("--retry-deadline", type=float, default=5.0,
                         help="seconds to retry a request's transport "
                              "transients before counting it dropped "
                              "(all replayed requests are idempotent; "
                              "0 disables retries)")
    loadgen.add_argument("--expect-parity", action="store_true",
                         help="exit non-zero unless every verdict matches "
                              "the in-process ground truth and no request "
                              "was dropped (transients are retried under "
                              "--retry-deadline before counting a drop)")
    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    # The server is a long-lived entry point: persistent table caching
    # is on by default so restarts (and sibling processes on the same
    # host) load the fixed-base tables instead of rebuilding them.
    cache = enable_table_cache(args.table_cache)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1e3,
        cache_entries=args.cache_entries,
        max_queue=args.max_queue,
        fleet_hosts=args.fleet_hosts,
        backend=args.backend,
    )

    async def _serve() -> None:
        service = VerificationService(config)
        host, port = await service.start()
        print("crypto backend: %s; table cache: %s"
              % (service.backend.name,
                 cache.directory if cache is not None else "off"),
              flush=True)
        print("listening on %s:%d" % (host, port), flush=True)
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _gateway_config(args: argparse.Namespace,
                    backends: Tuple[Tuple[str, int], ...],
                    service: Optional[ServiceConfig] = None) -> ClusterConfig:
    return ClusterConfig(
        backends=backends,
        host=args.host,
        port=args.port,
        service=service or ServiceConfig(),
        cache_entries=args.cache_entries,
        gather_batch=args.gather_batch,
        gather_delay=args.gather_delay_ms / 1e3,
        health_interval=args.health_interval,
        failure_threshold=args.failure_threshold,
        max_attempts=args.max_attempts,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )


def _run_gateway(config: ClusterConfig) -> int:
    async def _serve() -> None:
        gateway = ClusterGateway(config)
        host, port = await gateway.start()
        print("routing over %d backend(s): %s"
              % (len(config.backends),
                 ", ".join("%s:%d" % address
                           for address in config.backends)),
              flush=True)
        print("cluster listening on %s:%d" % (host, port), flush=True)
        try:
            await gateway.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await gateway.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    return _run_gateway(_gateway_config(args, tuple(args.backends)))


def _cmd_spawn_cluster(args: argparse.Namespace) -> int:
    service = ServiceConfig(
        max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1e3,
        fleet_hosts=args.fleet_hosts,
        backend=args.backend,
    )
    verifiers: List[SpawnedVerifier] = []
    try:
        for _ in range(max(1, args.verifiers)):
            verifier = spawn_verifier(
                service, table_cache=args.table_cache
            )
            verifiers.append(verifier)
            print("verifier pid=%d listening on %s:%d"
                  % (verifier.process.pid, *verifier.address), flush=True)
        config = _gateway_config(
            args, tuple(v.address for v in verifiers), service
        )
        return _run_gateway(config)
    finally:
        for verifier in verifiers:
            verifier.terminate()


def _cmd_loadgen(args: argparse.Namespace) -> int:
    host, port = args.target
    config = FleetConfig(
        num_agents=args.agents,
        num_hosts=args.hosts,
        hops_per_journey=args.hops,
        seed=args.seed,
        protected=True,
        batched_verification=True,
    )
    stream, corrupted = build_loadgen_stream(
        config,
        requests=args.requests,
        adversarial_fraction=args.adversarial_fraction,
        include_sessions=not args.no_sessions,
        seed=args.seed,
    )
    print("stream: %d requests (%d corrupted) from a %d-journey fleet"
          % (len(stream), corrupted, config.num_agents), flush=True)
    report = run_loadgen(
        (host, port), stream,
        processes=args.processes,
        rps=args.rps,
        connections=args.connections,
        max_inflight=args.max_inflight,
        retry_deadline=args.retry_deadline,
    )
    report.corrupted = corrupted
    summary = report.summary()
    # Attribute the numbers: which engine and table cache served them.
    server_stats = fetch_server_stats((host, port))
    summary["server"] = {
        "crypto": server_stats.get("crypto"),
        "config": server_stats.get("config"),
    } if server_stats else None
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("report written to %s" % args.json)
    if args.metrics_out:
        snapshot = {
            "schema": server_stats.get("schema"),
            "endpoint": "%s:%d" % (host, port),
            "server": server_stats or None,
            "loadgen": summary,
        }
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("metrics snapshot written to %s" % args.metrics_out)

    status = 0
    if args.expect_parity:
        if report.mismatches:
            print("FAIL: %d verdict(s) diverged from the in-process "
                  "ground truth" % report.mismatches, file=sys.stderr)
            status = 1
        if report.dropped:
            print("FAIL: %d request(s) dropped (busy=%d, errors=%d)"
                  % (report.dropped, report.busy, report.errors),
                  file=sys.stderr)
            status = 1
        if status == 0:
            print("parity ok: %d/%d verdicts match, zero drops"
                  % (report.completed, report.sent))
            if report.recovered:
                print("(%d transient failure(s) recovered by retry)"
                      % report.recovered)
    return status


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "spawn-cluster":
        return _cmd_spawn_cluster(args)
    return _cmd_loadgen(args)


if __name__ == "__main__":
    sys.exit(main())

"""Time- and size-bounded micro-batching of signature verifications.

The server does not verify requests one by one: concurrent requests are
coalesced into windows and settled with one randomized batch equation
(:func:`repro.crypto.dsa.batch_verify`), which amortizes the full-size
per-signer exponentiations across every signature of the window.  A
window closes when it reaches ``max_batch`` items **or** when
``max_delay`` seconds have passed since its first item — whichever
comes first — so throughput never buys unbounded latency.

A window of one item takes the plain :meth:`verify_recoverable` path
(the single-item batch equation costs *more* than individual
verification: it adds the small-exponent commitment power on top of the
two exponentiations individual verification needs).  This is also what
``max_batch=1`` means: the honest no-batching baseline the benchmark
harness compares against, not a degenerate batch equation.

Settlement runs inline on the event loop.  That is a deliberate choice
for a CPU-bound single-process service: a window of 256 signatures
settles in ~15 ms, during which the loop's readers simply let the
kernel socket buffers absorb arrivals — the next window is already
forming the moment settlement returns.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from random import Random, SystemRandom
from typing import Any, Dict, List, Optional

from repro.crypto.dsa import (
    DSAPublicKey,
    RecoverableSignature,
    batch_verify,
    find_invalid,
)

__all__ = ["MicroBatcher", "SettledVerification"]


@dataclass(frozen=True)
class SettledVerification:
    """What one settled verification tells the response path."""

    verdict: bool
    batch_size: int
    queue_wait: float


@dataclass
class _Waiting:
    public_key: DSAPublicKey
    message: bytes
    signature: RecoverableSignature
    future: "asyncio.Future[SettledVerification]"
    enqueued_at: float


class MicroBatcher:
    """Coalesces awaited verifications into bounded batch windows.

    Parameters
    ----------
    max_batch:
        Window size that triggers an immediate flush; ``1`` disables
        coalescing entirely (every submit settles synchronously).
    max_delay:
        Seconds after the window's *first* item at which the window is
        flushed regardless of fill — the latency bound.
    rng:
        Source of the random batch exponents.  Defaults to
        :class:`random.SystemRandom`; the batch test's soundness against
        adversarial streams requires unpredictable exponents, so pass a
        seeded generator only to reproduce non-adversarial benchmarks.
    """

    def __init__(
        self,
        max_batch: int = 256,
        max_delay: float = 0.002,
        rng: Optional[Random] = None,
    ) -> None:
        self.max_batch = max(1, int(max_batch))
        self.max_delay = max(0.0, float(max_delay))
        self.rng = rng if rng is not None else SystemRandom()
        self._waiting: List[_Waiting] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        #: Aggregate statistics: windows settled, items settled, and the
        #: batch-size histogram ``{window size: windows}``.
        self.batches = 0
        self.items = 0
        self.batch_histogram: Dict[int, int] = {}
        self.queue_wait_total = 0.0
        self.queue_wait_max = 0.0

    @property
    def pending(self) -> int:
        """Verifications waiting in the currently forming window."""
        return len(self._waiting)

    def submit(
        self,
        public_key: DSAPublicKey,
        message: bytes,
        signature: RecoverableSignature,
    ) -> "asyncio.Future[SettledVerification]":
        """Queue one verification; the future resolves at window close."""
        loop = asyncio.get_event_loop()
        future: "asyncio.Future[SettledVerification]" = loop.create_future()
        entry = _Waiting(
            public_key=public_key,
            message=message,
            signature=signature,
            future=future,
            enqueued_at=loop.time(),
        )
        self._waiting.append(entry)
        if len(self._waiting) >= self.max_batch:
            self.flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_delay, self.flush)
        return future

    def flush(self) -> int:
        """Settle the forming window now; returns the window size."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._waiting:
            return 0
        window, self._waiting = self._waiting, []
        size = len(window)
        if size == 1:
            entry = window[0]
            outcomes = [entry.public_key.verify_recoverable(
                entry.message, entry.signature
            )]
        else:
            items = [(w.public_key, w.message, w.signature) for w in window]
            if batch_verify(items, rng=self.rng):
                outcomes = [True] * size
            else:
                bad = set(find_invalid(items))
                outcomes = [index not in bad for index in range(size)]
        now = asyncio.get_event_loop().time()
        self.batches += 1
        self.items += size
        self.batch_histogram[size] = self.batch_histogram.get(size, 0) + 1
        for entry, verdict in zip(window, outcomes):
            wait = max(0.0, now - entry.enqueued_at)
            self.queue_wait_total += wait
            self.queue_wait_max = max(self.queue_wait_max, wait)
            if not entry.future.done():
                entry.future.set_result(SettledVerification(
                    verdict=verdict, batch_size=size, queue_wait=wait,
                ))
        return size

    def stats(self) -> Dict[str, Any]:
        """Aggregate batching statistics for the metrics endpoint."""
        return {
            "batches": self.batches,
            "items": self.items,
            "pending": self.pending,
            "max_batch": self.max_batch,
            "max_delay": self.max_delay,
            "mean_batch_size": (self.items / self.batches) if self.batches else 0.0,
            "batch_histogram": {
                str(size): count
                for size, count in sorted(self.batch_histogram.items())
            },
            "queue_wait_total": self.queue_wait_total,
            "queue_wait_max": self.queue_wait_max,
        }

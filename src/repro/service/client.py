"""Pooled, pipelined client for the verification service.

A :class:`ServiceClient` owns a small pool of TCP connections.  Every
request carries a client-assigned id and is written immediately —
callers never wait for earlier responses before later requests hit the
wire, so a burst of ``asyncio.gather``-ed calls pipelines naturally and
the server's micro-batcher sees real concurrency from a single client.
A per-connection reader task matches responses back to futures by id
(the server may answer out of order once batching and caching skew
settlement times).
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Optional, Union

from repro.crypto.dsa import RecoverableSignature
from repro.crypto.signing import RecoverableEnvelope
from repro.exceptions import ServiceError, ServiceUnavailable
from repro.service.retry import RetryPolicy
from repro.service.wire import (
    MAX_FRAME_BYTES,
    decode_body,
    encode_frame,
    read_frame,
)

__all__ = ["ServiceClient", "ServiceResponseError"]


class ServiceResponseError(ServiceError):
    """The server answered with a typed error response."""

    def __init__(self, response: Dict[str, Any]) -> None:
        super().__init__(
            "service error %r: %s" % (
                response.get("error"), response.get("detail"),
            )
        )
        self.response = response


class _Connection:
    """One pooled connection: writer, reader task, in-flight futures."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, max_frame: int) -> None:
        self.reader = reader
        self.writer = writer
        self.max_frame = max_frame
        self.inflight: Dict[Any, "asyncio.Future[Dict[str, Any]]"] = {}
        #: Why the connection died, once it has; requests sent after
        #: that must fail fast instead of registering futures nothing
        #: will ever resolve.
        self.failure: Optional[BaseException] = None
        self.reader_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        error: Optional[BaseException] = None
        try:
            while True:
                body = await read_frame(self.reader, self.max_frame)
                if body is None:
                    break
                response = decode_body(body)
                future = self.inflight.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except BaseException as exc:  # noqa: BLE001 - propagated to waiters
            error = exc
        finally:
            self.failure = (
                error or ServiceError("connection closed by the server")
            )
            for future in self.inflight.values():
                if not future.done():
                    future.set_exception(self.failure)
            self.inflight.clear()

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        # A dead connection must fail the request, not swallow it: a
        # write to a closed transport is silently discarded by asyncio,
        # so without this check the future would never resolve.  The
        # check is race-free: there is no await between it and the
        # future registration below, so the reader task cannot die in
        # between.
        if self.failure is not None or self.reader_task.done() \
                or self.writer.is_closing():
            raise self.failure if isinstance(self.failure, ServiceError) \
                else ServiceError(
                    "connection is closed%s" % (
                        ": %s" % self.failure if self.failure else "",
                    )
                )
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_event_loop().create_future()
        )
        self.inflight[payload["id"]] = future
        self.writer.write(encode_frame(payload, self.max_frame))
        # No drain between pipelined writes: the response wait below is
        # the natural flow control for request/response traffic.
        return await future

    async def close(self) -> None:
        self.reader_task.cancel()
        try:
            await self.reader_task
        except (asyncio.CancelledError, ServiceError):
            pass
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class ServiceClient:
    """Round-robin pool of pipelined connections to one server.

    Build instances through :meth:`connect`; close with :meth:`close`
    (or use ``async with``).

    A client built by :meth:`connect` remembers its peer address and
    **self-heals**: a pooled connection found dead when its turn comes
    is replaced with a fresh dial before the request is written, so a
    restarted server costs callers the requests that were in flight
    when it died — never every request thereafter.  In-flight failures
    still surface to the caller (only the caller knows whether a retry
    is safe); :class:`~repro.service.retry.RetryPolicy` is the tool for
    that layer.
    """

    def __init__(
        self,
        connections: List[_Connection],
        remote: Optional[Any] = None,
        max_frame: int = MAX_FRAME_BYTES,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if not connections:
            raise ServiceError("a client needs at least one connection")
        self._connections = connections
        self._rr = itertools.cycle(range(len(connections)))
        self._ids = itertools.count(1)
        self._remote = tuple(remote) if remote is not None else None
        self._max_frame = max_frame
        self._retry = retry
        self._slot_locks = [asyncio.Lock() for _ in connections]
        self._closed = False

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        connections: int = 1,
        max_frame: int = MAX_FRAME_BYTES,
        retry: Optional[RetryPolicy] = None,
    ) -> "ServiceClient":
        """Open ``connections`` parallel connections to ``host:port``."""
        pool: List[_Connection] = []
        try:
            for _ in range(max(1, int(connections))):
                reader, writer = await asyncio.open_connection(host, port)
                pool.append(_Connection(reader, writer, max_frame))
        except Exception:
            for connection in pool:
                await connection.close()
            raise
        return cls(pool, remote=(host, port), max_frame=max_frame,
                   retry=retry)

    # -- request primitives ------------------------------------------------------

    def _is_dead(self, connection: _Connection) -> bool:
        return (connection.failure is not None
                or connection.reader_task.done()
                or connection.writer.is_closing())

    async def _slot(self, index: int) -> _Connection:
        """The connection at ``index``, re-dialed if it has died.

        Reconnection needs a remembered peer (clients built straight
        from a connection list have none) and is serialized per slot so
        two concurrent requests cannot race a double dial and leak one.
        A failed re-dial surfaces as the slot's original failure —
        callers keep seeing the :class:`ServiceError` they always did.
        """
        connection = self._connections[index]
        if not self._is_dead(connection) or self._remote is None:
            return connection
        async with self._slot_locks[index]:
            connection = self._connections[index]
            if self._closed or not self._is_dead(connection):
                return connection
            try:
                reader, writer = await asyncio.open_connection(
                    *self._remote
                )
            except (ConnectionError, OSError) as exc:
                failure = connection.failure
                if isinstance(failure, ServiceError):
                    raise failure from exc
                raise ServiceError(
                    "connection to %s:%s is closed and re-dial failed: %s"
                    % (self._remote[0], self._remote[1], exc)
                ) from exc
            replacement = _Connection(reader, writer, self._max_frame)
            await connection.close()
            self._connections[index] = replacement
            return replacement

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw request (an ``id`` is added) on the next connection."""
        body = dict(payload)
        body["id"] = next(self._ids)
        connection = await self._slot(next(self._rr))
        return await connection.request(body)

    async def request_checked(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Like :meth:`request`, raising typed errors for non-ok statuses."""
        response = await self.request(payload)
        status = response.get("status")
        if status == "busy":
            raise ServiceUnavailable(
                str(response.get("reason") or "service is busy")
            )
        if status != "ok":
            raise ServiceResponseError(response)
        return response

    # -- typed operations --------------------------------------------------------

    async def verify(
        self,
        signer: str,
        message: bytes,
        signature: Union[RecoverableSignature, Dict[str, Any]],
    ) -> Dict[str, Any]:
        """Raw DSA verification; returns the full ok-response."""
        if isinstance(signature, RecoverableSignature):
            signature = signature.to_canonical()
        return await self.request_checked({
            "op": "verify",
            "signer": signer,
            "message": message,
            "signature": signature,
        })

    async def verify_envelope(
        self, envelope: RecoverableEnvelope
    ) -> Dict[str, Any]:
        """Verify a commitment-carrying envelope (encodes its message)."""
        return await self.verify(
            envelope.signer, envelope.message(), envelope.signature
        )

    async def verify_batch(
        self, items: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Ship many verify items in one ``verify-batch`` frame.

        Each item is ``{"signer", "message", "signature"}`` (signature
        canonical dict or :class:`RecoverableSignature`); the return is
        one result mapping per item, in order — items fail individually
        (``status`` of ``busy``/``error``), never collectively.
        """
        encoded = []
        for item in items:
            signature = item.get("signature")
            if isinstance(signature, RecoverableSignature):
                item = dict(item, signature=signature.to_canonical())
            encoded.append(item)
        response = await self.request_checked({
            "op": "verify-batch",
            "items": encoded,
        })
        return response["results"]

    async def check_session(
        self,
        prev_session: Dict[str, Any],
        observed_state: Dict[str, Any],
        checked_host: Optional[str],
        checking_host: str,
    ) -> Dict[str, Any]:
        """Protocol-v2 session check; returns the canonical verdict."""
        response = await self.request_checked({
            "op": "check-session",
            "prev_session": prev_session,
            "observed_state": observed_state,
            "checked_host": checked_host,
            "checking_host": checking_host,
        })
        return response["verdict"]

    async def stats(self) -> Dict[str, Any]:
        """The server's aggregate metrics snapshot."""
        response = await self.request_checked({"op": "stats"})
        return response["stats"]

    async def ping(self) -> bool:
        """Liveness check."""
        response = await self.request({"op": "ping"})
        return response.get("status") == "ok"

    async def hello(self) -> Dict[str, Any]:
        """The full ping response: status, wire version, instance, role.

        Callers that negotiate (``repro.service.connect``) or watch for
        backend restarts (the cluster health monitor) need the whole
        advertisement, not just liveness.
        """
        return await self.request({"op": "ping"})

    # -- lifecycle ---------------------------------------------------------------

    async def close(self) -> None:
        """Close every pooled connection (and stop self-healing)."""
        self._closed = True
        for connection in self._connections:
            await connection.close()

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()


async def connect_with_retry(
    host: str,
    port: int,
    connections: int = 1,
    timeout: float = 10.0,
    interval: float = 0.1,
    max_frame: int = MAX_FRAME_BYTES,
) -> ServiceClient:
    """Connect, retrying until ``timeout`` (server still coming up).

    Deprecated: the fixed-interval loop this function used to be is now
    a degenerate :class:`~repro.service.retry.RetryPolicy` (no backoff
    growth, no jitter) — call ``repro.service.connect(endpoint)`` or
    build a real policy instead.
    """
    policy = RetryPolicy(
        deadline=timeout, base_delay=interval, max_delay=interval,
        multiplier=1.0, jitter=0.0,
    )
    return await policy.call(
        lambda: ServiceClient.connect(
            host, port, connections=connections, max_frame=max_frame,
            retry=policy,
        ),
        describe="connect to %s:%d" % (host, port),
    )


__all__.append("connect_with_retry")

"""The one public client surface of the verification service.

Callers used to juggle :class:`~repro.service.client.ServiceClient`,
raw ``(host, port)`` tuples, and retry helpers by hand — and the choice
of construction leaked into every call site.  This module collapses all
of it into a single entry point::

    verifier = await connect(endpoint)

where ``endpoint`` may be a ``"host:port"`` string, a ``(host, port)``
tuple, a started :class:`~repro.service.server.ServiceThread`, a
:class:`~repro.service.cluster.ClusterGateway`, or anything else with a
bound ``.address`` — the in-process handle, the single verifier node,
and the cluster gateway all satisfy the same :class:`Verifier` protocol
because every tier speaks the same wire protocol.  Code written against
``Verifier`` (the loadgen, the bench harness, the examples) does not
know or care how many processes answer it.

``connect`` also performs the hello negotiation: the server's ``ping``
response advertises its ``wire/<major>`` version, and a mismatched
major raises the typed
:class:`~repro.exceptions.WireVersionMismatch` at connect time instead
of a decode failure halfway through the first real request.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol, Tuple, \
    runtime_checkable

from repro.exceptions import ConfigurationError
from repro.service.client import ServiceClient
from repro.service.retry import RetryPolicy
from repro.service.wire import MAX_FRAME_BYTES, check_wire_version

__all__ = ["Verifier", "connect", "resolve_endpoint"]


@runtime_checkable
class Verifier(Protocol):
    """What every verification endpoint looks like to a caller.

    Satisfied structurally — by the pooled TCP client, by an in-process
    service handle, and by the cluster gateway client — so application
    code is written once against this protocol.
    """

    async def verify(self, signer: str, message: bytes,
                     signature: Any) -> Dict[str, Any]:
        """Verify one signature; returns the full ok-response."""
        ...

    async def verify_batch(
        self, items: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Verify many items in one frame; one result per item."""
        ...

    async def check_session(self, prev_session: Dict[str, Any],
                            observed_state: Dict[str, Any],
                            checked_host: Optional[str],
                            checking_host: str) -> Dict[str, Any]:
        """Run a protocol-v2 session check; returns the verdict."""
        ...

    async def stats(self) -> Dict[str, Any]:
        """The endpoint's aggregate metrics snapshot."""
        ...

    async def ping(self) -> bool:
        """Liveness check."""
        ...

    async def close(self) -> None:
        """Release every underlying connection."""
        ...


def resolve_endpoint(endpoint: Any) -> Tuple[str, int]:
    """Normalise any accepted endpoint shape to ``(host, port)``.

    Accepted shapes, in order of preference:

    * an object with a bound ``.address`` tuple (a started
      :class:`~repro.service.server.ServiceThread`, a
      :class:`~repro.service.server.VerificationService`, a
      :class:`~repro.service.cluster.ClusterGateway` or
      :class:`~repro.service.cluster.LocalCluster`);
    * a ``(host, port)`` tuple or list;
    * a ``"host:port"`` string (bare ``"host"`` is rejected — there is
      no default port to guess).
    """
    address = getattr(endpoint, "address", None)
    if address is not None and not isinstance(endpoint, (str, tuple, list)):
        endpoint = address() if callable(address) else address
    if isinstance(endpoint, (tuple, list)):
        if len(endpoint) != 2:
            raise ConfigurationError(
                "an endpoint tuple must be (host, port), got %r"
                % (endpoint,)
            )
        host, port = endpoint
        return str(host), int(port)
    if isinstance(endpoint, str):
        host, sep, port = endpoint.rpartition(":")
        if sep and host and port.isdigit():
            return host, int(port)
        raise ConfigurationError(
            "an endpoint string must be 'host:port', got %r" % (endpoint,)
        )
    raise ConfigurationError(
        "unsupported endpoint %r — pass 'host:port', (host, port), or an "
        "object with a bound .address" % (endpoint,)
    )


async def connect(
    endpoint: Any,
    *,
    connections: int = 1,
    retry_timeout: float = 10.0,
    retry: Optional[RetryPolicy] = None,
    negotiate: bool = True,
    max_frame: int = MAX_FRAME_BYTES,
) -> ServiceClient:
    """Open a :class:`Verifier` to ``endpoint`` — the one way to connect.

    Dialing is governed by a typed
    :class:`~repro.service.retry.RetryPolicy` — jittered exponential
    backoff under a deadline (a just-spawned server may still be
    binding; a thousand clients must not stampede it in lockstep).
    Pass ``retry`` to control the policy; the plain ``retry_timeout``
    shorthand builds one with that deadline.  The policy stays attached
    to the returned client, which transparently re-dials a pooled
    connection that has since died before using it — so a verifier
    restart costs callers one failed request at worst, not a dead
    client.

    After dialing comes the hello exchange: the server's advertised
    wire version must match this client's major or the typed
    :class:`~repro.exceptions.WireVersionMismatch` is raised and the
    connection is closed.  Pass ``negotiate=False`` only to talk to a
    pre-``wire/2`` server that cannot advertise.

    The returned object satisfies :class:`Verifier` regardless of what
    answers: a single verifier, a cluster gateway, or an in-process
    service thread.
    """
    host, port = resolve_endpoint(endpoint)
    policy = retry if retry is not None else RetryPolicy(
        deadline=retry_timeout
    )
    client = await policy.call(
        lambda: ServiceClient.connect(
            host, port, connections=connections, max_frame=max_frame,
            retry=policy,
        ),
        describe="connect to %s:%d" % (host, port),
    )
    if negotiate:
        try:
            hello = await client.hello()
            check_wire_version(hello.get("wire"))
        except BaseException:
            await client.close()
            raise
    return client

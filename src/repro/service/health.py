"""Backend health tracking for the verification cluster gateway.

The gateway must answer three questions about each verifier backend:

* **is it up?** — a backend is marked down after ``failure_threshold``
  consecutive probe failures (one flaky ping never evicts a node), or
  immediately when the request path sees its connection die (the
  request path is evidence enough: waiting K probe intervals to notice
  a dead peer would strand every in-flight request that long);
* **did it restart?** — each server process announces a random
  ``instance`` id in its ping (:mod:`repro.service.server`); a changed
  id on an *up* backend means a new process behind the same address,
  which fires the restart callback so the gateway can invalidate every
  cached verdict attributed to the old process;
* **when did it rejoin?** — a downed backend whose probe succeeds again
  is marked up, bumping its ``epoch`` so the gateway can rebalance the
  hash ring.

The monitor itself is transport-agnostic: it drives an async ``probe``
callable per backend (the gateway supplies one that pings over the
wire) and exposes callbacks for up/down/restart transitions.  That
keeps all the state-machine edges unit-testable without sockets
(``tests/service/test_health.py``).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

__all__ = ["BackendState", "HealthMonitor", "ProbeResult"]

#: What a probe reports back: the peer's instance id and wire version.
ProbeResult = Dict[str, Any]


@dataclass
class BackendState:
    """The monitor's view of one backend."""

    name: str
    up: bool = False
    #: Consecutive probe failures since the last success.
    consecutive_failures: int = 0
    #: Bumped every time the backend transitions down→up; the gateway
    #: uses it to notice rejoins between its own bookkeeping passes.
    epoch: int = 0
    #: The ``instance`` id the backend last announced, or ``None``
    #: before the first successful probe.
    instance: Optional[str] = None
    probes: int = 0
    failures: int = 0
    restarts: int = 0

    def snapshot(self) -> Dict[str, Any]:
        return dict(self.__dict__)


@dataclass
class _Callbacks:
    on_down: Optional[Callable[[BackendState], None]] = None
    on_up: Optional[Callable[[BackendState], None]] = None
    on_restart: Optional[Callable[[BackendState, str], None]] = None


class HealthMonitor:
    """Periodic prober and mark-down/up state machine for backends.

    Parameters
    ----------
    probe:
        ``async probe(name) -> ProbeResult`` — must raise on failure
        and return a mapping containing at least ``instance``.
    interval:
        Seconds between probe rounds.
    failure_threshold:
        Consecutive probe failures before a backend is marked down.
    on_down / on_up / on_restart:
        Synchronous transition callbacks.  ``on_restart(state, old)``
        fires when an up backend announces a new instance id (``old``
        is the previous id); ``on_up`` also fires on the first
        successful probe ever.
    """

    def __init__(
        self,
        probe: Callable[[str], Awaitable[ProbeResult]],
        *,
        interval: float = 0.5,
        failure_threshold: int = 3,
        on_down: Optional[Callable[[BackendState], None]] = None,
        on_up: Optional[Callable[[BackendState], None]] = None,
        on_restart: Optional[Callable[[BackendState, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self._probe = probe
        self.interval = float(interval)
        self.failure_threshold = int(failure_threshold)
        self._callbacks = _Callbacks(on_down, on_up, on_restart)
        self._backends: Dict[str, BackendState] = {}
        self._task: Optional["asyncio.Task[None]"] = None

    # -- membership --------------------------------------------------------------

    def add(self, name: str) -> BackendState:
        """Track ``name`` (idempotent); starts down until a probe lands."""
        state = self._backends.get(name)
        if state is None:
            state = BackendState(name=name)
            self._backends[name] = state
        return state

    def remove(self, name: str) -> None:
        self._backends.pop(name, None)

    def get(self, name: str) -> Optional[BackendState]:
        return self._backends.get(name)

    @property
    def backends(self) -> Tuple[BackendState, ...]:
        return tuple(self._backends[name]
                     for name in sorted(self._backends))

    def up_backends(self) -> Tuple[str, ...]:
        """Names currently considered up, sorted."""
        return tuple(sorted(
            name for name, state in self._backends.items() if state.up
        ))

    # -- state transitions -------------------------------------------------------

    def record_success(self, name: str,
                       result: ProbeResult) -> BackendState:
        """Apply one successful probe (also callable from the request
        path when a real response doubles as liveness evidence)."""
        state = self.add(name)
        state.probes += 1
        state.consecutive_failures = 0
        instance = result.get("instance")
        previous = state.instance
        restarted = (
            previous is not None and instance is not None
            and instance != previous
        )
        state.instance = instance if instance is not None else previous
        if restarted:
            state.restarts += 1
        if not state.up:
            state.up = True
            state.epoch += 1
            if self._callbacks.on_up is not None:
                self._callbacks.on_up(state)
        # Restart fires after up: a rejoin under a new instance id is
        # both transitions, and invalidation must follow re-admission.
        if restarted and self._callbacks.on_restart is not None:
            self._callbacks.on_restart(state, previous)
        return state

    def record_failure(self, name: str, *,
                       immediate: bool = False) -> BackendState:
        """Apply one failed probe; ``immediate`` marks down on the spot.

        The request path passes ``immediate=True`` — a connection that
        died under a real request is not a maybe.
        """
        state = self.add(name)
        state.probes += 1
        state.failures += 1
        state.consecutive_failures += 1
        if state.up and (immediate or
                         state.consecutive_failures
                         >= self.failure_threshold):
            state.up = False
            if self._callbacks.on_down is not None:
                self._callbacks.on_down(state)
        return state

    async def probe_once(self) -> None:
        """One probe round over every tracked backend, concurrently."""
        names = list(self._backends)

        async def _probe(name: str) -> None:
            try:
                result = await self._probe(name)
            except Exception:  # noqa: BLE001 - any failure is a failed probe
                self.record_failure(name)
            else:
                self.record_success(name, result or {})

        if names:
            await asyncio.gather(*(_probe(name) for name in names))

    # -- background loop ---------------------------------------------------------

    def start(self) -> None:
        """Start the periodic probe loop on the running event loop."""
        if self._task is None or self._task.done():
            self._task = asyncio.ensure_future(self._run())

    async def _run(self) -> None:
        while True:
            await self.probe_once()
            await asyncio.sleep(self.interval)

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    def stats(self) -> Dict[str, Any]:
        return {
            "interval": self.interval,
            "failure_threshold": self.failure_threshold,
            "backends": {name: state.snapshot()
                         for name, state in self._backends.items()},
        }


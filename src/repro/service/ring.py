"""Consistent hashing for the verification cluster gateway.

The gateway routes every verification by its content key (the digest +
signature tuple of :meth:`repro.service.cache.VerdictCache.key`), so a
given reference state always lands on the same verifier backend — its
backend-local verdict cache and micro-batches stay hot.  Plain modulo
routing would reshuffle *every* key when a backend joins or leaves; a
consistent-hash ring moves only the ~1/N of keys that the changed
node owned, which is what keeps failover and rejoin cheap
(``tests/service/test_ring.py`` pins the ~1/N bound down).

The ring is the textbook construction: each node is hashed onto the
ring at ``replicas`` virtual points (sha256 of ``"name#i"``), a key is
hashed to a point and walks clockwise to the first virtual node, and
lookups binary-search a sorted point list.  sha256 rather than a fast
non-cryptographic hash because routing keys are attacker-influenced
content (signatures from migrating agents): uniformity must not depend
on the traffic being friendly.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.crypto.canonical import canonical_encode

__all__ = ["HashRing", "DEFAULT_REPLICAS"]

#: Virtual nodes per backend.  64 keeps the per-node share within a few
#: percent of 1/N for single-digit clusters while the whole ring stays
#: a few hundred points — rebuild on membership change is trivial.
DEFAULT_REPLICAS = 64


def _point(data: bytes) -> int:
    """A position on the ring: the first 8 bytes of sha256."""
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over named nodes with virtual replicas."""

    def __init__(self, nodes: Iterable[str] = (),
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError("a ring needs at least one replica per node")
        self.replicas = int(replicas)
        self._nodes: Dict[str, Tuple[int, ...]] = {}
        self._points: List[int] = []
        self._owners: List[str] = []
        for node in nodes:
            self.add(node)

    # -- membership --------------------------------------------------------------

    def add(self, node: str) -> None:
        """Add ``node`` (idempotent); only ~1/N of keys move to it."""
        if node in self._nodes:
            return
        points = tuple(
            _point(("%s#%d" % (node, i)).encode("utf-8"))
            for i in range(self.replicas)
        )
        self._nodes[node] = points
        self._rebuild()

    def remove(self, node: str) -> None:
        """Remove ``node`` (idempotent); its keys spread over the rest."""
        if self._nodes.pop(node, None) is not None:
            self._rebuild()

    def _rebuild(self) -> None:
        pairs: List[Tuple[int, str]] = []
        for node, points in self._nodes.items():
            # Identical points from different node names are possible in
            # principle (a 64-bit collision); sorting by (point, name)
            # keeps ownership deterministic even then.
            pairs.extend((point, node) for point in points)
        pairs.sort()
        self._points = [point for point, _ in pairs]
        self._owners = [node for _, node in pairs]

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Current members, sorted by name."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # -- routing -----------------------------------------------------------------

    def route(self, key: Any) -> Optional[str]:
        """The node owning ``key``; ``None`` on an empty ring.

        ``key`` may be any canonical-encodable value — the gateway
        passes the verdict content key tuple directly.
        """
        if not self._points:
            return None
        point = _point(canonical_encode(key) if not isinstance(key, bytes)
                       else key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def route_avoiding(self, key: Any,
                       down: Iterable[str] = ()) -> Optional[str]:
        """Like :meth:`route` but skipping ``down`` nodes.

        Walks clockwise past virtual points owned by downed nodes, so a
        key's failover owner is the *next* live node on the ring — the
        same node every retry picks, keeping re-issued requests stable.
        """
        if not self._points:
            return None
        downed = set(down)
        live = set(self._nodes) - downed
        if not live:
            return None
        point = _point(canonical_encode(key) if not isinstance(key, bytes)
                       else key)
        start = bisect.bisect_right(self._points, point)
        total = len(self._points)
        for step in range(total):
            owner = self._owners[(start + step) % total]
            if owner in live:
                return owner
        return None

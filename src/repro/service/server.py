"""The asyncio reference-state verification server.

Hohl's framework places verification at trusted parties that many
migrating agents contact — the shape of a network service.  This module
is that service: an asyncio TCP server accepting length-prefixed
canonical-encoded requests (:mod:`repro.service.wire`), answering two
kinds of verification:

* ``verify`` — a raw DSA verification (signer name, message bytes,
  recoverable signature).  Concurrent requests are coalesced into
  time- and size-bounded micro-batches
  (:class:`repro.service.batching.MicroBatcher`) settled with one batch
  equation, fronted by an LRU verdict cache
  (:class:`repro.service.cache.VerdictCache`) keyed on digest+signature.
* ``check-session`` — a full ReferenceStateProtocol v2 ``prev_session``
  payload.  The server verifies every commitment signature and
  re-executes the session via
  :func:`repro.core.protocol.check_session_payload`, returning the
  exact verdict the in-process protocol would produce.

Backpressure is bounded-queue: when more verifications are in flight
than ``max_queue``, new requests receive an immediate typed ``busy``
response — the service sheds load, it never hangs a client.  Every
response carries structured per-request metrics (queue wait, batch
size, cache hit) and the ``stats`` op exposes the aggregate counters.

The PKI follows the library's deterministic model: principals' key
pairs derive from their names alone, so
:func:`build_service_keystore` reconstructs the public keys of any
fleet-shaped host population without key distribution.
"""

from __future__ import annotations

import asyncio
import secrets
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

# Importing the workloads registers the fleet agent code with the
# process-wide registry, so session re-execution can resolve the code
# names arriving in check-session payloads.
import repro.workloads.shopping  # noqa: F401
import repro.workloads.survey  # noqa: F401
from repro.core.protocol import check_session_payload
from repro.crypto.backend import get_backend, set_backend
from repro.crypto.dsa import RecoverableSignature
from repro.crypto.tablecache import table_cache_info
from repro.crypto.keys import Identity, KeyStore
from repro.exceptions import (
    FrameTooLarge,
    MalformedFrame,
    TruncatedFrame,
)
from repro.obs import STATS_SCHEMA, new_registry
from repro.service.batching import MicroBatcher
from repro.service.cache import VerdictCache
from repro.service.wire import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    decode_body,
    encode_frame,
    read_frame,
)
from repro.sim.fleet import FleetConfig, fleet_host_names

__all__ = [
    "ServiceConfig",
    "VerificationService",
    "ServiceThread",
    "build_service_keystore",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one verification-server instance.

    Attributes
    ----------
    host / port:
        Listen address; port ``0`` asks the kernel for a free port
        (the bound port is reported by :meth:`VerificationService.start`).
    max_batch / max_delay:
        Micro-batching window bounds (items / seconds).  ``max_batch=1``
        disables coalescing — the benchmark's no-batching baseline.
    cache_entries:
        LRU verdict-cache capacity; ``0`` disables the cache.
    max_queue:
        In-flight verification bound; beyond it requests get a typed
        ``busy`` response instead of queueing.
    max_frame:
        Largest accepted frame body; larger frames are rejected from
        the header alone, before any decode.
    fleet_hosts:
        Size of the fleet-shaped host population whose deterministic
        public keys the server registers at startup (``home`` plus
        ``host-001`` … ``host-NNN``).
    extra_principals:
        Additional principal names to register beyond the fleet shape.
    backend:
        Crypto backend to pin for this server process (``"python"``,
        ``"gmpy2"``, or ``"auto"``); ``None`` keeps whatever the
        process already resolved.  Pinning happens at construction so
        every verification this instance performs — and every number
        its ``stats`` op reports — is attributable to one engine.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 256
    max_delay: float = 0.002
    cache_entries: int = 65536
    max_queue: int = 8192
    max_frame: int = MAX_FRAME_BYTES
    fleet_hosts: int = 40
    extra_principals: Tuple[str, ...] = ()
    backend: Optional[str] = None


def build_service_keystore(num_hosts: int,
                           extra_principals: Tuple[str, ...] = ()) -> KeyStore:
    """Deterministic PKI for a fleet-shaped host population.

    Key pairs derive from principal names alone
    (:meth:`repro.crypto.keys.Identity.generate`), so a server and the
    fleets whose traffic it verifies agree on every public key without
    exchanging one byte of key material.
    """
    keystore = KeyStore()
    names = fleet_host_names(FleetConfig(num_hosts=max(1, int(num_hosts))))
    for name in list(names) + list(extra_principals):
        keystore.register_identity(Identity.generate(name))
    return keystore


@dataclass
class _Counters:
    """Aggregate request accounting (everything the stats op reports)."""

    connections: int = 0
    requests: int = 0
    verify_requests: int = 0
    batch_requests: int = 0
    session_requests: int = 0
    verdicts_true: int = 0
    verdicts_false: int = 0
    cache_hits: int = 0
    busy: int = 0
    errors: int = 0
    frames_rejected_oversize: int = 0
    frames_rejected_malformed: int = 0
    frames_truncated: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(self.__dict__)


class VerificationService:
    """One server instance: listener, batcher, cache, and metrics.

    Parameters
    ----------
    config:
        The server tunables.
    keystore:
        Public-key directory; defaults to the deterministic
        fleet-shaped PKI of :func:`build_service_keystore`.
    code_registry:
        Agent-code registry for session re-execution; defaults to the
        process-wide registry (the workload agents register on import).
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        keystore: Optional[KeyStore] = None,
        code_registry: Optional[Any] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        if self.config.backend is not None:
            set_backend(self.config.backend)
        # Resolve (and thereby pin) the engine before any key material
        # is built, so the whole lifetime of this instance runs on it.
        self.backend = get_backend()
        self.keystore = keystore if keystore is not None else (
            build_service_keystore(
                self.config.fleet_hosts, self.config.extra_principals
            )
        )
        self.code_registry = code_registry
        self.batcher = MicroBatcher(
            max_batch=self.config.max_batch,
            max_delay=self.config.max_delay,
        )
        self.cache: Optional[VerdictCache] = (
            VerdictCache(self.config.cache_entries)
            if self.config.cache_entries > 0 else None
        )
        self.counters = _Counters()
        # A fresh random id per *process instance*: a restarted backend
        # announces a different id in its ping, which is how the cluster
        # gateway detects the restart and invalidates that backend's
        # cached verdicts.
        self.instance_id = secrets.token_hex(8)
        # Side-band telemetry (repro.obs): per-op latency histograms
        # plus the verify path's queue-wait/batch-size distributions.
        # The aggregate request counters stay in ``self.counters`` —
        # telemetry complements them with the latency answers counters
        # cannot give.
        self.metrics = new_registry()
        self._op_latency = {
            op: self.metrics.histogram("service.op.%s.seconds" % op)
            for op in ("verify", "verify-batch", "check-session",
                       "stats", "ping")
        }
        self._m_queue_wait = self.metrics.histogram(
            "service.verify.queue_wait.seconds"
        )
        self._m_batch_size = self.metrics.histogram("service.batch_size")
        self._inflight = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._address: Optional[Tuple[str, int]] = None
        self._client_writers: set = set()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; only valid after :meth:`start`."""
        if self._address is None:
            raise RuntimeError("the service has not been started")
        return self._address

    async def start(self) -> Tuple[str, int]:
        """Bind the listener; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        return self._address

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the listener and settle anything still queued."""
        self.batcher.flush()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Closing the server-side transports EOFs every connection
        # handler, so they wind down on their own instead of being
        # cancelled mid-read.
        for writer in list(self._client_writers):
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass
        await asyncio.sleep(0)

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.counters.connections += 1
        self._client_writers.add(writer)
        tasks = []
        try:
            while True:
                try:
                    body = await read_frame(reader, self.config.max_frame)
                except (ConnectionError, OSError):
                    break
                except FrameTooLarge as exc:
                    # Rejected before decode; the stream position is
                    # unrecoverable past a refused body, so answer and
                    # close.
                    self.counters.frames_rejected_oversize += 1
                    self._write(writer, self._error_response(
                        None, "frame-too-large", str(exc)
                    ))
                    break
                except TruncatedFrame:
                    self.counters.frames_truncated += 1
                    break
                if body is None:
                    break
                try:
                    request = decode_body(body)
                except MalformedFrame as exc:
                    # Framing intact: answer with a typed error and keep
                    # serving the connection.
                    self.counters.frames_rejected_malformed += 1
                    self._write(writer, self._error_response(
                        None, "malformed-frame", str(exc)
                    ))
                    continue
                # Dispatch as a task so slow settlements never stop this
                # connection (or its pipeline) from being read.
                task = asyncio.ensure_future(
                    self._process(request, writer)
                )
                tasks.append(task)
                tasks = [t for t in tasks if not t.done()]
        finally:
            for task in tasks:
                if not task.done():
                    try:
                        await asyncio.wait_for(task, timeout=None)
                    except Exception:  # noqa: BLE001 - teardown must finish
                        pass
            self._client_writers.discard(writer)
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    def _write(self, writer: asyncio.StreamWriter, response: Dict[str, Any]) -> None:
        """Write one response frame (single ``write`` call: atomic order).

        A response that cannot be framed (e.g. a session verdict whose
        state-difference details blow past ``max_frame``) degrades to a
        typed error response — the client must always receive *an*
        answer for the request id, never silence.
        """
        try:
            frame = encode_frame(response, self.config.max_frame)
        except FrameTooLarge:
            self.counters.errors += 1
            frame = encode_frame(self._error_response(
                response.get("id"), "response-too-large",
                "the response exceeded the %d-byte frame limit"
                % self.config.max_frame,
            ))
        try:
            writer.write(frame)
        except (ConnectionError, OSError):
            pass

    # -- request processing ------------------------------------------------------

    async def _process(self, request: Any,
                       writer: asyncio.StreamWriter) -> None:
        response = await self._respond(request)
        self._write(writer, response)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _respond(self, request: Any) -> Dict[str, Any]:
        if not isinstance(request, dict):
            self.counters.errors += 1
            return self._error_response(
                None, "malformed-request", "request must be a mapping"
            )
        # Per-op latency is only recorded for known ops: metric names
        # must never be attacker-chosen (an unknown ``op`` string would
        # otherwise mint a new histogram per request).
        histogram = self._op_latency.get(request.get("op"))
        if histogram is None:
            return await self._dispatch(request)
        started = time.perf_counter()
        try:
            return await self._dispatch(request)
        finally:
            histogram.observe(time.perf_counter() - started)

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        request_id = request.get("id")
        op = request.get("op")
        self.counters.requests += 1
        try:
            if op == "verify":
                return await self._handle_verify(request_id, request)
            if op == "verify-batch":
                return await self._handle_verify_batch(request_id, request)
            if op == "check-session":
                return self._handle_session(request_id, request)
            if op == "stats":
                return {"id": request_id, "status": "ok",
                        "stats": self.stats()}
            if op == "ping":
                # The hello exchange: the server's version and identity
                # statement.  ``wire`` drives client-side negotiation;
                # ``instance`` changes on restart (restart detection).
                return {"id": request_id, "status": "ok",
                        "wire": WIRE_VERSION,
                        "instance": self.instance_id,
                        "role": "verifier"}
            self.counters.errors += 1
            return self._error_response(
                request_id, "unknown-op", "unsupported op %r" % (op,)
            )
        except Exception as exc:  # noqa: BLE001 - a request must never kill the server
            self.counters.errors += 1
            return self._error_response(
                request_id, "internal-error",
                "%s: %s" % (type(exc).__name__, exc),
            )

    async def _handle_verify(self, request_id: Any,
                             request: Dict[str, Any]) -> Dict[str, Any]:
        response = await self._verify_one(request)
        response["id"] = request_id
        return response

    async def _handle_verify_batch(self, request_id: Any,
                                   request: Dict[str, Any]) -> Dict[str, Any]:
        """The inter-tier aggregation op (``wire/2``).

        The cluster gateway ships one frame carrying many verify items;
        each settles through the same cache/keystore/batcher path as a
        standalone ``verify`` (so gateway aggregation and server-side
        micro-batching compose), and the response carries one result per
        item, in order.  Per-item failures (busy, malformed) stay
        per-item — one bad item never poisons its neighbours.
        """
        self.counters.batch_requests += 1
        items = request.get("items")
        if not isinstance(items, list):
            self.counters.errors += 1
            return self._error_response(
                request_id, "malformed-request",
                "verify-batch needs items:list",
            )
        results: List[Dict[str, Any]] = await asyncio.gather(*(
            self._verify_one(item if isinstance(item, dict) else {})
            for item in items
        ))
        return {"id": request_id, "status": "ok", "results": results}

    async def _verify_one(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Settle one verify item; the response carries no ``id`` yet."""
        self.counters.verify_requests += 1
        signer = request.get("signer")
        message = request.get("message")
        signature_data = request.get("signature")
        if (not isinstance(signer, str) or not isinstance(message, bytes)
                or not isinstance(signature_data, dict)):
            self.counters.errors += 1
            return self._item_error(
                "malformed-request",
                "verify needs signer:str, message:bytes, signature:dict",
            )
        try:
            signature = RecoverableSignature.from_canonical(signature_data)
        except Exception:
            self.counters.errors += 1
            return self._item_error(
                "malformed-request", "undecodable signature"
            )

        key = VerdictCache.key(signer, message, signature)
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self.counters.cache_hits += 1
                return self._verdict_response(
                    cached, cache_hit=True, batch_size=0, queue_wait=0.0,
                )

        public_key = self.keystore.maybe_get(signer)
        if public_key is None:
            # Unknown principals fail closed — and the refusal is itself
            # cacheable content (same key, same answer, forever).
            if self.cache is not None:
                self.cache.put(key, False)
            return self._verdict_response(
                False, cache_hit=False, batch_size=0, queue_wait=0.0,
                reason="unknown-signer",
            )

        if self._inflight >= self.config.max_queue:
            self.counters.busy += 1
            return {
                "status": "busy",
                "reason": "verification queue is full (%d in flight)"
                          % self._inflight,
            }

        self._inflight += 1
        try:
            settled = await self.batcher.submit(public_key, message, signature)
        finally:
            self._inflight -= 1
        self._m_queue_wait.observe(settled.queue_wait)
        self._m_batch_size.observe(settled.batch_size)
        if self.cache is not None:
            self.cache.put(key, settled.verdict)
        return self._verdict_response(
            settled.verdict, cache_hit=False,
            batch_size=settled.batch_size, queue_wait=settled.queue_wait,
        )

    def _handle_session(self, request_id: Any,
                        request: Dict[str, Any]) -> Dict[str, Any]:
        self.counters.session_requests += 1
        prev_session = request.get("prev_session")
        observed_state = request.get("observed_state")
        checked_host = request.get("checked_host")
        checking_host = request.get("checking_host")
        if (not isinstance(prev_session, dict)
                or not isinstance(observed_state, dict)
                or not isinstance(checking_host, str)):
            self.counters.errors += 1
            return self._error_response(
                request_id, "malformed-request",
                "check-session needs prev_session:dict, "
                "observed_state:dict, checking_host:str",
            )
        verdict = check_session_payload(
            prev_session,
            observed_state,
            checked_host if isinstance(checked_host, str) else None,
            checking_host=checking_host,
            keystore=self.keystore,
            code_registry=self.code_registry,
        )
        canonical = verdict.to_canonical()
        attack = canonical.get("status") == "attack-detected"
        if attack:
            self.counters.verdicts_false += 1
        else:
            self.counters.verdicts_true += 1
        return {
            "id": request_id,
            "status": "ok",
            "verdict": canonical,
        }

    # -- response shapes ---------------------------------------------------------

    def _verdict_response(self, verdict: bool, *,
                          cache_hit: bool, batch_size: int,
                          queue_wait: float,
                          reason: Optional[str] = None) -> Dict[str, Any]:
        if verdict:
            self.counters.verdicts_true += 1
        else:
            self.counters.verdicts_false += 1
        response: Dict[str, Any] = {
            "status": "ok",
            "verdict": verdict,
            "cache_hit": cache_hit,
            "batch_size": batch_size,
            "queue_wait_us": int(queue_wait * 1e6),
        }
        if reason is not None:
            response["reason"] = reason
        return response

    @staticmethod
    def _item_error(error: str, detail: str) -> Dict[str, Any]:
        return {"status": "error", "error": error, "detail": detail}

    @staticmethod
    def _error_response(request_id: Any, error: str,
                        detail: str) -> Dict[str, Any]:
        return {
            "id": request_id,
            "status": "error",
            "error": error,
            "detail": detail,
        }

    def stats(self) -> Dict[str, Any]:
        """Aggregate server metrics: counters, cache, batching, crypto.

        The envelope keys ``schema``/``role``/``instance``/``wire``/
        ``counters``/``telemetry``/``config`` are shared with
        :meth:`repro.service.cluster.ClusterGateway.stats` — the parity
        test in ``tests/service/test_api.py`` pins the shape.
        """
        if self.metrics.enabled:
            self.metrics.gauge("service.inflight").set(self._inflight)
            if self.cache is not None:
                cache_stats = self.cache.stats()
                self.metrics.gauge("service.cache.hit_rate").set(
                    cache_stats.get("hit_rate") or 0.0
                )
        return {
            "schema": STATS_SCHEMA,
            "role": "verifier",
            "counters": self.counters.snapshot(),
            "telemetry": self.metrics.snapshot(),
            "cache": self.cache.stats() if self.cache is not None else None,
            "batching": self.batcher.stats(),
            "inflight": self._inflight,
            "instance": self.instance_id,
            "wire": WIRE_VERSION,
            "crypto": {
                "backend": self.backend.name,
                "table_cache": table_cache_info(),
            },
            "config": {
                "max_batch": self.config.max_batch,
                "max_delay": self.config.max_delay,
                "max_queue": self.config.max_queue,
                "max_frame": self.config.max_frame,
                "cache_entries": self.config.cache_entries,
                "fleet_hosts": self.config.fleet_hosts,
                "backend": self.config.backend,
            },
        }


class ServiceThread:
    """Hosts a :class:`VerificationService` on a background event loop.

    The benchmark harness and the test-suite need a live server inside
    the current process without surrendering the main thread to an
    event loop; this helper owns a daemon thread running the loop and
    exposes ``start()``/``stop()`` with plain blocking semantics.
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 keystore: Optional[KeyStore] = None,
                 code_registry: Optional[Any] = None) -> None:
        self.service = VerificationService(
            config=config, keystore=keystore, code_registry=code_registry
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — makes a started thread a valid
        endpoint for :func:`repro.service.connect`."""
        return self.service.address

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Start the loop thread and the server; returns the address."""
        if self._thread is not None:
            return self.service.address
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("service thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                "service failed to start: %r" % (self._startup_error,)
            )
        return self.service.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.service.start())
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.service.stop())
            # Connection handlers may still be parked on reads; cancel
            # and drain them so closing the loop is silent.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the server and join the loop thread."""
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._thread = None
        self._loop = None

    def stats(self) -> Dict[str, Any]:
        """The hosted service's unified stats envelope."""
        return self.service.stats()

    def __enter__(self) -> "ServiceThread":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

"""Typed retry policy: a deadline and jittered exponential backoff.

The stack used to retry in two ad-hoc ways — a fixed-interval dial loop
(:func:`repro.service.client.connect_with_retry`, now deprecated) and
no request retry at all, so a single connection reset during a backend
restart failed an entire parity run.  :class:`RetryPolicy` replaces
both: one immutable value describing *how long* to keep trying
(``deadline``), *how fast* to back off (``base_delay`` × ``multiplier``
capped at ``max_delay``), and *how much* to jitter so a thousand
clients retrying the same dead backend do not stampede it in lockstep.

Retry is only sound for idempotent operations.  Everything the
verification service exposes is a pure function of its request —
verify, check-session, stats, ping — so the policy retries on the
transport-level transients (``retryable``) and nothing else: a typed
error response is an *answer*, not an outage.

Determinism: pass ``seed`` to pin the jitter sequence (tests, replay);
without it the module-level RNG supplies honest desynchronisation.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Optional, Tuple, Type

from repro.exceptions import (
    ConfigurationError,
    RetryExhausted,
    ServiceUnavailable,
)

__all__ = ["DEFAULT_RETRYABLE", "RetryPolicy"]

#: Transport-level transients worth retrying: connection resets and
#: refusals (``OSError`` covers ``ConnectionError``), torn reads
#: (``EOFError`` covers :class:`asyncio.IncompleteReadError`), and the
#: service's typed backpressure shed.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    OSError,
    EOFError,
    ServiceUnavailable,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How to keep trying a transient-failure-prone operation.

    ``deadline`` bounds the *total* wall time spent, attempts included
    — a policy never turns one slow failure into an unbounded hang.
    Attempt ``n`` sleeps ``base_delay * multiplier**n`` (capped at
    ``max_delay``), jittered uniformly down by up to ``jitter`` of
    itself.  A sleep that would overrun the deadline is clipped to it;
    once the deadline has passed, :class:`RetryExhausted` is raised
    with the last underlying error chained.
    """

    deadline: float = 10.0
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: Optional[int] = None
    retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE

    def validate(self) -> None:
        if self.deadline <= 0:
            raise ConfigurationError("deadline must be positive")
        if self.base_delay <= 0:
            raise ConfigurationError("base_delay must be positive")
        if self.max_delay < self.base_delay:
            raise ConfigurationError("max_delay must be >= base_delay")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1.0")
        if not (0.0 <= self.jitter <= 1.0):
            raise ConfigurationError("jitter must fall inside [0, 1]")
        if not self.retryable:
            raise ConfigurationError(
                "a policy with nothing retryable cannot retry"
            )

    def delay(self, attempt: int,
              rng: Optional[random.Random] = None) -> float:
        """The backoff before retry ``attempt`` (0-based), jittered."""
        step = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        draw = (rng or random).random()
        return step * (1.0 - self.jitter * draw)

    async def call(
        self,
        operation: Callable[[], Awaitable[Any]],
        describe: str = "operation",
    ) -> Any:
        """Run ``operation`` until it succeeds or the deadline passes.

        ``operation`` is a zero-argument coroutine factory — each
        attempt gets a fresh coroutine.  Non-retryable exceptions
        propagate immediately; retryable ones are swallowed and
        retried until the deadline, then surfaced inside a typed
        :class:`~repro.exceptions.RetryExhausted`.
        """
        self.validate()
        rng = random.Random(self.seed) if self.seed is not None else None
        loop = asyncio.get_event_loop()
        deadline = loop.time() + self.deadline
        attempt = 0
        while True:
            try:
                return await operation()
            except self.retryable as exc:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    raise RetryExhausted(
                        "%s still failing after %d attempt(s) over %.1fs: %s"
                        % (describe, attempt + 1, self.deadline, exc),
                        attempts=attempt + 1,
                        last_error=exc,
                    ) from exc
                await asyncio.sleep(
                    min(self.delay(attempt, rng), remaining)
                )
                attempt += 1

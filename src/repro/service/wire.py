"""Length-prefixed canonical framing for the verification service.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of canonical encoding
(:func:`repro.crypto.canonical.canonical_encode`) of a single request
or response value.  Canonical encoding is already the library's signed
wire format, so the service introduces no second serializer: the bytes
a client frames for the service are the very bytes signatures are
computed over elsewhere in the system.

Safety properties the framing layer enforces (the server's edge-case
contract, exercised by ``tests/service/test_wire.py``):

* an **oversized** frame is rejected from its header alone —
  :class:`~repro.exceptions.FrameTooLarge` is raised before any body
  byte is read, and long before a decode is attempted;
* a **truncated** frame (peer gone mid-frame) raises
  :class:`~repro.exceptions.TruncatedFrame`, while a clean EOF between
  frames reads as end-of-stream (``None``);
* a **malformed** body (framing intact, payload undecodable) raises
  :class:`~repro.exceptions.MalformedFrame` — the connection stays
  usable, the server answers with a typed error response.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any, Optional

from repro.crypto.canonical import canonical_decode, canonical_encode
from repro.exceptions import (
    FrameTooLarge,
    MalformedFrame,
    TruncatedFrame,
    WireVersionMismatch,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "WIRE_VERSION",
    "WIRE_MAJOR",
    "encode_frame",
    "decode_body",
    "read_frame",
    "split_frames",
    "parse_wire_version",
    "check_wire_version",
]

#: Wire-protocol version servers advertise in every ``ping`` response.
#: The major number changes on incompatible request/response shapes;
#: ``wire/2`` is the first version that advertises itself (and the
#: first with the ``verify-batch`` inter-tier op), so a peer that
#: advertises nothing is a ``wire/1`` speaker by definition.
WIRE_VERSION = "wire/2"
WIRE_MAJOR = 2

#: Default upper bound on one frame's body.  Generous for session-check
#: payloads (full initial states travel once per check) yet small enough
#: that a corrupt or hostile length prefix cannot make the server buffer
#: gigabytes before noticing.
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size


def encode_frame(payload: Any, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """Frame ``payload`` (header + canonical body) for the wire.

    Raises
    ------
    FrameTooLarge
        If the encoded body exceeds ``max_frame`` — the sender-side
        twin of the receiver's pre-decode rejection, so an oversized
        request fails loudly at the client instead of silently killing
        its connection.
    """
    body = canonical_encode(payload)
    if len(body) > max_frame:
        raise FrameTooLarge(
            "frame body of %d bytes exceeds the %d-byte limit"
            % (len(body), max_frame)
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Any:
    """Decode one frame body, mapping decode failures to a typed error."""
    try:
        return canonical_decode(body)
    except Exception as exc:
        raise MalformedFrame(
            "frame body is not a canonical value: %s" % exc
        ) from exc


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame: int = MAX_FRAME_BYTES,
) -> Optional[bytes]:
    """Read one frame body from ``reader``.

    Returns the raw body bytes (decode is the caller's separate step,
    so oversize rejection demonstrably happens *before* decode), or
    ``None`` on a clean end-of-stream between frames.
    """
    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TruncatedFrame(
            "connection closed inside a frame header "
            "(%d of %d bytes)" % (len(exc.partial), HEADER_BYTES)
        ) from exc
    (length,) = _HEADER.unpack(header)
    if length == 0:
        raise MalformedFrame("zero-length frame")
    if length > max_frame:
        # Rejected on the header alone: the body is never read, never
        # buffered, never decoded.
        raise FrameTooLarge(
            "declared frame length %d exceeds the %d-byte limit"
            % (length, max_frame)
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrame(
            "connection closed inside a %d-byte frame body "
            "(%d bytes received)" % (length, len(exc.partial))
        ) from exc


def parse_wire_version(advertised: Any) -> int:
    """Extract the major version from a ``wire/<major>`` advertisement.

    A missing advertisement (``None``) decodes as major ``1``: servers
    older than ``wire/2`` did not announce themselves, so absence *is*
    their version statement.  Anything else that does not look like
    ``wire/<int>`` raises :class:`~repro.exceptions.WireVersionMismatch`
    — an unintelligible advertisement is a mismatch, not a crash later.
    """
    if advertised is None:
        return 1
    if isinstance(advertised, str) and advertised.startswith("wire/"):
        suffix = advertised[len("wire/"):]
        if suffix.isdigit():
            return int(suffix)
    raise WireVersionMismatch(
        "unintelligible wire-version advertisement %r" % (advertised,)
    )


def check_wire_version(advertised: Any) -> int:
    """Refuse a peer whose advertised major differs from ours.

    Returns the peer's major on success; raises the typed
    :class:`~repro.exceptions.WireVersionMismatch` otherwise.  This is
    the client half of the hello exchange: gateway and verifier tiers
    can evolve independently because an incompatible pairing fails
    loudly at connect time.
    """
    major = parse_wire_version(advertised)
    if major != WIRE_MAJOR:
        raise WireVersionMismatch(
            "peer speaks wire/%d, this client speaks %s — refusing the "
            "connection" % (major, WIRE_VERSION)
        )
    return major


def split_frames(data: bytes, max_frame: int = MAX_FRAME_BYTES) -> list:
    """Split a byte string of concatenated frames into decoded payloads.

    Synchronous counterpart of :func:`read_frame` for tests and for
    tooling that captures whole conversations; enforces the same
    oversize / truncation / decode contract.
    """
    payloads = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < HEADER_BYTES:
            raise TruncatedFrame("trailing bytes shorter than a frame header")
        (length,) = _HEADER.unpack(data[offset:offset + HEADER_BYTES])
        if length == 0:
            raise MalformedFrame("zero-length frame")
        if length > max_frame:
            raise FrameTooLarge(
                "declared frame length %d exceeds the %d-byte limit"
                % (length, max_frame)
            )
        offset += HEADER_BYTES
        if total - offset < length:
            raise TruncatedFrame(
                "frame body of %d bytes truncated at %d"
                % (length, total - offset)
            )
        payloads.append(decode_body(data[offset:offset + length]))
        offset += length
    return payloads

"""Load generation: replay journey request streams against a server.

The loadgen replays the deterministic request streams of
:mod:`repro.sim.requests` — optionally with an adversarial fraction of
corrupted signatures — against a live verification server, from one or
several **processes**, each driving a pool of pipelined connections at
a target request rate (``rps=0`` means as fast as the pipeline allows).

Every response is checked against the stream's in-process ground truth:
a ``verify`` verdict must equal the expected boolean, a
``check-session`` verdict must equal the expected canonical verdict
dictionary bit for bit.  The merged :class:`LoadgenReport` carries the
counts the CI smoke job asserts on (zero drops, zero mismatches) and
the latency distribution the benchmark section reports (p50/p99).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.exceptions import ServiceError
from repro.service.api import connect, resolve_endpoint
from repro.service.retry import RetryPolicy
from repro.sim.fleet import FleetConfig
from repro.sim.requests import (
    VerificationRequest,
    corrupt_requests,
    journey_request_stream,
)

__all__ = [
    "LoadgenReport",
    "build_loadgen_stream",
    "fetch_server_stats",
    "replay_requests",
    "run_loadgen",
    "percentile",
]

#: What a replay may safely retry: every service request is a pure
#: function of its payload, so transport transients — resets, torn
#: reads, a dead pooled connection surfacing as a
#: :class:`~repro.exceptions.ServiceError` — are retried; a typed
#: error *response* is an answer and is never retried.
LOADGEN_RETRYABLE = (OSError, EOFError, ServiceError)


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1]) of ``samples``."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[index]


@dataclass
class LoadgenReport:
    """Merged outcome of one loadgen run."""

    sent: int = 0
    completed: int = 0
    busy: int = 0
    errors: int = 0
    retried: int = 0
    recovered: int = 0
    mismatches: int = 0
    corrupted: int = 0
    verify_requests: int = 0
    session_requests: int = 0
    cache_hits: int = 0
    wall_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    mismatch_samples: List[Dict[str, Any]] = field(default_factory=list)
    processes: int = 1

    @property
    def dropped(self) -> int:
        """Requests that never produced an ok-response."""
        return self.sent - self.completed

    @property
    def achieved_rps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    def merge(self, other: "LoadgenReport") -> None:
        self.sent += other.sent
        self.completed += other.completed
        self.busy += other.busy
        self.errors += other.errors
        self.retried += other.retried
        self.recovered += other.recovered
        self.mismatches += other.mismatches
        self.corrupted += other.corrupted
        self.verify_requests += other.verify_requests
        self.session_requests += other.session_requests
        self.cache_hits += other.cache_hits
        self.wall_seconds = max(self.wall_seconds, other.wall_seconds)
        self.latencies.extend(other.latencies)
        self.mismatch_samples.extend(other.mismatch_samples[:4])

    def summary(self) -> Dict[str, Any]:
        """JSON-ready summary (latencies reduced to the distribution)."""
        return {
            "sent": self.sent,
            "completed": self.completed,
            "dropped": self.dropped,
            "busy": self.busy,
            "errors": self.errors,
            "retried": self.retried,
            "recovered": self.recovered,
            "mismatches": self.mismatches,
            "corrupted": self.corrupted,
            "verify_requests": self.verify_requests,
            "session_requests": self.session_requests,
            "cache_hits": self.cache_hits,
            "processes": self.processes,
            "wall_seconds": round(self.wall_seconds, 4),
            "achieved_rps": round(self.achieved_rps, 2),
            "latency_ms": {
                "p50": round(1e3 * percentile(self.latencies, 0.50), 3),
                "p99": round(1e3 * percentile(self.latencies, 0.99), 3),
                "max": round(1e3 * max(self.latencies), 3)
                if self.latencies else 0.0,
                "mean": round(
                    1e3 * sum(self.latencies) / len(self.latencies), 3
                ) if self.latencies else 0.0,
            },
            "mismatch_samples": self.mismatch_samples[:4],
        }


async def _fetch_stats(endpoint: Any, timeout: float) -> Dict[str, Any]:
    client = await connect(endpoint, connections=1, retry_timeout=timeout)
    try:
        response = await client.request({"op": "stats"})
    finally:
        await client.close()
    if response.get("status") != "ok":
        raise ValueError("stats op answered %r" % response.get("status"))
    return response.get("stats") or {}


def fetch_server_stats(endpoint: Any,
                       timeout: float = 10.0) -> Dict[str, Any]:
    """One ``stats`` round-trip against a live endpoint, or ``{}``.

    Loadgen artifacts embed the answer so every recorded number names
    the crypto backend (and cache state) that produced it; a server
    that cannot answer degrades the artifact, never the run — hence
    the broad swallow.
    """
    try:
        return asyncio.run(_fetch_stats(endpoint, timeout))
    except Exception:  # noqa: BLE001 - diagnostics are best-effort
        return {}


def build_loadgen_stream(
    config: FleetConfig,
    requests: int,
    adversarial_fraction: float = 0.0,
    include_sessions: bool = True,
    seed: int = 0,
) -> Tuple[List[VerificationRequest], int]:
    """Build a replayable stream of ``requests`` items from a fleet shape.

    The journey stream is repeated (in order) until the target count is
    reached — repeats are realistic service traffic and exercise the
    verdict cache — then the adversarial fraction is applied.  Returns
    ``(stream, corrupted_count)``.
    """
    captured = journey_request_stream(config)
    base = captured.requests if include_sessions else captured.verify_requests
    if not base:
        raise ValueError("the fleet configuration produced no requests")
    stream: List[VerificationRequest] = []
    while len(stream) < requests:
        stream.extend(base[:requests - len(stream)])
    return corrupt_requests(stream, adversarial_fraction, seed=seed)


async def replay_requests(
    endpoint: Any,
    requests: Sequence[VerificationRequest],
    rps: float = 0.0,
    connections: int = 2,
    max_inflight: int = 128,
    connect_timeout: float = 10.0,
    retry_deadline: float = 0.0,
) -> LoadgenReport:
    """Drive one async replay of ``requests`` against ``endpoint``.

    ``endpoint`` is anything :func:`repro.service.connect` accepts — a
    single server, a cluster gateway, or an in-process service thread;
    the replay is written once against the ``Verifier`` surface.
    ``rps`` schedules request starts on a fixed grid (0 = unthrottled);
    ``max_inflight`` bounds client-side concurrency so an unthrottled
    replay exerts backpressure-shaped load rather than a single burst.

    ``retry_deadline`` > 0 retries transport transients per request
    under a :class:`~repro.service.retry.RetryPolicy` with that
    deadline before counting an error — every replayed request is
    idempotent, so a backend restart mid-run costs latency, not drops.
    Requests that needed a retry are counted in ``retried`` and, when
    they ultimately succeeded, in ``recovered``.
    """
    report = LoadgenReport()
    client = await connect(
        endpoint, connections=connections, retry_timeout=connect_timeout
    )
    policy = (
        RetryPolicy(deadline=retry_deadline, retryable=LOADGEN_RETRYABLE)
        if retry_deadline > 0 else None
    )
    loop = asyncio.get_event_loop()
    gate = asyncio.Semaphore(max(1, int(max_inflight)))
    started = loop.time()

    async def one(index: int, request: VerificationRequest) -> None:
        if rps > 0:
            delay = started + index / rps - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
        async with gate:
            begin = loop.time()
            attempts = 0

            async def send() -> Dict[str, Any]:
                nonlocal attempts
                attempts += 1
                return await client.request(dict(request.payload))

            try:
                if policy is not None:
                    response = await policy.call(
                        send, describe="%s request %d" % (request.op, index)
                    )
                else:
                    response = await send()
            except Exception:
                report.errors += 1
                if attempts > 1:
                    report.retried += 1
                return
            if attempts > 1:
                report.retried += 1
                report.recovered += 1
            report.latencies.append(loop.time() - begin)
            status = response.get("status")
            if status == "busy":
                report.busy += 1
                return
            if status != "ok":
                report.errors += 1
                return
            report.completed += 1
            if response.get("cache_hit"):
                report.cache_hits += 1
            observed = response.get("verdict")
            if observed != request.expected:
                report.mismatches += 1
                if len(report.mismatch_samples) < 8:
                    report.mismatch_samples.append({
                        "op": request.op,
                        "journey": request.journey,
                        "expected": request.expected,
                        "observed": observed,
                    })

    report.sent = len(requests)
    for request in requests:
        if request.op == "verify":
            report.verify_requests += 1
        else:
            report.session_requests += 1
    try:
        await asyncio.gather(*(
            one(index, request) for index, request in enumerate(requests)
        ))
    finally:
        await client.close()
    report.wall_seconds = loop.time() - started
    return report


def _loadgen_worker(args: Tuple[Any, ...]) -> Dict[str, Any]:
    """Top-level worker (spawn-picklable): replay a slice of the stream."""
    (endpoint, requests, rps, connections, max_inflight,
     retry_deadline) = args
    report = asyncio.run(replay_requests(
        endpoint, requests, rps=rps, connections=connections,
        max_inflight=max_inflight, retry_deadline=retry_deadline,
    ))
    state = dict(report.__dict__)
    return state


def run_loadgen(
    endpoint: Any,
    requests: Sequence[VerificationRequest],
    processes: int = 1,
    rps: float = 0.0,
    connections: int = 2,
    max_inflight: int = 128,
    retry_deadline: float = 0.0,
) -> LoadgenReport:
    """Replay ``requests`` from ``processes`` worker processes.

    The stream is split round-robin so every process sees the same op
    mix; the target rate is divided evenly.  With ``processes=1`` the
    replay runs in this process (no multiprocessing machinery), which
    is what the benchmark harness uses to keep measurements clean.
    """
    # Workers are spawned: the endpoint crosses a pickle boundary, so
    # normalise any live-object shape down to its (host, port) now.
    endpoint = resolve_endpoint(endpoint)
    processes = max(1, int(processes))
    if processes == 1:
        report = asyncio.run(replay_requests(
            endpoint, list(requests), rps=rps, connections=connections,
            max_inflight=max_inflight, retry_deadline=retry_deadline,
        ))
        report.processes = 1
        return report

    slices: List[List[VerificationRequest]] = [[] for _ in range(processes)]
    for index, request in enumerate(requests):
        slices[index % processes].append(request)
    worker_args = [
        (endpoint, chunk, rps / processes if rps > 0 else 0.0,
         connections, max_inflight, retry_deadline)
        for chunk in slices if chunk
    ]
    context = multiprocessing.get_context("spawn")
    started = time.perf_counter()
    with context.Pool(processes=len(worker_args)) as pool:
        results = pool.map(_loadgen_worker, worker_args)
    wall = time.perf_counter() - started
    merged = LoadgenReport(processes=len(worker_args))
    for state in results:
        partial = LoadgenReport()
        partial.__dict__.update(state)
        merged.merge(partial)
    # Cross-process wall clock: the pool's envelope, which includes
    # worker spawn; individual worker walls are kept via merge(max).
    merged.wall_seconds = max(merged.wall_seconds, 0.0) or wall
    return merged

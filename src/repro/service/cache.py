"""LRU verdict cache for the verification service.

Signature verification is a pure function of ``(signer, message,
signature)``, so a verdict observed once holds forever and can be
served from memory.  The cache key binds the *digest* of the message to
the full ``(r, s, commitment)`` triple: two requests that differ in any
of those five components occupy different entries, so a cached verdict
can never be served across differing digests or signatures — the
staleness property ``tests/service/test_cache.py`` pins down.

Unlike the FIFO :class:`repro.crypto.batch.VerificationCache` used
inside fleet engines (where the stream is one pass and eviction order
barely matters), the service sees *recurring* traffic — loadgen replays,
retried requests, hot signers — so eviction is LRU: every hit refreshes
the entry's position and the working set stays resident.

Entries may carry a **tag** (the cluster gateway tags each verdict with
the backend that produced it).  :meth:`VerdictCache.invalidate` drops
every entry under a tag in one call — the explicit invalidation hook
the gateway fires when a verifier backend restarts, so a replaced
process never has stale verdicts attributed to it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Set, Tuple

from repro.crypto.dsa import RecoverableSignature
from repro.crypto.hashing import hash_bytes

__all__ = ["VerdictCache", "VerdictKey"]

#: Content key of one verification: (signer, message digest, r, s, R).
VerdictKey = Tuple[str, bytes, int, int, int]


class VerdictCache:
    """Bounded LRU map from verification content keys to verdicts."""

    def __init__(self, max_entries: int = 65536) -> None:
        self._entries: "OrderedDict[Any, Tuple[Any, Optional[str]]]" = (
            OrderedDict()
        )
        self._tagged: Dict[str, Set[Any]] = {}
        self.max_entries = max(1, int(max_entries))
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @staticmethod
    def key(signer: str, message: bytes,
            signature: RecoverableSignature) -> VerdictKey:
        """Content key: signer, message digest, and the full signature."""
        digest = hash_bytes(message).digest
        return (signer, digest, signature.r, signature.s,
                signature.commitment)

    def get(self, key: Any) -> Optional[Any]:
        """Cached verdict for ``key`` (refreshing recency), else ``None``."""
        try:
            verdict, _tag = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return verdict

    def put(self, key: Any, verdict: Any,
            tag: Optional[str] = None) -> None:
        """Record a verdict, evicting the least recently used beyond cap.

        ``tag`` attributes the entry to a producer (a cluster backend);
        tagged entries can be dropped wholesale with
        :meth:`invalidate`.
        """
        if key in self._entries:
            self._discard_tag(key)
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.max_entries:
            evicted_key, _ = self._entries.popitem(last=False)
            self._discard_tag(evicted_key)
            self.evictions += 1
        self._entries[key] = (verdict, tag)
        if tag is not None:
            self._tagged.setdefault(tag, set()).add(key)

    def invalidate(self, tag: str) -> int:
        """Drop every entry recorded under ``tag``; returns the count.

        The gateway calls this when a backend restarts (its instance id
        changed between health probes): every verdict the old process
        produced is discarded in one sweep.
        """
        keys = self._tagged.pop(tag, None)
        if not keys:
            return 0
        dropped = 0
        for key in keys:
            if self._entries.pop(key, None) is not None:
                dropped += 1
        self.invalidations += dropped
        return dropped

    def _discard_tag(self, key: Any) -> None:
        """Remove ``key`` from its tag index entry, if it has one."""
        entry = self._entries.get(key)
        if entry is None:
            return
        tag = entry[1]
        if tag is not None:
            members = self._tagged.get(tag)
            if members is not None:
                members.discard(key)
                if not members:
                    self._tagged.pop(tag, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/eviction/invalidation counters and the hit rate."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": len(self),
            "max_entries": self.max_entries,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

"""LRU verdict cache for the verification service.

Signature verification is a pure function of ``(signer, message,
signature)``, so a verdict observed once holds forever and can be
served from memory.  The cache key binds the *digest* of the message to
the full ``(r, s, commitment)`` triple: two requests that differ in any
of those five components occupy different entries, so a cached verdict
can never be served across differing digests or signatures — the
staleness property ``tests/service/test_cache.py`` pins down.

Unlike the FIFO :class:`repro.crypto.batch.VerificationCache` used
inside fleet engines (where the stream is one pass and eviction order
barely matters), the service sees *recurring* traffic — loadgen replays,
retried requests, hot signers — so eviction is LRU: every hit refreshes
the entry's position and the working set stays resident.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.crypto.dsa import RecoverableSignature
from repro.crypto.hashing import hash_bytes

__all__ = ["VerdictCache", "VerdictKey"]

#: Content key of one verification: (signer, message digest, r, s, R).
VerdictKey = Tuple[str, bytes, int, int, int]


class VerdictCache:
    """Bounded LRU map from verification content keys to verdicts."""

    def __init__(self, max_entries: int = 65536) -> None:
        self._entries: "OrderedDict[VerdictKey, bool]" = OrderedDict()
        self.max_entries = max(1, int(max_entries))
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(signer: str, message: bytes,
            signature: RecoverableSignature) -> VerdictKey:
        """Content key: signer, message digest, and the full signature."""
        digest = hash_bytes(message).digest
        return (signer, digest, signature.r, signature.s,
                signature.commitment)

    def get(self, key: VerdictKey) -> Optional[bool]:
        """Cached verdict for ``key`` (refreshing recency), else ``None``."""
        try:
            verdict = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return verdict

    def put(self, key: VerdictKey, verdict: bool) -> None:
        """Record a verdict, evicting the least recently used beyond cap."""
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = verdict

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: VerdictKey) -> bool:
        return key in self._entries

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/eviction counters and the lifetime hit rate."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self),
            "max_entries": self.max_entries,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

"""The verification cluster: gateway, routing, failover, local launcher.

One verifier process caps the fleet a deployment can protect at
whatever a single CPU verifies.  This module scales the trusted party
*out*: a :class:`ClusterGateway` accepts the exact wire protocol of a
single server (:mod:`repro.service.wire` framing, same ops — clients
cannot tell a gateway from a verifier) and fans requests over N backend
verifier processes.

Design points, in the order a request meets them:

* **content routing** — every verify is routed by its verdict content
  key (:meth:`repro.service.cache.VerdictCache.key`: signer, digest,
  signature) over a consistent-hash ring
  (:class:`repro.service.ring.HashRing`), so one reference state always
  lands on the same backend and that backend's verdict cache and
  micro-batches stay hot.  Membership changes move only ~1/N keys.
* **gateway verdict cache** — a second :class:`VerdictCache` tier in
  the gateway, each entry *tagged* with the backend that produced it.
  When the health monitor detects a backend restart (its announced
  ``instance`` id changed), every verdict attributed to the old process
  is explicitly invalidated in one sweep.
* **aggregation** — per-backend :class:`_BackendBatcher` windows
  coalesce concurrent singles into one ``verify-batch`` frame, so the
  gateway⇄verifier hop costs one round trip per window, and the
  backend's own micro-batcher still sees the full window at once.
* **idempotent failover** — verification is a pure function of the
  content key, so when a backend dies mid-batch every in-flight item is
  simply re-routed to the next live ring owner and re-issued.  An
  in-flight table keyed by content key deduplicates concurrent
  requests for the same verification, so re-issue can never produce a
  duplicated (or lost) verdict: one key, one future, one answer.
* **health** — a :class:`repro.service.health.HealthMonitor` pings
  every backend; K consecutive failures (or one request-path
  connection failure) mark it down, a succeeding probe marks it back
  up and the ring-avoidance set shrinks again — rejoin is rebalancing.
* **circuit breaking** — a per-backend
  :class:`repro.service.breaker.CircuitBreaker` fed only by the
  request path.  A *flapping* verifier (alive for probes, dead for
  requests) keeps passing health checks; its breaker trips after K
  consecutive request failures and sheds it from routing for an
  escalating cooldown, so flaps cost idle time instead of failover
  round trips on live traffic.

:func:`spawn_verifier` / :class:`LocalCluster` launch real verifier
subprocesses plus an in-process gateway — the bench harness, the CI
``cluster-smoke`` job, and ``python -m repro.service spawn-cluster``
all go through them.
"""

from __future__ import annotations

import asyncio
import os
import secrets
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.crypto.canonical import canonical_encode
from repro.crypto.dsa import RecoverableSignature
from repro.exceptions import (
    ConfigurationError,
    FrameTooLarge,
    MalformedFrame,
    NoBackendAvailable,
    ServiceError,
    ServiceUnavailable,
    TruncatedFrame,
)
from repro.obs import STATS_SCHEMA, new_registry
from repro.service.breaker import CircuitBreaker
from repro.service.cache import VerdictCache
from repro.service.client import ServiceClient
from repro.service.health import BackendState, HealthMonitor
from repro.service.ring import DEFAULT_REPLICAS, HashRing
from repro.service.server import ServiceConfig
from repro.service.wire import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    check_wire_version,
    decode_body,
    encode_frame,
    read_frame,
)

__all__ = [
    "ClusterConfig",
    "ClusterGateway",
    "ClusterThread",
    "LocalCluster",
    "SpawnedVerifier",
    "spawn_verifier",
]


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of one gateway, layered over per-verifier tunables.

    The layering is deliberate: ``service`` is a plain
    :class:`~repro.service.server.ServiceConfig` describing each
    *verifier* (batch window, cache size, fleet PKI, crypto backend) —
    the launcher passes it to every spawned backend — while the fields
    here describe the *gateway tier* (listen address, backend
    addresses, routing, aggregation, health, failover).
    """

    #: Backend verifier addresses.  Empty only for launcher-built
    #: configs where :class:`LocalCluster` fills them in after spawning.
    backends: Tuple[Tuple[str, int], ...] = ()
    host: str = "127.0.0.1"
    port: int = 0
    #: Per-verifier tunables (consumed by the launcher / CLI).
    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: Gateway-tier verdict-cache capacity; ``0`` disables the tier.
    cache_entries: int = 65536
    #: Gateway→backend aggregation window (items / seconds).
    gather_batch: int = 64
    gather_delay: float = 0.001
    connections_per_backend: int = 1
    health_interval: float = 0.25
    failure_threshold: int = 3
    #: Routing attempts per request before giving up (each failed
    #: attempt marks its backend down, so attempts never repeat a peer).
    max_attempts: int = 4
    ring_replicas: int = DEFAULT_REPLICAS
    max_frame: int = MAX_FRAME_BYTES
    #: Per-backend circuit breaker: consecutive *request-path* failures
    #: before the backend is shed from routing (``0`` disables the
    #: breaker tier).  A flapping verifier passes health probes yet
    #: fails real requests; the breaker keeps it off the request path
    #: for ``breaker_cooldown`` seconds, doubling (up to
    #: ``breaker_max_cooldown``) while flaps recur within
    #: ``breaker_flap_window`` of each other.
    breaker_threshold: int = 3
    breaker_cooldown: float = 1.0
    breaker_max_cooldown: float = 30.0
    breaker_flap_window: float = 10.0
    breaker_half_open_probes: int = 1


@dataclass
class _GatewayCounters:
    """Aggregate gateway accounting (everything its stats op reports)."""

    connections: int = 0
    requests: int = 0
    verify_requests: int = 0
    batch_requests: int = 0
    session_requests: int = 0
    cache_hits: int = 0
    dedup_hits: int = 0
    failovers: int = 0
    reissues: int = 0
    breaker_trips: int = 0
    breaker_shed: int = 0
    no_backend: int = 0
    busy: int = 0
    errors: int = 0
    restarts_detected: int = 0
    invalidated_verdicts: int = 0
    frames_rejected_oversize: int = 0
    frames_rejected_malformed: int = 0
    frames_truncated: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(self.__dict__)


def _backend_name(address: Tuple[str, int]) -> str:
    return "%s:%d" % (str(address[0]), int(address[1]))


class _BackendBatcher:
    """Aggregates concurrent verify items into ``verify-batch`` frames.

    The single-server :class:`~repro.service.batching.MicroBatcher`
    shape, one tier up: a window closes at ``max_batch`` items or
    ``max_delay`` seconds after its first item, then ships as one
    frame.  A failed shipment fails every window item's future — the
    gateway's dispatch loop re-routes and re-issues them.
    """

    def __init__(self, gateway: "ClusterGateway", name: str,
                 max_batch: int, max_delay: float) -> None:
        self._gateway = gateway
        self.name = name
        self.max_batch = max(1, int(max_batch))
        self.max_delay = max(0.0, float(max_delay))
        self._queue: List[Tuple[Dict[str, Any],
                                "asyncio.Future[Dict[str, Any]]"]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self.flushes = 0
        self.items = 0

    def submit(self, item: Dict[str, Any]) -> "asyncio.Future[Dict[str, Any]]":
        loop = asyncio.get_event_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._queue.append((item, future))
        if len(self._queue) >= self.max_batch:
            self.flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_delay, self.flush)
        return future

    def flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._queue:
            return
        window, self._queue = self._queue, []
        self.flushes += 1
        self.items += len(window)
        asyncio.ensure_future(self._ship(window))

    async def _ship(self, window: List[Tuple[Dict[str, Any],
                                             "asyncio.Future[Dict[str, Any]]"
                                             ]]) -> None:
        try:
            client = await self._gateway._client(self.name)
            results = await client.verify_batch(
                [item for item, _ in window]
            )
            if len(results) != len(window):
                raise ServiceError(
                    "backend %s answered %d results for %d items"
                    % (self.name, len(results), len(window))
                )
        except BaseException as exc:  # noqa: BLE001 - handed to every waiter
            for _, future in window:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(window, results):
            if not future.done():
                future.set_result(result)

    def stats(self) -> Dict[str, Any]:
        return {
            "flushes": self.flushes,
            "items": self.items,
            "pending": len(self._queue),
            "mean_batch_size": (self.items / self.flushes)
            if self.flushes else 0.0,
        }


class ClusterGateway:
    """Wire-compatible front door routing over N verifier backends."""

    def __init__(self, config: ClusterConfig) -> None:
        if not config.backends:
            raise ConfigurationError(
                "a cluster gateway needs at least one backend address"
            )
        self.config = config
        self.instance_id = secrets.token_hex(8)
        self._addresses: Dict[str, Tuple[str, int]] = {
            _backend_name(address): (str(address[0]), int(address[1]))
            for address in config.backends
        }
        self.ring = HashRing(self._addresses, replicas=config.ring_replicas)
        self.cache: Optional[VerdictCache] = (
            VerdictCache(config.cache_entries)
            if config.cache_entries > 0 else None
        )
        self.monitor = HealthMonitor(
            self._probe,
            interval=config.health_interval,
            failure_threshold=config.failure_threshold,
            on_down=self._on_backend_down,
            on_restart=self._on_backend_restart,
        )
        for name in self._addresses:
            self.monitor.add(name)
        self.counters = _GatewayCounters()
        #: Request-path breakers, one per backend.  The health monitor
        #: sees probe results; a *flapping* backend passes probes yet
        #: fails real requests, so the breakers are fed exclusively by
        #: the dispatch loops — never by :meth:`_probe`.
        self._breakers: Dict[str, CircuitBreaker] = (
            {
                name: CircuitBreaker(
                    failure_threshold=config.breaker_threshold,
                    cooldown=config.breaker_cooldown,
                    max_cooldown=config.breaker_max_cooldown,
                    flap_window=config.breaker_flap_window,
                    half_open_probes=config.breaker_half_open_probes,
                )
                for name in self._addresses
            }
            if config.breaker_threshold > 0 else {}
        )
        self.metrics = new_registry()
        # Latency histograms exist only for the known ops — request
        # bodies carry attacker-chosen op strings, which must never
        # mint new metric names.
        self._op_latency = {
            op: self.metrics.histogram("gateway.op.%s.seconds" % op)
            for op in ("verify", "verify-batch", "check-session",
                       "stats", "ping")
        }
        self._backend_metrics = {
            name: {
                "routed": self.metrics.counter(
                    "gateway.backend.%s.routed" % name),
                "failovers": self.metrics.counter(
                    "gateway.backend.%s.failovers" % name),
                "reissues": self.metrics.counter(
                    "gateway.backend.%s.reissues" % name),
            }
            for name in self._addresses
        }
        self._clients: Dict[str, ServiceClient] = {}
        self._client_locks: Dict[str, asyncio.Lock] = {}
        self._batchers: Dict[str, _BackendBatcher] = {
            name: _BackendBatcher(
                self, name, config.gather_batch, config.gather_delay
            )
            for name in self._addresses
        }
        #: In-flight dedup: content key → the one future answering it.
        self._pending: Dict[Any, "asyncio.Future[Dict[str, Any]]"] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._address: Optional[Tuple[str, int]] = None
        self._client_writers: set = set()

    # -- backend connections -----------------------------------------------------

    async def _client(self, name: str) -> ServiceClient:
        """The pooled (negotiated) client to backend ``name``."""
        client = self._clients.get(name)
        if client is not None:
            return client
        lock = self._client_locks.setdefault(name, asyncio.Lock())
        async with lock:
            client = self._clients.get(name)
            if client is not None:
                return client
            host, port = self._addresses[name]
            client = await ServiceClient.connect(
                host, port,
                connections=self.config.connections_per_backend,
                max_frame=self.config.max_frame,
            )
            try:
                hello = await client.hello()
                check_wire_version(hello.get("wire"))
            except BaseException:
                await client.close()
                raise
            # A fresh connection's hello is liveness + identity
            # evidence: feed it to the monitor so restart detection
            # does not wait for the next probe round.
            self.monitor.record_success(name, hello)
            self._clients[name] = client
            return client

    async def _drop_client(self, name: str) -> None:
        client = self._clients.pop(name, None)
        if client is not None:
            try:
                await client.close()
            except Exception:  # noqa: BLE001 - already failing
                pass

    async def _probe(self, name: str) -> Dict[str, Any]:
        client = await self._client(name)
        try:
            hello = await client.hello()
        except BaseException:
            await self._drop_client(name)
            raise
        if hello.get("status") != "ok":
            raise ServiceError("backend %s failed its ping: %r"
                               % (name, hello))
        return hello

    # -- health transitions ------------------------------------------------------

    def _on_backend_down(self, state: BackendState) -> None:
        # Cached verdicts from a *down* backend stay valid (verdicts
        # are pure); only a *restart* invalidates.  Dropping the dead
        # client just forces a clean reconnect on rejoin.
        asyncio.ensure_future(self._drop_client(state.name))

    def _on_backend_restart(self, state: BackendState,
                            old_instance: str) -> None:
        self.counters.restarts_detected += 1
        if self.cache is not None:
            dropped = self.cache.invalidate(state.name)
            self.counters.invalidated_verdicts += dropped

    def _down_names(self) -> Tuple[str, ...]:
        return tuple(
            state.name for state in self.monitor.backends if not state.up
        )

    def _avoid_names(self) -> Tuple[str, ...]:
        """Backends routing must skip: monitor-down plus breaker-shed.

        Shedding only applies while it leaves at least one routable
        backend — with every breaker open the gateway degrades to
        monitor health alone instead of refusing requests that the
        backends might still answer.
        """
        avoid = set(self._down_names())
        shed = [
            name for name, breaker in self._breakers.items()
            if name not in avoid and breaker.blocked()
        ]
        if shed and len(avoid) + len(shed) < len(self._addresses):
            self.counters.breaker_shed += len(shed)
            avoid.update(shed)
        return tuple(avoid)

    def _note_backend_result(self, backend: str, ok: bool) -> None:
        """Feed one request-path outcome to ``backend``'s breaker."""
        breaker = self._breakers.get(backend)
        if breaker is None:
            return
        if ok:
            breaker.record_success()
            return
        before = breaker.trips
        breaker.record_failure()
        if breaker.trips > before:
            self.counters.breaker_trips += 1

    # -- lifecycle ---------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; only valid after :meth:`start`."""
        if self._address is None:
            raise RuntimeError("the gateway has not been started")
        return self._address

    async def start(self) -> Tuple[str, int]:
        """Probe every backend once, start the monitor, bind the listener."""
        await self.monitor.probe_once()
        self.monitor.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        return self._address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        await self.monitor.stop()
        for batcher in self._batchers.values():
            batcher.flush()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._client_writers):
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass
        for name in list(self._clients):
            await self._drop_client(name)
        await asyncio.sleep(0)

    # -- connection handling (same loop shape as the single server) -------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.counters.connections += 1
        self._client_writers.add(writer)
        tasks: List["asyncio.Task[None]"] = []
        try:
            while True:
                try:
                    body = await read_frame(reader, self.config.max_frame)
                except (ConnectionError, OSError):
                    break
                except FrameTooLarge as exc:
                    self.counters.frames_rejected_oversize += 1
                    self._write(writer, self._error_response(
                        None, "frame-too-large", str(exc)
                    ))
                    break
                except TruncatedFrame:
                    self.counters.frames_truncated += 1
                    break
                if body is None:
                    break
                try:
                    request = decode_body(body)
                except MalformedFrame as exc:
                    self.counters.frames_rejected_malformed += 1
                    self._write(writer, self._error_response(
                        None, "malformed-frame", str(exc)
                    ))
                    continue
                task = asyncio.ensure_future(self._process(request, writer))
                tasks.append(task)
                tasks = [t for t in tasks if not t.done()]
        finally:
            for task in tasks:
                if not task.done():
                    try:
                        await asyncio.wait_for(task, timeout=None)
                    except Exception:  # noqa: BLE001 - teardown must finish
                        pass
            self._client_writers.discard(writer)
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    def _write(self, writer: asyncio.StreamWriter,
               response: Dict[str, Any]) -> None:
        try:
            frame = encode_frame(response, self.config.max_frame)
        except FrameTooLarge:
            self.counters.errors += 1
            frame = encode_frame(self._error_response(
                response.get("id"), "response-too-large",
                "the response exceeded the %d-byte frame limit"
                % self.config.max_frame,
            ))
        try:
            writer.write(frame)
        except (ConnectionError, OSError):
            pass

    async def _process(self, request: Any,
                       writer: asyncio.StreamWriter) -> None:
        response = await self._respond(request)
        self._write(writer, response)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    # -- request handling --------------------------------------------------------

    async def _respond(self, request: Any) -> Dict[str, Any]:
        if not isinstance(request, dict):
            self.counters.errors += 1
            return self._error_response(
                None, "malformed-request", "request must be a mapping"
            )
        histogram = self._op_latency.get(request.get("op"))
        if histogram is None:
            return await self._dispatch_request(request)
        started = time.perf_counter()
        try:
            return await self._dispatch_request(request)
        finally:
            histogram.observe(time.perf_counter() - started)

    async def _dispatch_request(
        self, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        request_id = request.get("id")
        op = request.get("op")
        self.counters.requests += 1
        try:
            if op == "verify":
                self.counters.verify_requests += 1
                response = await self._verify_item(request)
                response["id"] = request_id
                return response
            if op == "verify-batch":
                return await self._handle_batch(request_id, request)
            if op == "check-session":
                return await self._handle_session(request_id, request)
            if op == "stats":
                return {"id": request_id, "status": "ok",
                        "stats": self.stats()}
            if op == "ping":
                return {"id": request_id, "status": "ok",
                        "wire": WIRE_VERSION,
                        "instance": self.instance_id,
                        "role": "gateway"}
            self.counters.errors += 1
            return self._error_response(
                request_id, "unknown-op", "unsupported op %r" % (op,)
            )
        except NoBackendAvailable as exc:
            return self._error_response(request_id, "no-backend", str(exc))
        except Exception as exc:  # noqa: BLE001 - a request must never kill the gateway
            self.counters.errors += 1
            return self._error_response(
                request_id, "internal-error",
                "%s: %s" % (type(exc).__name__, exc),
            )

    async def _handle_batch(self, request_id: Any,
                            request: Dict[str, Any]) -> Dict[str, Any]:
        self.counters.batch_requests += 1
        items = request.get("items")
        if not isinstance(items, list):
            self.counters.errors += 1
            return self._error_response(
                request_id, "malformed-request",
                "verify-batch needs items:list",
            )
        self.counters.verify_requests += len(items)
        results = await asyncio.gather(*(
            self._verify_item(item if isinstance(item, dict) else {})
            for item in items
        ))
        return {"id": request_id, "status": "ok", "results": list(results)}

    async def _verify_item(self, item: Dict[str, Any]) -> Dict[str, Any]:
        """Settle one verify item to a per-item response (no ``id``)."""
        try:
            return await self._settle_verify(item)
        except NoBackendAvailable as exc:
            self.counters.no_backend += 1
            return {"status": "error", "error": "no-backend",
                    "detail": str(exc)}
        except ServiceUnavailable as exc:
            self.counters.busy += 1
            return {"status": "busy", "reason": str(exc)}
        except Exception as exc:  # noqa: BLE001 - per-item isolation
            self.counters.errors += 1
            return {"status": "error", "error": "gateway-error",
                    "detail": "%s: %s" % (type(exc).__name__, exc)}

    async def _settle_verify(self, item: Dict[str, Any]) -> Dict[str, Any]:
        signer = item.get("signer")
        message = item.get("message")
        signature_data = item.get("signature")
        if (not isinstance(signer, str) or not isinstance(message, bytes)
                or not isinstance(signature_data, dict)):
            self.counters.errors += 1
            return {"status": "error", "error": "malformed-request",
                    "detail": "verify needs signer:str, message:bytes, "
                              "signature:dict"}
        try:
            signature = RecoverableSignature.from_canonical(signature_data)
        except Exception:
            self.counters.errors += 1
            return {"status": "error", "error": "malformed-request",
                    "detail": "undecodable signature"}

        key = VerdictCache.key(signer, message, signature)
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self.counters.cache_hits += 1
                return {"status": "ok", "verdict": cached,
                        "cache_hit": True, "batch_size": 0,
                        "queue_wait_us": 0, "tier": "gateway-cache"}

        # One content key, one in-flight settlement: a concurrent
        # duplicate awaits the original's future, so failover re-issue
        # can never yield two verdicts for one verification.
        pending = self._pending.get(key)
        if pending is not None:
            self.counters.dedup_hits += 1
            return dict(await asyncio.shield(pending))

        loop = asyncio.get_event_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._pending[key] = future
        try:
            wire_item = {"signer": signer, "message": message,
                         "signature": signature.to_canonical()}
            result, backend = await self._dispatch(key, wire_item)
            result = dict(result)
            result.setdefault("backend", backend)
            if (self.cache is not None and result.get("status") == "ok"
                    and "verdict" in result):
                self.cache.put(key, result["verdict"], tag=backend)
            future.set_result(result)
            return result
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # Mark retrieved: the duplicates that await this future
                # re-raise it, but when there are none asyncio would
                # otherwise log a never-retrieved exception.
                future.exception()
            raise
        finally:
            self._pending.pop(key, None)

    async def _dispatch(
        self, key: Any, item: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], str]:
        """Route ``key`` to a live backend, re-issuing across failures."""
        last_error: Optional[BaseException] = None
        for attempt in range(max(1, self.config.max_attempts)):
            backend = self.ring.route_avoiding(key, self._avoid_names())
            if backend is None:
                raise NoBackendAvailable(
                    "all %d verifier backends are down" % len(self.ring)
                )
            breaker = self._breakers.get(backend)
            if breaker is not None:
                breaker.begin_attempt()
            try:
                result = await self._batchers[backend].submit(item)
            except (ServiceError, ConnectionError, OSError,
                    asyncio.IncompleteReadError) as exc:
                # The backend died under a real request: mark it down on
                # the spot and re-route.  Verification is pure, so the
                # re-issue is idempotent by construction.
                last_error = exc
                self.counters.failovers += 1
                self._backend_metrics[backend]["failovers"].inc()
                if attempt + 1 < max(1, self.config.max_attempts):
                    self.counters.reissues += 1
                    self._backend_metrics[backend]["reissues"].inc()
                self._note_backend_result(backend, ok=False)
                self.monitor.record_failure(backend, immediate=True)
                await self._drop_client(backend)
                continue
            self._note_backend_result(backend, ok=True)
            self._backend_metrics[backend]["routed"].inc()
            return result, backend
        assert last_error is not None
        raise last_error

    async def _handle_session(self, request_id: Any,
                              request: Dict[str, Any]) -> Dict[str, Any]:
        self.counters.session_requests += 1
        payload = {
            name: request.get(name)
            for name in ("prev_session", "observed_state",
                         "checked_host", "checking_host")
        }
        payload["op"] = "check-session"
        # Session checks route by their canonical content, with the
        # same failover loop as verifies — re-execution is pure too.
        route_key = canonical_encode(payload)
        last_error: Optional[BaseException] = None
        for attempt in range(max(1, self.config.max_attempts)):
            backend = self.ring.route_avoiding(
                route_key, self._avoid_names()
            )
            if backend is None:
                raise NoBackendAvailable(
                    "all %d verifier backends are down" % len(self.ring)
                )
            breaker = self._breakers.get(backend)
            if breaker is not None:
                breaker.begin_attempt()
            try:
                client = await self._client(backend)
                response = await client.request(payload)
            except (ServiceError, ConnectionError, OSError,
                    asyncio.IncompleteReadError) as exc:
                last_error = exc
                self.counters.failovers += 1
                self._backend_metrics[backend]["failovers"].inc()
                if attempt + 1 < max(1, self.config.max_attempts):
                    self.counters.reissues += 1
                    self._backend_metrics[backend]["reissues"].inc()
                self._note_backend_result(backend, ok=False)
                self.monitor.record_failure(backend, immediate=True)
                await self._drop_client(backend)
                continue
            self._note_backend_result(backend, ok=True)
            self._backend_metrics[backend]["routed"].inc()
            response = dict(response)
            response["id"] = request_id
            response.setdefault("backend", backend)
            return response
        assert last_error is not None
        raise last_error

    @staticmethod
    def _error_response(request_id: Any, error: str,
                        detail: str) -> Dict[str, Any]:
        return {
            "id": request_id,
            "status": "error",
            "error": error,
            "detail": detail,
        }

    def stats(self) -> Dict[str, Any]:
        """Gateway metrics: counters, cache, health, ring, aggregation.

        Shares the ``schema``/``role``/``instance``/``wire``/
        ``counters``/``telemetry``/``config`` envelope with
        :meth:`repro.service.server.VerificationService.stats`; the
        parity test in ``tests/service/test_api.py`` pins the shape.
        """
        if self.metrics.enabled:
            state_codes = {"closed": 0, "half-open": 1, "open": 2}
            for name, breaker in self._breakers.items():
                self.metrics.gauge(
                    "gateway.breaker.%s.state" % name
                ).set(state_codes.get(breaker.state, -1))
            self.metrics.gauge("gateway.backends.up").set(
                len(tuple(self.monitor.up_backends()))
            )
            if self.cache is not None:
                self.metrics.gauge("gateway.cache.hit_rate").set(
                    self.cache.stats().get("hit_rate") or 0.0
                )
        return {
            "schema": STATS_SCHEMA,
            "role": "gateway",
            "instance": self.instance_id,
            "wire": WIRE_VERSION,
            "counters": self.counters.snapshot(),
            "telemetry": self.metrics.snapshot(),
            "cache": self.cache.stats() if self.cache is not None else None,
            "health": self.monitor.stats(),
            "ring": {
                "nodes": list(self.ring.nodes),
                "replicas": self.ring.replicas,
                "up": list(self.monitor.up_backends()),
            },
            "aggregation": {
                name: batcher.stats()
                for name, batcher in self._batchers.items()
            },
            "breakers": {
                name: breaker.stats()
                for name, breaker in self._breakers.items()
            },
            "config": {
                "backends": [list(address)
                             for address in self.config.backends],
                "gather_batch": self.config.gather_batch,
                "gather_delay": self.config.gather_delay,
                "cache_entries": self.config.cache_entries,
                "health_interval": self.config.health_interval,
                "failure_threshold": self.config.failure_threshold,
                "max_attempts": self.config.max_attempts,
                "breaker_threshold": self.config.breaker_threshold,
                "breaker_cooldown": self.config.breaker_cooldown,
            },
        }


class ClusterThread:
    """Hosts a :class:`ClusterGateway` on a background event loop.

    The blocking twin of the gateway, mirroring
    :class:`~repro.service.server.ServiceThread` so tests and the local
    launcher get a live gateway without surrendering their thread.
    """

    def __init__(self, config: ClusterConfig) -> None:
        self.gateway = ClusterGateway(config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.gateway.address

    def start(self, timeout: float = 30.0) -> Tuple[str, int]:
        if self._thread is not None:
            return self.gateway.address
        self._thread = threading.Thread(
            target=self._run, name="repro-gateway", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("gateway thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                "gateway failed to start: %r" % (self._startup_error,)
            )
        return self.gateway.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.gateway.start())
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.gateway.stop())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._thread = None
        self._loop = None

    def stats(self) -> Dict[str, Any]:
        """The hosted gateway's unified stats envelope."""
        return self.gateway.stats()

    def __enter__(self) -> "ClusterThread":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


# -- local multi-process launcher ------------------------------------------------


@dataclass
class SpawnedVerifier:
    """One verifier subprocess and where it listens."""

    process: subprocess.Popen
    address: Tuple[str, int]

    @property
    def name(self) -> str:
        return _backend_name(self.address)

    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL — the failover drill's mid-batch death."""
        if self.alive():
            self.process.kill()
        self.process.wait()

    def terminate(self, timeout: float = 5.0) -> None:
        if self.alive():
            self.process.terminate()
            try:
                self.process.wait(timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()


def _subprocess_env() -> Dict[str, str]:
    """The child's env: ensure ``repro`` is importable as installed here."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)
    ))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing
        else src_dir + os.pathsep + existing
    )
    return env


def spawn_verifier(
    config: Optional[ServiceConfig] = None,
    *,
    startup_timeout: float = 60.0,
    table_cache: Optional[str] = None,
) -> SpawnedVerifier:
    """Launch one ``python -m repro.service serve`` verifier subprocess.

    Blocks until the child announces ``listening on host:port`` on its
    stdout (the same line the CI smoke jobs grep for) and returns the
    running process plus the bound address.
    """
    config = config or ServiceConfig()
    command = [
        sys.executable, "-m", "repro.service", "serve",
        "--host", config.host,
        "--port", str(config.port),
        "--max-batch", str(config.max_batch),
        "--max-delay-ms", str(config.max_delay * 1e3),
        "--cache-entries", str(config.cache_entries),
        "--max-queue", str(config.max_queue),
        "--fleet-hosts", str(config.fleet_hosts),
    ]
    if config.backend is not None:
        command += ["--backend", config.backend]
    if table_cache is not None:
        command += ["--table-cache", table_cache]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=_subprocess_env(),
        text=True,
    )
    deadline = time.monotonic() + startup_timeout
    assert process.stdout is not None
    while True:
        if time.monotonic() > deadline:
            process.kill()
            process.wait()
            raise ServiceError(
                "verifier subprocess did not announce its address within "
                "%.0fs" % startup_timeout
            )
        line = process.stdout.readline()
        if not line:
            process.wait()
            raise ServiceError(
                "verifier subprocess exited with code %r before binding"
                % process.returncode
            )
        line = line.strip()
        if line.startswith("listening on "):
            target = line[len("listening on "):]
            host, _, port = target.rpartition(":")
            if not host or not port.isdigit():
                process.kill()
                process.wait()
                raise ServiceError(
                    "unparseable verifier announcement %r" % line
                )
            return SpawnedVerifier(
                process=process, address=(host, int(port))
            )


class LocalCluster:
    """N verifier subprocesses fronted by one in-thread gateway.

    The deployment-in-a-box used by the bench harness, the CI
    ``cluster-smoke`` job, and ``python -m repro.service
    spawn-cluster``: real processes (real parallelism — the whole point
    of the cluster) behind a :class:`ClusterThread` gateway.
    """

    def __init__(self, verifiers: int = 3,
                 config: Optional[ClusterConfig] = None,
                 table_cache: Optional[str] = None) -> None:
        if verifiers < 1:
            raise ConfigurationError("a cluster needs at least one verifier")
        self.num_verifiers = int(verifiers)
        self._template = config or ClusterConfig()
        self._table_cache = table_cache
        self.verifiers: List[SpawnedVerifier] = []
        self.config: Optional[ClusterConfig] = None
        self.gateway_thread: Optional[ClusterThread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The gateway's bound address — a valid ``connect`` endpoint."""
        if self.gateway_thread is None:
            raise RuntimeError("the cluster has not been started")
        return self.gateway_thread.address

    @property
    def gateway(self) -> ClusterGateway:
        if self.gateway_thread is None:
            raise RuntimeError("the cluster has not been started")
        return self.gateway_thread.gateway

    def start(self) -> Tuple[str, int]:
        """Spawn the verifiers, then the gateway; returns its address."""
        try:
            for _ in range(self.num_verifiers):
                self.verifiers.append(spawn_verifier(
                    self._template.service,
                    table_cache=self._table_cache,
                ))
            self.config = ClusterConfig(
                backends=tuple(v.address for v in self.verifiers),
                host=self._template.host,
                port=self._template.port,
                service=self._template.service,
                cache_entries=self._template.cache_entries,
                gather_batch=self._template.gather_batch,
                gather_delay=self._template.gather_delay,
                connections_per_backend=(
                    self._template.connections_per_backend
                ),
                health_interval=self._template.health_interval,
                failure_threshold=self._template.failure_threshold,
                max_attempts=self._template.max_attempts,
                ring_replicas=self._template.ring_replicas,
                max_frame=self._template.max_frame,
            )
            self.gateway_thread = ClusterThread(self.config)
            return self.gateway_thread.start()
        except BaseException:
            self.stop()
            raise

    def kill_verifier(self, index: int = 0) -> SpawnedVerifier:
        """SIGKILL one verifier (the failover drill); returns it."""
        victim = self.verifiers[index]
        victim.kill()
        return victim

    def stop(self) -> None:
        if self.gateway_thread is not None:
            self.gateway_thread.stop()
            self.gateway_thread = None
        for verifier in self.verifiers:
            verifier.terminate()
        self.verifiers = []

    def __enter__(self) -> "LocalCluster":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

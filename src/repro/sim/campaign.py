"""Adversarial fleet campaigns: detection quality as a measured property.

The paper's central claim is about *detection coverage*: which attack
classes the reference-states scheme catches, which it concedes, and at
what cost.  A campaign makes that claim measurable at fleet scale: a
configurable fraction of journeys carries a journey-resident attack
(one injector striking at one hop, assigned deterministically from the
``("campaign", index)`` substream — see
:func:`~repro.sim.fleet.plan_journey_attack`), the fleet runs as usual
(sharded or not; merged campaign runs are bit-identical to
single-process ones), and the outcomes aggregate into a
:class:`CampaignResult`:

* per-scenario **recall** (detected / injected), **precision** against
  the benign population, the campaign-wide **false-positive rate**, and
  mean **hops- / time-to-detection**;
* a detectability **matrix** bucketing outcomes by Figure-2 area and by
  expected :class:`~repro.attacks.model.Detectability` class;
* a :class:`~repro.attacks.detection.DetectionReport` built from the
  per-journey ground truth, which :func:`detection_report_from_trace`
  reconstructs from the JSONL trace alone — the trace carries both the
  ground truth (``attack`` events) and the verdicts (``complete``
  events), so post-hoc analysis never needs the live run.

Metric definitions (campaign population = campaign-attacked plus fully
benign journeys; any journey that met a *resident* malicious host —
including one that also carried a campaign attack — is excluded from
campaign metrics and reported separately, because its verdicts cannot
be attributed to the campaign scenario):

* ``recall``      — flagged fraction of journeys carrying an attack the
  paper expects to be caught;
* ``precision``   — attacked fraction of all flagged journeys;
* ``false_positive_rate`` — flagged fraction of benign journeys;
* per-scenario ``detection_rate`` — flagged fraction of that scenario's
  journeys (equals recall for expected-detectable scenarios and must be
  0.0 for conceded ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.attacks.detection import DetectionOutcome, DetectionReport
from repro.attacks.model import AttackArea, Detectability, areas_by_detectability
from repro.attacks.scenarios import catalogue_names, scenario_by_name
from repro.sim.fleet import FleetConfig, FleetResult, JourneyOutcome
from repro.sim.shard import run_fleet
from repro.sim.trace import attack_events

__all__ = [
    "DEFAULT_CAMPAIGN_SCENARIOS",
    "ScenarioStats",
    "CampaignResult",
    "campaign_config",
    "analyze_campaign",
    "run_campaign",
    "detection_report_from_trace",
]

#: Every scenario of the standard catalogue — the default draw set.
DEFAULT_CAMPAIGN_SCENARIOS: Tuple[str, ...] = catalogue_names()

#: Mechanism names recorded in detection outcomes (mirrors the
#: protection mechanisms without importing the protocol stack).
_PROTECTED_MECHANISM = "reference-state-protocol"
_UNPROTECTED_MECHANISM = "unprotected"


def campaign_config(
    num_agents: int = 1000,
    num_hosts: int = 25,
    hops_per_journey: int = 4,
    attack_fraction: float = 0.3,
    scenarios: Sequence[str] = DEFAULT_CAMPAIGN_SCENARIOS,
    seed: int = 0,
    **overrides: Any,
) -> FleetConfig:
    """A fleet configuration shaped for a campaign run.

    The host population is honest (``malicious_host_fraction=0``) so
    every attack in the run is campaign ground truth; override it to
    study mixed populations.
    """
    settings: Dict[str, Any] = dict(
        num_agents=num_agents,
        num_hosts=num_hosts,
        hops_per_journey=hops_per_journey,
        malicious_host_fraction=0.0,
        attack_fraction=attack_fraction,
        journey_scenarios=tuple(scenarios),
        seed=seed,
    )
    settings.update(overrides)
    return FleetConfig(**settings)


def _mechanism_name(config: FleetConfig) -> str:
    return _PROTECTED_MECHANISM if config.protected else _UNPROTECTED_MECHANISM


def _scenario_expectation(config: FleetConfig, scenario_name: str) -> bool:
    """Paper expectation for one campaign scenario under this config."""
    return bool(config.protected) and scenario_by_name(
        scenario_name
    ).expected_detected


def _mean(values: List[float]) -> Optional[float]:
    if not values:
        return None
    return sum(values) / len(values)


@dataclass
class ScenarioStats:
    """Campaign detection metrics for one attack scenario.

    ``benign_flagged`` / ``benign_journeys`` describe the shared benign
    population the per-scenario precision is computed against.
    """

    scenario: str
    area: AttackArea
    detectability: Detectability
    expected_detected: bool
    injected: int
    detected: int
    benign_flagged: int
    benign_journeys: int
    mean_hops_to_detection: Optional[float]
    mean_time_to_detection: Optional[float]

    @property
    def detection_rate(self) -> Optional[float]:
        """Flagged fraction of this scenario's journeys."""
        if self.injected == 0:
            return None
        return self.detected / self.injected

    @property
    def recall(self) -> Optional[float]:
        """Alias of :attr:`detection_rate` (the campaign's gated metric)."""
        return self.detection_rate

    @property
    def precision(self) -> Optional[float]:
        """Attacked fraction of alarms among this scenario plus benign."""
        flagged = self.detected + self.benign_flagged
        if flagged == 0:
            return None
        return self.detected / flagged

    @property
    def false_positive_rate(self) -> float:
        """Flagged fraction of the shared benign population."""
        if self.benign_journeys == 0:
            return 0.0
        return self.benign_flagged / self.benign_journeys

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (bench reports, CI artifacts)."""
        return {
            "scenario": self.scenario,
            "area": self.area.value,
            "area_name": self.area.description,
            "detectability": self.detectability.value,
            "expected_detected": self.expected_detected,
            "injected": self.injected,
            "detected": self.detected,
            "detection_rate": self.detection_rate,
            "recall": self.recall,
            "precision": self.precision,
            "false_positive_rate": self.false_positive_rate,
            "mean_hops_to_detection": self.mean_hops_to_detection,
            "mean_time_to_detection": self.mean_time_to_detection,
        }


@dataclass
class CampaignResult:
    """Detection-quality view over a finished (possibly sharded) fleet run."""

    fleet: FleetResult

    # -- populations -------------------------------------------------------------

    @property
    def config(self) -> FleetConfig:
        return self.fleet.config

    @property
    def campaign_journeys(self) -> List[JourneyOutcome]:
        """Journeys whose *only* attack is the campaign's.

        A campaign journey that also crossed a resident malicious host
        cannot have its verdicts attributed to the campaign scenario
        (the resident attack may be the one that alarmed), so mixed
        journeys fall under :attr:`host_attacked_journeys` instead.
        """
        return [
            o for o in self.fleet.campaign_journeys
            if not o.malicious_visited
        ]

    @property
    def benign_journeys(self) -> List[JourneyOutcome]:
        """Journeys with neither campaign nor resident-host attacks."""
        return self.fleet.honest_journeys

    @property
    def host_attacked_journeys(self) -> List[JourneyOutcome]:
        """Journeys that met resident malicious hosts at all.

        Outside campaign ground truth (the campaign substream did not
        place those attacks, and for mixed journeys it cannot tell the
        verdicts apart), so they are excluded from campaign metrics and
        surfaced as a count instead.
        """
        return [o for o in self.fleet.outcomes if o.malicious_visited]

    def _expected(self, outcome: JourneyOutcome) -> bool:
        assert outcome.attack_scenario is not None
        return _scenario_expectation(self.config, outcome.attack_scenario)

    # -- campaign-wide metrics ---------------------------------------------------

    @property
    def true_positives(self) -> int:
        """Expected-detectable campaign attacks that were flagged."""
        return sum(
            1 for o in self.campaign_journeys
            if self._expected(o) and o.detected
        )

    @property
    def false_negatives(self) -> int:
        """Expected-detectable campaign attacks that were missed."""
        return sum(
            1 for o in self.campaign_journeys
            if self._expected(o) and not o.detected
        )

    @property
    def false_positives(self) -> int:
        """Benign journeys that were flagged anyway."""
        return sum(1 for o in self.benign_journeys if o.detected)

    @property
    def undetectable_flagged(self) -> int:
        """Conceded-undetectable campaign attacks that still alarmed."""
        return sum(
            1 for o in self.campaign_journeys
            if not self._expected(o) and o.detected
        )

    @property
    def recall(self) -> float:
        """Flagged fraction of expected-detectable campaign attacks."""
        expected = self.true_positives + self.false_negatives
        if expected == 0:
            return 1.0
        return self.true_positives / expected

    @property
    def precision(self) -> float:
        """Attacked fraction of all alarms in the campaign population."""
        flagged_attacked = sum(1 for o in self.campaign_journeys if o.detected)
        flagged = flagged_attacked + self.false_positives
        if flagged == 0:
            return 1.0
        return flagged_attacked / flagged

    @property
    def false_positive_rate(self) -> float:
        """Flagged fraction of the benign population."""
        benign = self.benign_journeys
        if not benign:
            return 0.0
        return self.false_positives / len(benign)

    # -- breakdowns ----------------------------------------------------------------

    def per_scenario(self) -> Dict[str, ScenarioStats]:
        """Detection metrics per campaign scenario, keyed by name."""
        benign = self.benign_journeys
        benign_flagged = self.false_positives
        grouped: Dict[str, List[JourneyOutcome]] = {}
        for outcome in self.campaign_journeys:
            grouped.setdefault(outcome.attack_scenario, []).append(outcome)

        stats: Dict[str, ScenarioStats] = {}
        for name in sorted(grouped):
            outcomes = grouped[name]
            descriptor = scenario_by_name(name).describe("campaign")
            hops = [
                float(o.hops_to_detection) for o in outcomes
                if o.detected and o.hops_to_detection is not None
            ]
            times = [
                o.time_to_detection for o in outcomes
                if o.detected and o.time_to_detection is not None
            ]
            stats[name] = ScenarioStats(
                scenario=name,
                area=descriptor.area,
                detectability=descriptor.area.detectability,
                expected_detected=_scenario_expectation(self.config, name),
                injected=len(outcomes),
                detected=sum(1 for o in outcomes if o.detected),
                benign_flagged=benign_flagged,
                benign_journeys=len(benign),
                mean_hops_to_detection=_mean(hops),
                mean_time_to_detection=_mean(times),
            )
        return stats

    def detection_report(self) -> DetectionReport:
        """Per-journey ground truth vs. verdicts as a DetectionReport.

        Campaign journeys carry a descriptor of their attack; benign
        journeys become honest-run outcomes.  Host-attacked journeys
        are outside campaign ground truth and are omitted.
        """
        mechanism = _mechanism_name(self.config)
        report = DetectionReport()
        for outcome in self.fleet.outcomes:
            if outcome.malicious_visited:
                continue
            if outcome.attack_scenario is not None:
                target = outcome.itinerary[outcome.attack_hop]
                descriptor = scenario_by_name(
                    outcome.attack_scenario
                ).describe(target)
                report.add(DetectionOutcome(
                    mechanism=mechanism,
                    attack=descriptor,
                    detected=outcome.detected,
                    blamed_hosts=outcome.blamed_hosts,
                    expected_detection=self._expected(outcome),
                ))
            elif not outcome.attacked:
                report.add(DetectionOutcome(
                    mechanism=mechanism,
                    attack=None,
                    detected=outcome.detected,
                    blamed_hosts=outcome.blamed_hosts,
                    expected_detection=False,
                ))
        return report

    def detectability_matrix(self) -> Dict[str, Dict[str, Any]]:
        """Detection rates bucketed by expected detectability class.

        The campaign analogue of the paper's Section 4 discussion: one
        row per :class:`~repro.attacks.model.Detectability` class that
        occurred, with the Figure-2 areas it covers and the observed
        detection rate.
        """
        report = self.detection_report()
        by_class = report.by_detectability()
        by_area = report.by_area()
        class_areas = areas_by_detectability()
        matrix: Dict[str, Dict[str, Any]] = {}
        for detectability in Detectability:
            counts = by_class.get(detectability)
            if counts is None:
                continue
            areas = sorted(
                area.value for area in by_area
                if area in class_areas[detectability]
            )
            matrix[detectability.value] = {
                "areas": areas,
                "mounted": counts["mounted"],
                "detected": counts["detected"],
                "expected_detections": counts["expected"],
                "detection_rate": (
                    counts["detected"] / counts["mounted"]
                    if counts["mounted"] else None
                ),
            }
        return matrix

    # -- reporting ---------------------------------------------------------------

    def deterministic_signature(self) -> str:
        """Signature of the underlying fleet run (campaign fields included)."""
        return self.fleet.deterministic_signature()

    def summary(self) -> Dict[str, Any]:
        """Compact JSON-ready campaign report (bench section, CI gate)."""
        scenario_stats = self.per_scenario()
        per_scenario = {
            name: stats.to_dict() for name, stats in scenario_stats.items()
        }
        always = [
            stats for stats in scenario_stats.values()
            if stats.expected_detected and stats.injected > 0
        ]
        always_recall = min(
            (s.recall for s in always if s.recall is not None),
            default=1.0,
        )
        return {
            "journeys": self.fleet.journeys,
            "campaign_attacked": len(self.campaign_journeys),
            "benign_journeys": len(self.benign_journeys),
            "host_attacked_excluded": len(self.host_attacked_journeys),
            "attack_fraction": self.config.attack_fraction,
            "precision": self.precision,
            "recall": self.recall,
            "false_positive_rate": self.false_positive_rate,
            "true_positives": self.true_positives,
            "false_negatives": self.false_negatives,
            "false_positives": self.false_positives,
            "undetectable_flagged": self.undetectable_flagged,
            "always_detectable_recall": always_recall,
            "per_scenario": per_scenario,
            "detectability_matrix": self.detectability_matrix(),
        }


def analyze_campaign(result: FleetResult) -> CampaignResult:
    """Wrap a finished fleet run in the campaign detection-quality view."""
    return CampaignResult(fleet=result)


def run_campaign(
    config: FleetConfig,
    workers: int = 1,
    num_shards: Optional[int] = None,
    start_method: Optional[str] = None,
    pool: Optional[Any] = None,
) -> CampaignResult:
    """Run an adversarial fleet and return its campaign analysis.

    A thin layer over :func:`repro.sim.shard.run_fleet`: campaign
    assignment rides in the configuration, so the sharded execution
    path needs no campaign-specific plumbing and the merged run is
    bit-identical to the single-process one.  ``pool`` optionally names
    a persistent :class:`~repro.sim.shard.FleetWorkerPool` to reuse.
    """
    kwargs: Dict[str, Any] = {}
    if start_method is not None:
        kwargs["start_method"] = start_method
    if pool is not None:
        kwargs["pool"] = pool
    result = run_fleet(
        config, workers=workers, num_shards=num_shards, **kwargs
    )
    return analyze_campaign(result)


def detection_report_from_trace(
    events: Iterable[Dict[str, Any]],
) -> DetectionReport:
    """Rebuild the campaign :class:`DetectionReport` from a JSONL trace.

    Uses only what the trace records: ``attack`` events carry the
    ground truth (scenario, strike hop, target host, expectation),
    ``complete`` events carry the verdicts.  The result equals
    :meth:`CampaignResult.detection_report` of the live run — the
    round-trip the trace tests pin down.  Journeys attacked by resident
    malicious hosts (``malicious_visited`` on their ``complete`` event)
    are omitted, mirroring the live analysis.
    """
    ordered = list(events)
    protected = True
    for event in ordered:
        if event.get("event") == "fleet":
            protected = bool(
                event.get("config", {}).get("protected", True)
            )
            break
    mechanism = _PROTECTED_MECHANISM if protected else _UNPROTECTED_MECHANISM
    attacks = attack_events(ordered)
    report = DetectionReport()
    for event in ordered:
        if event.get("event") != "complete":
            continue
        if event.get("malicious_visited"):
            # Resident-host attacks (mixed ones included) are outside
            # campaign ground truth — mirror the live analysis.
            continue
        journey = event.get("journey")
        detected = bool(event.get("detected"))
        blamed = tuple(event.get("blamed", ()))
        attack = attacks.get(journey)
        if attack is not None:
            descriptor = scenario_by_name(attack["scenario"]).describe(
                attack["target"]
            )
            report.add(DetectionOutcome(
                mechanism=mechanism,
                attack=descriptor,
                detected=detected,
                blamed_hosts=blamed,
                expected_detection=bool(attack.get("expected")),
            ))
        else:
            report.add(DetectionOutcome(
                mechanism=mechanism,
                attack=None,
                detected=detected,
                blamed_hosts=blamed,
                expected_detection=False,
            ))
    return report

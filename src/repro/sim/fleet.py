"""Discrete-event fleet simulation: thousands of concurrent journeys.

The single-journey driver (:class:`~repro.platform.registry.AgentSystem`)
runs one agent start-to-finish.  Production-scale questions — aggregate
detection rates under a population of malicious hosts, per-phase latency
under load, the payoff of batched signature verification — need many
journeys *interleaved*, the way a real agent platform would see them.

:class:`FleetEngine` provides that: journeys arrive on a virtual
timeline (exponential inter-arrival gaps), every hop of every journey is
an event on a :class:`~repro.net.simulator.EventSimulator` heap, and
migration latency is derived from the actual wire size of each transfer.
A tunable fraction of hosts is malicious, each mounting one scenario
from the standard attack catalogue; journeys run the paper's
reference-state protocol (or unprotected, for baselines) and the engine
aggregates everything into a :class:`FleetResult`.

Determinism is a design requirement, not an accident: the same
:class:`FleetConfig` (same seed) produces bit-identical journey
outcomes, virtual timestamps, and JSONL traces on any machine.  All
randomness flows from named substreams derived from the master seed
(:func:`derive_substream`): one stream decides the topology, one stream
decides the arrival timeline, and every journey owns a private stream
for its workload and itinerary draws.  Because no draw of one journey
ever consumes randomness from another journey's stream, the fleet is
*shard-decomposable*: running any subset of the agent-index range
(:mod:`repro.sim.shard`) reproduces exactly the journeys of that subset,
and the merge of all shards is bit-identical to the full run.
Wall-clock measurements are kept strictly out of the deterministic
surface (they are reported separately).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.agents.itinerary import Itinerary
from repro.attacks.scenarios import AttackScenario, scenario_by_name
from repro.crypto.batch import BatchedTransferVerifier, VerificationCache
from repro.crypto.canonical import canonical_encode
from repro.crypto.keys import KeyStore
from repro.exceptions import ConfigurationError
from repro.net.network import UniformLatency
from repro.net.simulator import EventSimulator
from repro.obs import new_registry
from repro.platform.host import Host
from repro.platform.malicious import MaliciousHost
from repro.platform.registry import (
    AgentSystem,
    HostRegistry,
    JourneyRunner,
    verdict_is_attack,
)
from repro.platform.resources import PriceQuoteService
from repro.sim.trace import TraceWriter
from repro.workloads.shopping import QUOTE_SERVICE, ShoppingAgent
from repro.workloads.survey import SURVEY_MAILBOX, SurveyAgent

__all__ = [
    "FleetConfig",
    "JourneyAttack",
    "JourneyOutcome",
    "FleetResult",
    "FleetEngine",
    "derive_substream",
    "fleet_host_names",
    "journey_arrival_times",
    "journey_id_for_index",
    "plan_journey_attack",
]


def journey_id_for_index(index: int) -> str:
    """The deterministic journey id of the ``index``-th journey.

    Journey ids are a pure function of position — the property that
    lets a supervisor map a crashed unit's ``[agent_start, agent_stop)``
    range back to the trace events it must scrub before re-executing
    the unit.
    """
    return "j%05d" % index


def fleet_host_names(config: "FleetConfig") -> List[str]:
    """Every host name a fleet run will create, home first.

    A pure function of the configuration, so worker-pool initializers
    can pre-generate the deterministic host identities (key pairs derive
    from names alone) before any shard starts executing.
    """
    return ["home"] + [
        "host-%03d" % index for index in range(1, config.num_hosts + 1)
    ]


def derive_substream(seed: int, *labels: Any) -> int:
    """Derive an independent RNG seed from the master seed and a label path.

    Substreams make the fleet's randomness *positional* rather than
    sequential: the topology, the arrival timeline, and every journey
    each own a named stream, so computing any one of them never requires
    replaying the draws of the others.  This is the property that lets
    :mod:`repro.sim.shard` execute disjoint agent ranges in separate
    processes and still merge to a bit-identical result.
    """
    material = "|".join([str(seed)] + [str(label) for label in labels])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def journey_arrival_times(config: "FleetConfig") -> List[float]:
    """Absolute virtual launch times for every journey of the run.

    The gaps are exponential (Poisson arrivals) and drawn from the
    dedicated ``arrivals`` substream in journey-index order, so a shard
    covering ``[start, stop)`` recomputes the identical prefix sums the
    full run uses — the arrival timeline is a pure function of the
    configuration.
    """
    rng = Random(derive_substream(config.seed, "arrivals"))
    arrivals: List[float] = []
    now = 0.0
    for _ in range(config.num_agents):
        now += rng.expovariate(config.arrival_rate)
        arrivals.append(now)
    return arrivals


@dataclass(frozen=True)
class JourneyAttack:
    """Campaign ground truth for one journey: what strikes, and where.

    Attributes
    ----------
    scenario:
        Name of the standard-catalogue scenario mounted on the journey.
    hop:
        Itinerary hop index (1-based service hop) at which the injector
        strikes.
    """

    scenario: str
    hop: int


def plan_journey_attack(config: "FleetConfig",
                        index: int) -> Optional[JourneyAttack]:
    """Deterministic campaign assignment for journey ``index``.

    A pure function of ``(config, index)``: all draws come from the
    dedicated ``("campaign", index)`` substream, never from the journey's
    own stream.  This isolation is load-bearing twice over — benign
    journeys are bit-identical between a 0%-attack and a 30%-attack
    campaign of the same seed, and any shard recomputes exactly the
    assignments of its journey range.
    """
    if config.attack_fraction <= 0.0 or not config.journey_scenarios:
        return None
    rng = Random(derive_substream(config.seed, "campaign", index))
    if rng.random() >= config.attack_fraction:
        return None
    scenario = config.journey_scenarios[
        rng.randrange(len(config.journey_scenarios))
    ]
    hop = rng.randrange(1, config.hops_per_journey + 1)
    return JourneyAttack(scenario=scenario, hop=hop)


@dataclass(frozen=True)
class FleetConfig:
    """Parameters of one fleet simulation run.

    Attributes
    ----------
    num_agents:
        Number of journeys to launch.
    num_hosts:
        Number of (untrusted) service hosts besides the trusted home.
    hops_per_journey:
        Service hosts each journey visits (between leaving home and
        returning to it).
    malicious_host_fraction:
        Fraction of service hosts that mount an attack; rounded to the
        nearest whole host.
    attack_scenarios:
        Names from the standard attack catalogue, assigned to malicious
        hosts round-robin.
    workload_mix:
        ``(workload, weight)`` pairs; supported workloads are
        ``"shopping"`` and ``"survey"``.
    protected:
        Run the reference-state protocol (``True``) or plain agents.
    seed:
        Master seed for all randomness in the run.
    arrival_rate:
        Mean journey launches per virtual second.
    base_latency / latency_per_byte:
        Migration latency model (virtual seconds).
    session_service_time:
        Fixed virtual service time charged per hop.
    batched_verification:
        Verify whole-transfer signatures through the deferred batch
        path instead of eagerly at each migration.
    verification_batch_size:
        Queue length that triggers a batch settlement.
    trace_path:
        Optional file the JSONL trace is written to after the run.
    attack_fraction:
        Campaign layer: fraction of *journeys* that carry a
        journey-resident attack (an injector mounted at one hop of the
        itinerary, independent of the host population).  Assignment
        draws from the dedicated ``("campaign", index)`` substream, so
        turning a campaign on or off never shifts any benign journey's
        randomness, and sharded campaign runs stay bit-identical to
        single-process ones.
    journey_scenarios:
        Names from the standard attack catalogue the campaign draws
        from; required (non-empty) whenever ``attack_fraction`` > 0.
    """

    num_agents: int = 1000
    num_hosts: int = 25
    hops_per_journey: int = 4
    malicious_host_fraction: float = 0.2
    attack_scenarios: Tuple[str, ...] = (
        "tamper-result-variable",
        "incorrect-execution",
        "drop-input-records",
    )
    workload_mix: Tuple[Tuple[str, float], ...] = (
        ("shopping", 0.7),
        ("survey", 0.3),
    )
    protected: bool = True
    seed: int = 0
    arrival_rate: float = 100.0
    base_latency: float = 0.005
    latency_per_byte: float = 1e-7
    session_service_time: float = 0.002
    batched_verification: bool = False
    verification_batch_size: int = 64
    trace_path: Optional[str] = None
    attack_fraction: float = 0.0
    journey_scenarios: Tuple[str, ...] = ()

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.num_agents < 1:
            raise ConfigurationError("num_agents must be positive")
        if self.num_hosts < 1:
            raise ConfigurationError("num_hosts must be positive")
        if not 1 <= self.hops_per_journey <= self.num_hosts:
            raise ConfigurationError(
                "hops_per_journey must be between 1 and num_hosts"
            )
        if not 0.0 <= self.malicious_host_fraction <= 1.0:
            raise ConfigurationError(
                "malicious_host_fraction must be within [0, 1]"
            )
        if self.arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive")
        if not self.workload_mix or all(w <= 0 for _, w in self.workload_mix):
            raise ConfigurationError("workload_mix needs a positive weight")
        for workload, _ in self.workload_mix:
            if workload not in ("shopping", "survey"):
                raise ConfigurationError("unknown workload %r" % workload)
        for name in self.attack_scenarios:
            scenario_by_name(name)  # raises KeyError on unknown names
        if not 0.0 <= self.attack_fraction <= 1.0:
            raise ConfigurationError(
                "attack_fraction must be within [0, 1]"
            )
        if self.attack_fraction > 0.0 and not self.journey_scenarios:
            raise ConfigurationError(
                "attack_fraction > 0 requires journey_scenarios"
            )
        for name in self.journey_scenarios:
            scenario_by_name(name)  # raises KeyError on unknown names

    def to_canonical(self) -> Dict[str, Any]:
        return {
            "num_agents": self.num_agents,
            "num_hosts": self.num_hosts,
            "hops_per_journey": self.hops_per_journey,
            "malicious_host_fraction": self.malicious_host_fraction,
            "attack_scenarios": list(self.attack_scenarios),
            "workload_mix": [list(pair) for pair in self.workload_mix],
            "protected": self.protected,
            "seed": self.seed,
            "arrival_rate": self.arrival_rate,
            "base_latency": self.base_latency,
            "latency_per_byte": self.latency_per_byte,
            "session_service_time": self.session_service_time,
            "batched_verification": self.batched_verification,
            "attack_fraction": self.attack_fraction,
            "journey_scenarios": list(self.journey_scenarios),
        }


@dataclass
class JourneyOutcome:
    """Everything the fleet engine recorded about one finished journey."""

    journey_id: str
    workload: str
    itinerary: Tuple[str, ...]
    malicious_visited: Tuple[str, ...]
    scenarios: Tuple[str, ...]
    expected_detected: bool
    detected: bool
    blamed_hosts: Tuple[str, ...]
    hops: int
    wire_bytes: int
    launched_at: float
    completed_at: float
    #: Campaign ground truth: the journey-resident attack, if any.
    attack_scenario: Optional[str] = None
    attack_hop: Optional[int] = None
    #: First hop index / virtual time at which an attack verdict fired
    #: (``None`` when the journey never alarmed).
    detected_at_hop: Optional[int] = None
    detected_at: Optional[float] = None
    #: Wall-clock phase costs (not part of the deterministic surface).
    check_seconds: float = 0.0
    session_seconds: float = 0.0
    migrate_seconds: float = 0.0

    @property
    def virtual_duration(self) -> float:
        """Journey latency on the virtual timeline."""
        return self.completed_at - self.launched_at

    @property
    def attacked(self) -> bool:
        """Whether the journey met a malicious host or a campaign attack."""
        return bool(self.malicious_visited) or self.attack_scenario is not None

    @property
    def attacker_hosts(self) -> Tuple[str, ...]:
        """Hosts that attacked this journey (resident and campaign)."""
        attackers = list(self.malicious_visited)
        if self.attack_hop is not None:
            target = self.itinerary[self.attack_hop]
            if target not in attackers:
                attackers.append(target)
        return tuple(attackers)

    @property
    def hops_to_detection(self) -> Optional[int]:
        """Hops between the campaign attack and its first verdict."""
        if self.attack_hop is None or self.detected_at_hop is None:
            return None
        return self.detected_at_hop - self.attack_hop

    @property
    def time_to_detection(self) -> Optional[float]:
        """Virtual seconds from launch to the first attack verdict."""
        if self.detected_at is None:
            return None
        return self.detected_at - self.launched_at

    def to_canonical(self) -> Dict[str, Any]:
        """Deterministic fields only — wall timings are excluded."""
        return {
            "journey_id": self.journey_id,
            "workload": self.workload,
            "itinerary": list(self.itinerary),
            "malicious_visited": list(self.malicious_visited),
            "scenarios": list(self.scenarios),
            "expected_detected": self.expected_detected,
            "detected": self.detected,
            "blamed_hosts": list(self.blamed_hosts),
            "hops": self.hops,
            "wire_bytes": self.wire_bytes,
            "launched_at": self.launched_at,
            "completed_at": self.completed_at,
            "attack_scenario": self.attack_scenario,
            "attack_hop": self.attack_hop,
            "detected_at_hop": self.detected_at_hop,
            "detected_at": self.detected_at,
        }


@dataclass
class FleetResult:
    """Aggregate outcome of a fleet run."""

    config: FleetConfig
    outcomes: List[JourneyOutcome]
    malicious_hosts: Dict[str, str]
    virtual_makespan: float
    events_processed: int
    wall_seconds: float
    verifier_stats: Optional[Dict[str, Any]] = None
    deferred_signature_failures: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-shard execution metadata when the result came out of
    #: :func:`repro.sim.shard.run_fleet` (wall times, ranges, workers).
    #: Not part of the deterministic surface.
    shards: Optional[List[Dict[str, Any]]] = None
    #: Per-worker scheduling diagnostics from the work-stealing pool
    #: (units executed, warmup/compute/serialize split, coordinator
    #: merge time).  Wall-clock only — never part of the deterministic
    #: surface.
    worker_report: Optional[Dict[str, Any]] = None

    # -- population slices -------------------------------------------------------

    @property
    def journeys(self) -> int:
        return len(self.outcomes)

    @property
    def attacked_journeys(self) -> List[JourneyOutcome]:
        """Journeys that visited at least one malicious host."""
        return [outcome for outcome in self.outcomes if outcome.attacked]

    @property
    def honest_journeys(self) -> List[JourneyOutcome]:
        """Journeys that met neither malicious hosts nor campaign attacks."""
        return [outcome for outcome in self.outcomes if not outcome.attacked]

    @property
    def campaign_journeys(self) -> List[JourneyOutcome]:
        """Journeys that carried a journey-resident campaign attack."""
        return [o for o in self.outcomes if o.attack_scenario is not None]

    # -- detection metrics -------------------------------------------------------

    @property
    def detection_rate(self) -> float:
        """Detected fraction of journeys the paper expects to be caught."""
        expected = [o for o in self.outcomes if o.expected_detected]
        if not expected:
            return 1.0
        return sum(1 for o in expected if o.detected) / len(expected)

    @property
    def false_positives(self) -> int:
        """Honest journeys that were flagged anyway."""
        return sum(1 for o in self.honest_journeys if o.detected)

    @property
    def false_positive_rate(self) -> float:
        honest = self.honest_journeys
        if not honest:
            return 0.0
        return self.false_positives / len(honest)

    @property
    def undetectable_flagged(self) -> int:
        """Attacked-but-undetectable journeys that were flagged.

        Nonzero values mean a scenario the paper concedes (read attacks,
        input lying, ...) somehow triggered a verdict — which would be a
        reproduction bug, so the metric is surfaced rather than folded
        into the false-positive count.
        """
        return sum(
            1 for o in self.attacked_journeys
            if not o.expected_detected and o.detected
        )

    @property
    def blame_accuracy(self) -> float:
        """Fraction of correct detections that blame a visited attacker."""
        detected = [o for o in self.outcomes if o.expected_detected and o.detected]
        if not detected:
            return 1.0
        correct = sum(
            1 for o in detected
            if set(o.blamed_hosts) & set(o.attacker_hosts)
        )
        return correct / len(detected)

    # -- latency / throughput ----------------------------------------------------

    @property
    def virtual_throughput(self) -> float:
        """Completed journeys per virtual second."""
        if self.virtual_makespan <= 0:
            return 0.0
        return self.journeys / self.virtual_makespan

    def per_phase_seconds(self) -> Dict[str, float]:
        """Total wall-clock compute cost by phase across the fleet."""
        return {
            "check": sum(o.check_seconds for o in self.outcomes),
            "session": sum(o.session_seconds for o in self.outcomes),
            "migrate": sum(o.migrate_seconds for o in self.outcomes),
        }

    def mean_journey_latency(self) -> float:
        """Mean virtual latency from launch to completion."""
        if not self.outcomes:
            return 0.0
        return sum(o.virtual_duration for o in self.outcomes) / len(self.outcomes)

    # -- reporting ---------------------------------------------------------------

    def deterministic_signature(self) -> str:
        """Content hash of everything that must be seed-reproducible."""
        payload = {
            "config": self.config.to_canonical(),
            "outcomes": [o.to_canonical() for o in self.outcomes],
            "malicious_hosts": dict(self.malicious_hosts),
            "virtual_makespan": self.virtual_makespan,
            "events_processed": self.events_processed,
        }
        return hashlib.sha256(canonical_encode(payload)).hexdigest()

    def summary(self) -> Dict[str, Any]:
        """Compact human-facing metrics of the run."""
        phases = self.per_phase_seconds()
        return {
            "journeys": self.journeys,
            "attacked_journeys": len(self.attacked_journeys),
            "campaign_attacked": len(self.campaign_journeys),
            "honest_journeys": len(self.honest_journeys),
            "detection_rate": self.detection_rate,
            "false_positives": self.false_positives,
            "undetectable_flagged": self.undetectable_flagged,
            "blame_accuracy": self.blame_accuracy,
            "virtual_makespan": round(self.virtual_makespan, 6),
            "virtual_throughput": round(self.virtual_throughput, 3),
            "mean_journey_latency": round(self.mean_journey_latency(), 6),
            "events_processed": self.events_processed,
            "wall_seconds": round(self.wall_seconds, 3),
            "phase_seconds": {k: round(v, 3) for k, v in phases.items()},
            "deferred_signature_failures": len(self.deferred_signature_failures),
        }


@dataclass
class _Journey:
    """Mutable per-journey bookkeeping inside the engine."""

    journey_id: str
    workload: str
    itinerary: List[str]
    runner: JourneyRunner
    malicious_visited: Tuple[str, ...]
    scenarios: Tuple[str, ...]
    expected_detected: bool
    attack: Optional[JourneyAttack] = None
    launched_at: float = 0.0
    detected_at_hop: Optional[int] = None
    detected_at: Optional[float] = None
    check_seconds: float = 0.0
    session_seconds: float = 0.0
    migrate_seconds: float = 0.0


class FleetEngine:
    """Runs one fleet simulation described by a :class:`FleetConfig`.

    Parameters
    ----------
    config:
        The run description.
    agent_start / agent_stop:
        Journey-index range ``[agent_start, agent_stop)`` this engine
        executes.  Defaults to the whole fleet; :mod:`repro.sim.shard`
        passes disjoint sub-ranges.  Journey identities, randomness, and
        virtual timestamps are global — a partial engine reproduces
        exactly the journeys of its range, bit for bit.
    shard_index / num_shards:
        Position of this engine in a sharded run (recorded in the trace
        header and used to derive the batch-verifier substream).
    """

    def __init__(
        self,
        config: FleetConfig,
        agent_start: int = 0,
        agent_stop: Optional[int] = None,
        shard_index: int = 0,
        num_shards: int = 1,
    ) -> None:
        config.validate()
        stop = config.num_agents if agent_stop is None else agent_stop
        if not 0 <= agent_start <= stop <= config.num_agents:
            raise ConfigurationError(
                "agent range [%d, %d) must lie within [0, %d)"
                % (agent_start, stop, config.num_agents)
            )
        if not 0 <= shard_index < num_shards:
            raise ConfigurationError(
                "shard_index %d outside [0, %d)" % (shard_index, num_shards)
            )
        self.config = config
        self.agent_start = agent_start
        self.agent_stop = stop
        self.shard_index = shard_index
        self.num_shards = num_shards
        self.trace = TraceWriter()
        self._topology_rng = Random(derive_substream(config.seed, "topology"))
        self._simulator = EventSimulator()
        self._registry = HostRegistry()
        self._keystore = KeyStore()
        self._latency = UniformLatency(
            base_seconds=config.base_latency,
            seconds_per_byte=config.latency_per_byte,
        )
        self._protocol = None
        self._transfer_verifier: Optional[BatchedTransferVerifier] = None
        self._outcomes: List[JourneyOutcome] = []
        self._malicious: Dict[str, str] = {}
        self._host_names: List[str] = []
        #: Side-band telemetry (repro.obs).  Never feeds the
        #: deterministic surface; with observability disabled this is
        #: the shared null registry and the instruments below are
        #: no-ops.  Instruments are cached here because _hop runs once
        #: per hop of every journey — the hot path pays attribute
        #: access plus an observe, never a dict lookup.
        self.metrics = new_registry()
        self._m_hops = self.metrics.counter("fleet.hops")
        self._m_journeys = self.metrics.counter("fleet.journeys")
        self._m_detections = self.metrics.counter("fleet.detections")
        self._m_hop_seconds = self.metrics.histogram("fleet.hop.seconds")
        self._m_check_seconds = self.metrics.histogram("fleet.check.seconds")
        self._m_journey_hops = self.metrics.histogram("fleet.journey.hops")

    # -- public API --------------------------------------------------------------

    def run(self) -> FleetResult:
        """Execute the configured fleet and return the aggregate result."""
        started = time.perf_counter()
        self._build_topology()
        system = AgentSystem(self._registry, sign_transfers=True)
        if self.config.protected:
            self._protocol = self._build_protocol(system)
        if self.config.batched_verification:
            self._transfer_verifier = self._build_transfer_verifier()

        header: Dict[str, Any] = {"config": self.config.to_canonical()}
        if self.num_shards > 1:
            header["shard"] = {
                "index": self.shard_index,
                "of": self.num_shards,
                "agent_start": self.agent_start,
                "agent_stop": self.agent_stop,
            }
        self.trace.emit("fleet", **header)
        journeys = self._build_journeys(system)
        self._schedule_launches(journeys)
        self._simulator.run()

        deferred: List[Dict[str, Any]] = []
        verifier_stats: Optional[Dict[str, Any]] = None
        if self._transfer_verifier is not None:
            self._transfer_verifier.flush()
            deferred = list(self._transfer_verifier.deferred_failures)
            verifier_stats = self._transfer_verifier.stats()

        # Canonical outcome order: completion time, journey id.  Heap
        # tie-breaking between different journeys depends on global
        # schedule sequence numbers, which a sharded run cannot
        # reconstruct — so the result order is made content-addressed
        # here, identically for full and sharded runs.
        self._outcomes.sort(key=lambda o: (o.completed_at, o.journey_id))
        result = FleetResult(
            config=self.config,
            outcomes=self._outcomes,
            malicious_hosts=dict(self._malicious),
            virtual_makespan=self._simulator.clock.now(),
            events_processed=self._simulator.processed,
            wall_seconds=time.perf_counter() - started,
            verifier_stats=verifier_stats,
            deferred_signature_failures=deferred,
        )
        if self.config.trace_path:
            self.trace.write(self.config.trace_path, canonical_order=True)
        return result

    # -- setup -------------------------------------------------------------------

    def _build_protocol(self, system: AgentSystem):
        """Build the journey protection protocol (override hook).

        :mod:`repro.sim.requests` subclasses the engine and wraps the
        protocol with a recording variant that captures session-check
        payloads for the verification service; keeping construction in
        a factory method makes that possible without copying ``run``.
        """
        from repro.core.protocol import ReferenceStateProtocol

        return ReferenceStateProtocol(
            code_registry=system.code_registry,
            trusted_hosts=("home",),
        )

    def _build_transfer_verifier(self) -> BatchedTransferVerifier:
        """Build the batched transfer verifier (override hook)."""
        return BatchedTransferVerifier(
            self._keystore,
            batch_size=self.config.verification_batch_size,
            rng=Random(derive_substream(
                self.config.seed, "batch", self.shard_index
            )),
            cache=VerificationCache(),
        )

    def _build_topology(self) -> None:
        """Create the home host plus the service-host population."""
        config = self.config
        home = Host("home", keystore=self._keystore, trusted=True)
        home.add_service(PriceQuoteService(QUOTE_SERVICE, "home", catalog={
            "flight": None,
        }))
        self._registry.add(home)

        self._host_names = fleet_host_names(config)[1:]
        malicious_count = int(round(
            config.malicious_host_fraction * config.num_hosts
        ))
        malicious_names = (
            self._topology_rng.sample(self._host_names, malicious_count)
            if malicious_count else []
        )
        scenarios: Dict[str, AttackScenario] = {}
        for index, name in enumerate(sorted(malicious_names)):
            scenario_name = config.attack_scenarios[
                index % len(config.attack_scenarios)
            ] if config.attack_scenarios else None
            if scenario_name is None:
                continue
            # Tampering hosts each plant a host-specific variable ("a
            # value favourable to the host"); two hosts overwriting the
            # same variable with the same value would make the second
            # tamper a no-op — an attack with no state change, which no
            # state-comparison scheme can (or needs to) detect.
            scenarios[name] = scenario_by_name(
                scenario_name, tamper_variable="tampered_by_%s" % name
            )
            self._malicious[name] = scenario_name

        for name in self._host_names:
            if name in scenarios:
                host: Host = MaliciousHost(
                    name,
                    keystore=self._keystore,
                    trusted=False,
                    injectors=[scenarios[name].build()],
                )
            else:
                host = Host(name, keystore=self._keystore, trusted=False)
            host.add_service(PriceQuoteService(QUOTE_SERVICE, name))
            host.set_host_data("survey_participant", True)
            self._registry.add(host)

    def _build_journeys(self, system: AgentSystem) -> List[_Journey]:
        """Sample itineraries, workloads, and agents for this engine's range.

        Every journey draws from its own ``("journey", index)`` substream,
        so journey ``index`` looks identical no matter which other
        journeys run alongside it — the property shard merging relies on.
        """
        config = self.config
        workloads, weights = zip(*config.workload_mix)
        journeys: List[_Journey] = []
        survey_visits: Dict[str, int] = {}

        # Campaign scenarios are invariant across journeys (the tamper
        # variable is one no honest execution produces — an attack that
        # changes nothing is not an attack the paper's scheme needs to
        # see), so the parameterized catalogue is built once, not per
        # attacked journey.
        campaign_scenarios = {
            name: scenario_by_name(
                name,
                tamper_variable="tampered_by_campaign",
                tamper_value="campaign-marker",
            )
            for name in config.journey_scenarios
        }

        for index in range(self.agent_start, self.agent_stop):
            journey_id = journey_id_for_index(index)
            journey_rng = Random(derive_substream(config.seed, "journey", index))
            workload = journey_rng.choices(workloads, weights=weights, k=1)[0]
            visited = journey_rng.sample(self._host_names, config.hops_per_journey)
            route = ["home"] + visited + ["home"]
            if workload == "shopping":
                agent: Any = ShoppingAgent(
                    {"products": ["flight"], "budget": 1000.0},
                    owner="fleet-owner",
                    agent_id="fleet/%s" % journey_id,
                )
            else:
                agent = SurveyAgent(
                    owner="fleet-owner",
                    agent_id="fleet/%s" % journey_id,
                )
                for host_name in visited:
                    survey_visits[host_name] = survey_visits.get(host_name, 0) + 1

            malicious_visited = tuple(
                name for name in visited if name in self._malicious
            )
            scenario_names = tuple(
                self._malicious[name] for name in malicious_visited
            )
            expected = bool(config.protected) and any(
                scenario_by_name(name).expected_detected
                for name in scenario_names
            )

            # Journey-resident campaign attack: assignment comes from the
            # dedicated campaign substream (plan_journey_attack), so the
            # journey stream above is never perturbed by it.
            attack = plan_journey_attack(config, index)
            hop_injectors = None
            if attack is not None:
                campaign_scenario = campaign_scenarios[attack.scenario]
                hop_injectors = {attack.hop: [campaign_scenario.build()]}
                expected = expected or (
                    bool(config.protected)
                    and campaign_scenario.expected_detected
                )

            runner = system.runner(
                agent,
                Itinerary(hosts=route),
                protection=self._protocol,
                transfer_verifier=self._transfer_verifier,
                hop_injectors=hop_injectors,
            )
            journeys.append(_Journey(
                journey_id=journey_id,
                workload=workload,
                itinerary=route,
                runner=runner,
                malicious_visited=malicious_visited,
                scenarios=scenario_names,
                expected_detected=expected,
                attack=attack,
            ))

        # Deposit exactly one survey answer per expected visit so the
        # mailbox never runs dry under interleaved consumption.  Values
        # are a deterministic function of the host index.
        for host_name, visits in sorted(survey_visits.items()):
            host = self._registry.get(host_name)
            host_index = int(host_name.split("-")[-1])
            value = float(2 + host_index % 9)
            for _ in range(visits):
                host.message_board.deposit(
                    sender="participant-%s" % host_name,
                    mailbox=SURVEY_MAILBOX,
                    body=value,
                )
        return journeys

    def _schedule_launches(self, journeys: Sequence[_Journey]) -> None:
        """Spread journey launches along the (global) virtual timeline.

        Arrival times come from :func:`journey_arrival_times`, which is a
        pure function of the configuration — a sharded engine schedules
        its journeys at the exact absolute timestamps the full run uses.
        """
        arrivals = journey_arrival_times(self.config)
        for offset, journey in enumerate(journeys):
            self._simulator.schedule_at(
                arrivals[self.agent_start + offset],
                lambda journey=journey: self._launch(journey),
            )

    # -- event handlers ----------------------------------------------------------

    def _launch(self, journey: _Journey) -> None:
        journey.launched_at = self._simulator.clock.now()
        journey.runner.start()
        self.trace.emit(
            "launch",
            ts=journey.launched_at,
            journey=journey.journey_id,
            agent=journey.runner.agent.agent_id,
            workload=journey.workload,
            itinerary=list(journey.itinerary),
        )
        if journey.attack is not None:
            # Ground truth goes into the trace up front: what strikes,
            # where, and whether the paper expects the scheme to see it.
            self.trace.emit(
                "attack",
                ts=journey.launched_at,
                journey=journey.journey_id,
                scenario=journey.attack.scenario,
                hop=journey.attack.hop,
                target=journey.itinerary[journey.attack.hop],
                expected=(
                    bool(self.config.protected)
                    and scenario_by_name(journey.attack.scenario).expected_detected
                ),
            )
        self._hop(journey)

    def _hop(self, journey: _Journey) -> None:
        if self._transfer_verifier is not None:
            self._transfer_verifier.bind(journey.journey_id)
        outcome = journey.runner.step()
        journey.check_seconds += outcome.check_seconds
        journey.session_seconds += outcome.session_seconds
        journey.migrate_seconds += outcome.migrate_seconds
        self._m_hops.inc()
        self._m_check_seconds.observe(outcome.check_seconds)
        self._m_hop_seconds.observe(
            outcome.check_seconds + outcome.session_seconds
            + outcome.migrate_seconds
        )

        if journey.detected_at is None and any(
            verdict_is_attack(verdict) for verdict in outcome.new_verdicts
        ):
            journey.detected_at_hop = outcome.hop_index
            journey.detected_at = self._simulator.clock.now()

        record = journey.runner.result.records[-1]
        self.trace.emit(
            "hop",
            ts=self._simulator.clock.now(),
            journey=journey.journey_id,
            host=outcome.host,
            hop_index=outcome.hop_index,
            wire_bytes=outcome.wire_bytes,
            verdicts=len(outcome.new_verdicts),
            execution_log=record.execution_log.to_canonical(),
        )

        if journey.runner.done:
            self._complete(journey)
        else:
            delay = (
                self.config.session_service_time
                + self._latency.latency(
                    outcome.host, "next", int(outcome.wire_bytes or 0)
                )
            )
            self._simulator.schedule(
                delay, lambda journey=journey: self._hop(journey)
            )

    def _complete(self, journey: _Journey) -> None:
        result = journey.runner.result
        completed_at = self._simulator.clock.now()
        outcome = JourneyOutcome(
            journey_id=journey.journey_id,
            workload=journey.workload,
            itinerary=tuple(journey.itinerary),
            malicious_visited=journey.malicious_visited,
            scenarios=journey.scenarios,
            expected_detected=journey.expected_detected,
            detected=result.detected_attack(),
            blamed_hosts=result.blamed_hosts(),
            hops=result.hops,
            wire_bytes=result.total_transfer_bytes,
            launched_at=journey.launched_at,
            completed_at=completed_at,
            attack_scenario=(
                journey.attack.scenario if journey.attack else None
            ),
            attack_hop=journey.attack.hop if journey.attack else None,
            detected_at_hop=journey.detected_at_hop,
            detected_at=journey.detected_at,
            check_seconds=journey.check_seconds,
            session_seconds=journey.session_seconds,
            migrate_seconds=journey.migrate_seconds,
        )
        self._outcomes.append(outcome)
        self._m_journeys.inc()
        self._m_journey_hops.observe(outcome.hops)
        if outcome.detected:
            self._m_detections.inc()
        self.trace.emit(
            "complete",
            ts=completed_at,
            journey=journey.journey_id,
            detected=outcome.detected,
            blamed=list(outcome.blamed_hosts),
            hops=outcome.hops,
            wire_bytes=outcome.wire_bytes,
            expected=outcome.expected_detected,
            malicious_visited=list(outcome.malicious_visited),
            attack_scenario=outcome.attack_scenario,
            attack_hop=outcome.attack_hop,
            detected_at_hop=outcome.detected_at_hop,
            detected_at=outcome.detected_at,
        )

"""Journey replay as verification-service request streams.

The verification service (:mod:`repro.service`) answers the same two
questions the in-process machinery answers during a fleet run: "does
this transfer signature verify?" and "is this session's protocol
payload consistent?".  To benchmark and smoke-test the service against
ground truth, this module runs a fleet **once, in process**, records
every such question exactly as it appears on the wire together with the
in-process answer, and hands the pairs out as a replayable request
stream.

Two capture taps feed the stream:

* the :class:`~repro.crypto.batch.BatchedTransferVerifier` observer
  hook captures every whole-transfer recoverable envelope (signer,
  canonical message bytes, signature) — these become ``verify``
  requests whose expected verdict is ``True`` (an honest fleet never
  produces a bad transfer signature; adversarial streams are derived
  afterwards with :func:`corrupt_requests`);
* a recording subclass of
  :class:`~repro.core.protocol.ReferenceStateProtocol` snapshots every
  non-skipped session check — the ``prev_session`` payload in wire
  form, the observed state, and the verdict the in-process check
  produced — as ``check-session`` requests whose expected answer is the
  canonical verdict, bit for bit.

Capture is deterministic: the stream is a pure function of the
:class:`~repro.sim.fleet.FleetConfig` (same seed, same requests, same
expected answers on any machine).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from random import Random
from typing import Any, Dict, List, Optional, Tuple

from repro.crypto.batch import BatchedTransferVerifier, VerificationCache
from repro.crypto.canonical import canonical_decode, canonical_encode
from repro.crypto.signing import RecoverableEnvelope
from repro.sim.fleet import FleetConfig, FleetEngine, derive_substream

__all__ = [
    "VerificationRequest",
    "RequestStream",
    "RecordingFleetEngine",
    "journey_request_stream",
    "corrupt_requests",
]


@dataclass(frozen=True)
class VerificationRequest:
    """One service request with its ground-truth answer.

    Attributes
    ----------
    op:
        ``"verify"`` or ``"check-session"``.
    payload:
        The request body in wire (canonical) form, without the ``id``
        the client assigns.
    expected:
        The in-process answer: a boolean verdict for ``verify``, the
        canonical verdict dictionary for ``check-session``.
    journey:
        The journey the request originated from (diagnostics).
    """

    op: str
    payload: Dict[str, Any]
    expected: Any
    journey: Optional[str] = None


@dataclass
class RequestStream:
    """Everything one recording fleet run captured."""

    config: FleetConfig
    verify_requests: List[VerificationRequest]
    session_requests: List[VerificationRequest]
    #: Deterministic signature of the generating fleet run.
    fleet_signature: str
    #: Wall-clock seconds the in-process fleet run took (the recording
    #: run; the harness measures a clean run separately for rates).
    wall_seconds: float

    @property
    def requests(self) -> List[VerificationRequest]:
        """Verify requests followed by session-check requests."""
        return list(self.verify_requests) + list(self.session_requests)


class RecordingFleetEngine(FleetEngine):
    """A fleet engine that captures service request streams as it runs."""

    def __init__(self, config: FleetConfig, **kwargs: Any) -> None:
        super().__init__(config, **kwargs)
        self.captured_verifies: List[VerificationRequest] = []
        self.captured_sessions: List[VerificationRequest] = []

    # -- capture taps ------------------------------------------------------------

    def _build_transfer_verifier(self) -> BatchedTransferVerifier:
        return BatchedTransferVerifier(
            self._keystore,
            batch_size=self.config.verification_batch_size,
            rng=Random(derive_substream(
                self.config.seed, "batch", self.shard_index
            )),
            cache=VerificationCache(),
            observer=self._record_envelope,
        )

    def _record_envelope(self, envelope: RecoverableEnvelope,
                         journey: Optional[str]) -> None:
        self.captured_verifies.append(VerificationRequest(
            op="verify",
            payload={
                "op": "verify",
                "signer": envelope.signer,
                "message": envelope.message(),
                "signature": envelope.signature.to_canonical(),
            },
            expected=True,
            journey=journey,
        ))

    def _build_protocol(self, system: Any):
        base = super()._build_protocol(system)

        engine = self

        class _RecordingProtocol(type(base)):
            def _check_previous_session(self, host, prev, observed_state,
                                        checked_host):
                verdict = super()._check_previous_session(
                    host, prev, observed_state, checked_host
                )
                engine._record_session(
                    host, prev, observed_state, checked_host, verdict
                )
                return verdict

        return _RecordingProtocol(
            code_registry=base.code_registry,
            trusted_hosts=base.trusted_hosts,
        )

    def _record_session(self, host: Any, prev: Dict[str, Any],
                        observed_state: Any, checked_host: Optional[str],
                        verdict: Any) -> None:
        # Round-trip through the canonical codec so the captured payload
        # is exactly what a remote checker would hold after decoding the
        # frame — object splices (AgentState instances inside the
        # commitment) become plain canonical dictionaries.
        wire_prev = canonical_decode(canonical_encode(prev))
        self.captured_sessions.append(VerificationRequest(
            op="check-session",
            payload={
                "op": "check-session",
                "prev_session": wire_prev,
                "observed_state": observed_state.to_canonical(),
                "checked_host": checked_host,
                "checking_host": host.name,
            },
            expected=verdict.to_canonical(),
            journey=None,
        ))


def journey_request_stream(
    config: FleetConfig,
    max_session_checks: Optional[int] = None,
) -> RequestStream:
    """Run ``config`` in process and capture its service request stream.

    The configuration is normalized to the capture requirements
    (protection on, batched verification on — the observer hook lives
    on the batched path); everything else, including the seed, is
    honoured, so the stream is reproducible.
    """
    config = replace(config, protected=True, batched_verification=True)
    engine = RecordingFleetEngine(config)
    result = engine.run()
    sessions = engine.captured_sessions
    if max_session_checks is not None:
        sessions = sessions[:max(0, int(max_session_checks))]
    return RequestStream(
        config=config,
        verify_requests=engine.captured_verifies,
        session_requests=sessions,
        fleet_signature=result.deterministic_signature(),
        wall_seconds=result.wall_seconds,
    )


def corrupt_requests(
    requests: List[VerificationRequest],
    fraction: float,
    seed: int = 0,
) -> Tuple[List[VerificationRequest], int]:
    """Derive an adversarial stream: corrupt a fraction of signatures.

    A corrupted ``verify`` request keeps its structural validity (the
    forged ``s`` stays inside ``(0, q)``; the commitment is untouched)
    so it reaches the cryptographic check and must come back ``False``
    — the expected verdict is flipped accordingly.  Non-``verify``
    requests pass through unchanged.  Returns the new list and the
    number of corrupted requests; selection is deterministic in
    ``seed``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    rng = Random(seed)
    corrupted: List[VerificationRequest] = []
    flipped = 0
    for request in requests:
        if request.op != "verify" or rng.random() >= fraction:
            corrupted.append(request)
            continue
        payload = dict(request.payload)
        signature = dict(payload["signature"])
        s = int(signature["s"])
        # Any change to s invalidates the signature; +1 with a wrap
        # keeps 0 < s' and avoids the (astronomically unlikely) s == 0.
        signature["s"] = s + 1 if s + 1 < (1 << 160) else 1
        payload["signature"] = signature
        corrupted.append(VerificationRequest(
            op="verify",
            payload=payload,
            expected=False,
            journey=request.journey,
        ))
        flipped += 1
    return corrupted, flipped

"""Pickle-free wire encoding for the shard result channel.

Worker processes in :mod:`repro.sim.shard` send their unit results back
to the coordinator over a dedicated :func:`multiprocessing.Pipe`
connection as self-describing JSON frames (``Connection.send_bytes``,
never ``Connection.send``).  Keeping pickle out of the result path has
two payoffs:

* the channel cannot execute code on receive — a corrupted or
  adversarial frame fails JSON parsing instead of unpickling something;
* every field that crosses the boundary is named here, so the wire
  surface is reviewable and versioned (:data:`WIRE_VERSION`) instead of
  implicitly being "whatever the dataclass happens to contain".

Floats survive the round trip bit-exactly: :func:`json.dumps` emits the
shortest ``repr`` that parses back to the identical IEEE-754 double, so
a merged result decoded from frames hashes to the same deterministic
signature as one produced in process.

Only the journey-outcome codec and the frame encode/decode primitives
live here; :mod:`repro.sim.shard` composes them into its unit-result
and warm-state messages.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.sim.fleet import JourneyOutcome

__all__ = [
    "WIRE_VERSION",
    "decode_message",
    "encode_message",
    "outcome_from_wire",
    "outcome_to_wire",
]

#: Version tag every frame carries; a coordinator refuses frames from a
#: worker running different wire code instead of mis-decoding them.
WIRE_VERSION = 1

#: Outcome fields the dataclass types as tuples; JSON turns them into
#: lists, so decoding restores the tuple type explicitly.
_TUPLE_FIELDS = ("itinerary", "malicious_visited", "scenarios",
                 "blamed_hosts")


def outcome_to_wire(outcome: JourneyOutcome) -> Dict[str, Any]:
    """JSON-ready dictionary of one journey outcome.

    The canonical (deterministic) fields plus the wall-clock phase
    timings — unlike :meth:`JourneyOutcome.to_canonical` this is a
    *transport* encoding, and the coordinator needs the wall timings for
    :meth:`~repro.sim.fleet.FleetResult.per_phase_seconds`.
    """
    payload = outcome.to_canonical()
    payload["check_seconds"] = outcome.check_seconds
    payload["session_seconds"] = outcome.session_seconds
    payload["migrate_seconds"] = outcome.migrate_seconds
    return payload


def outcome_from_wire(payload: Dict[str, Any]) -> JourneyOutcome:
    """Rebuild a :class:`JourneyOutcome` from its wire dictionary."""
    fields = dict(payload)
    for name in _TUPLE_FIELDS:
        fields[name] = tuple(fields[name])
    return JourneyOutcome(**fields)


def encode_message(message: Dict[str, Any]) -> bytes:
    """One channel frame: compact UTF-8 JSON with sorted keys."""
    return json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def decode_message(data: bytes) -> Dict[str, Any]:
    """Parse a channel frame produced by :func:`encode_message`."""
    message = json.loads(data.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("channel frame is not a JSON object")
    return message

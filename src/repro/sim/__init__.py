"""Fleet-scale discrete-event simulation of protected-agent journeys.

* :mod:`repro.sim.fleet` — the event-queue engine interleaving
  thousands of agent journeys across a host topology with a tunable
  malicious fraction, plus the :class:`FleetResult` aggregate;
* :mod:`repro.sim.shard` — deterministic sharding of a fleet into
  units scheduled across a work-stealing multiprocess pool, merging to
  a result bit-identical to the single-process run;
* :mod:`repro.sim.campaign` — adversarial campaigns: journey-resident
  attacks assigned from a dedicated substream, aggregated into
  per-scenario precision / recall / time-to-detection;
* :mod:`repro.sim.trace` — deterministic per-journey JSONL traces,
  replayable through :class:`~repro.agents.execution_log.ExecutionLog`;
* :mod:`repro.sim.requests` — journey replay as verification-service
  request streams: a recording fleet run captures every transfer
  signature and protocol session check together with its in-process
  ground-truth verdict, for :mod:`repro.service` to be benchmarked and
  smoke-tested against.
"""

from repro.sim.campaign import (
    DEFAULT_CAMPAIGN_SCENARIOS,
    CampaignResult,
    ScenarioStats,
    analyze_campaign,
    campaign_config,
    detection_report_from_trace,
    run_campaign,
)
from repro.sim.fleet import (
    FleetConfig,
    FleetEngine,
    FleetResult,
    JourneyAttack,
    JourneyOutcome,
    derive_substream,
    journey_arrival_times,
    plan_journey_attack,
)
from repro.sim.fleet import fleet_host_names
from repro.sim.requests import (
    RecordingFleetEngine,
    RequestStream,
    VerificationRequest,
    corrupt_requests,
    journey_request_stream,
)
from repro.sim.shard import (
    FleetWorkerPool,
    ShardResult,
    ShardSpec,
    execute_unit,
    merge_shard_results,
    plan_units,
    run_fleet,
    run_shard,
    split_fleet,
    warm_worker,
    worker_trace_path,
)
from repro.sim.trace import (
    TraceWriter,
    attack_events,
    execution_log_at,
    fleet_event_key,
    journey_events,
    merge_shard_events,
    read_trace,
)

__all__ = [
    "CampaignResult",
    "DEFAULT_CAMPAIGN_SCENARIOS",
    "FleetConfig",
    "FleetEngine",
    "FleetResult",
    "FleetWorkerPool",
    "JourneyAttack",
    "JourneyOutcome",
    "RecordingFleetEngine",
    "RequestStream",
    "VerificationRequest",
    "corrupt_requests",
    "journey_request_stream",
    "ScenarioStats",
    "ShardResult",
    "ShardSpec",
    "TraceWriter",
    "analyze_campaign",
    "attack_events",
    "campaign_config",
    "derive_substream",
    "detection_report_from_trace",
    "execute_unit",
    "execution_log_at",
    "fleet_event_key",
    "fleet_host_names",
    "journey_arrival_times",
    "journey_events",
    "merge_shard_events",
    "merge_shard_results",
    "plan_journey_attack",
    "plan_units",
    "read_trace",
    "run_campaign",
    "run_fleet",
    "run_shard",
    "split_fleet",
    "warm_worker",
    "worker_trace_path",
]

"""Fleet-scale discrete-event simulation of protected-agent journeys.

* :mod:`repro.sim.fleet` — the event-queue engine interleaving
  thousands of agent journeys across a host topology with a tunable
  malicious fraction, plus the :class:`FleetResult` aggregate;
* :mod:`repro.sim.shard` — deterministic sharding of a fleet across a
  multiprocess worker pool, merging to a result bit-identical to the
  single-process run;
* :mod:`repro.sim.trace` — deterministic per-journey JSONL traces,
  replayable through :class:`~repro.agents.execution_log.ExecutionLog`.
"""

from repro.sim.fleet import (
    FleetConfig,
    FleetEngine,
    FleetResult,
    JourneyOutcome,
    derive_substream,
    journey_arrival_times,
)
from repro.sim.shard import (
    ShardResult,
    ShardSpec,
    merge_shard_results,
    run_fleet,
    run_shard,
    split_fleet,
)
from repro.sim.trace import (
    TraceWriter,
    execution_log_at,
    fleet_event_key,
    journey_events,
    merge_shard_events,
    read_trace,
)

__all__ = [
    "FleetConfig",
    "FleetEngine",
    "FleetResult",
    "JourneyOutcome",
    "ShardResult",
    "ShardSpec",
    "TraceWriter",
    "derive_substream",
    "execution_log_at",
    "fleet_event_key",
    "journey_arrival_times",
    "journey_events",
    "merge_shard_events",
    "merge_shard_results",
    "read_trace",
    "run_fleet",
    "run_shard",
    "split_fleet",
]

"""Fleet-scale discrete-event simulation of protected-agent journeys.

* :mod:`repro.sim.fleet` — the event-queue engine interleaving
  thousands of agent journeys across a host topology with a tunable
  malicious fraction, plus the :class:`FleetResult` aggregate;
* :mod:`repro.sim.trace` — deterministic per-journey JSONL traces,
  replayable through :class:`~repro.agents.execution_log.ExecutionLog`.
"""

from repro.sim.fleet import FleetConfig, FleetEngine, FleetResult, JourneyOutcome
from repro.sim.trace import (
    TraceWriter,
    execution_log_at,
    journey_events,
    read_trace,
)

__all__ = [
    "FleetConfig",
    "FleetEngine",
    "FleetResult",
    "JourneyOutcome",
    "TraceWriter",
    "execution_log_at",
    "journey_events",
    "read_trace",
]

"""JSONL journey traces for fleet simulation runs.

Every fleet run emits a stream of per-journey events on the virtual
timeline — one JSON object per line, in event-processing order.  The
format follows the trace/replay idiom of post-hoc analysis tools: the
trace alone is enough to reconstruct what happened, when, and to replay
the recorded execution logs through
:class:`~repro.agents.execution_log.ExecutionLog` (``hop`` events embed
each session's trace entries in their canonical form).

Event kinds
-----------
``fleet``
    One header line: the configuration snapshot of the run.
``launch``
    A journey entered the system (itinerary, workload, agent id).
``hop``
    One execution session finished (host, verdicts, transfer size, and
    the session's execution log).
``complete``
    A journey finished (detection outcome, blamed hosts, totals).

Only virtual-clock quantities go into a trace; wall-clock timings are
deliberately excluded so that the same seed produces a byte-identical
trace file on any machine.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, Iterable, List, Optional

from repro.agents.execution_log import ExecutionLog

__all__ = [
    "TraceWriter",
    "read_trace",
    "journey_events",
    "execution_log_at",
]


class TraceWriter:
    """Accumulates trace events and serializes them as JSONL.

    Events are kept in memory (a fleet run is a few thousand small
    dictionaries) and written out in one pass so a crashed run never
    leaves a half-written line behind.
    """

    def __init__(self) -> None:
        self._events: List[Dict[str, Any]] = []

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; ``kind`` becomes the ``event`` field."""
        event = {"event": kind}
        event.update(fields)
        self._events.append(event)
        return event

    @property
    def events(self) -> List[Dict[str, Any]]:
        """All events emitted so far, in order."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def to_jsonl(self) -> str:
        """The whole trace as a JSONL string (sorted keys, stable floats)."""
        buffer = io.StringIO()
        for event in self._events:
            json.dump(event, buffer, sort_keys=True, separators=(",", ":"))
            buffer.write("\n")
        return buffer.getvalue()

    def write(self, path: str) -> None:
        """Write the trace to ``path`` (overwrites)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into a list of event dictionaries."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def journey_events(events: Iterable[Dict[str, Any]],
                   journey_id: str) -> List[Dict[str, Any]]:
    """Filter a trace down to one journey's events, in order."""
    return [event for event in events if event.get("journey") == journey_id]


def execution_log_at(events: Iterable[Dict[str, Any]], journey_id: str,
                     hop_index: int) -> Optional[ExecutionLog]:
    """Reconstruct the execution log recorded at one hop of a journey.

    Returns ``None`` when the trace has no matching ``hop`` event.  The
    reconstructed log round-trips through the same canonical form the
    checking framework uses, so trace digests match the live run's.
    """
    for event in events:
        if (event.get("event") == "hop"
                and event.get("journey") == journey_id
                and event.get("hop_index") == hop_index):
            log = event.get("execution_log")
            if log is None:
                return None
            return ExecutionLog.from_canonical(log)
    return None

"""JSONL journey traces for fleet simulation runs.

Every fleet run emits a stream of per-journey events on the virtual
timeline — one JSON object per line, in event-processing order.  The
format follows the trace/replay idiom of post-hoc analysis tools: the
trace alone is enough to reconstruct what happened, when, and to replay
the recorded execution logs through
:class:`~repro.agents.execution_log.ExecutionLog` (``hop`` events embed
each session's trace entries in their canonical form).

Event kinds
-----------
``fleet``
    One header line: the configuration snapshot of the run.
``launch``
    A journey entered the system (itinerary, workload, agent id).
``attack``
    Campaign ground truth for an attacked journey (scenario, strike
    hop, target host, and whether detection is expected); emitted right
    after the journey's ``launch`` line.
``hop``
    One execution session finished (host, verdicts, transfer size, and
    the session's execution log).
``complete``
    A journey finished (detection outcome, blamed hosts, totals, and —
    for campaign analysis — the ground truth and first-detection
    position, so a trace alone replays to the same
    :class:`~repro.attacks.detection.DetectionReport` as the live run).

Only virtual-clock quantities go into a trace; wall-clock timings are
deliberately excluded so that the same seed produces a byte-identical
trace file on any machine.

Canonical event order
---------------------
Event-processing order breaks virtual-timestamp ties by the global
schedule sequence — a quantity a sharded run cannot reconstruct.  Trace
*files* therefore use the canonical order of :func:`fleet_event_key`:
the header first, then events by ``(ts, journey)`` with each journey's
own events kept in emission order.  Both the single-process engine and
the shard merger (:func:`merge_shard_events`) write this order, which is
what makes an N-shard merged trace byte-identical to the 1-process one.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.agents.execution_log import ExecutionLog

__all__ = [
    "TraceWriter",
    "append_events",
    "attack_events",
    "events_to_jsonl",
    "fleet_event_key",
    "merge_shard_events",
    "merge_trace_files",
    "read_trace",
    "sanitize_stream_file",
    "journey_events",
    "execution_log_at",
]


def fleet_event_key(event: Dict[str, Any]) -> Tuple[int, float, str]:
    """Canonical sort key for fleet trace events.

    Header lines (no ``ts``) sort before everything else; timeline
    events sort by ``(ts, journey)``.  The key is content-based on
    purpose: sorting with it is stable against how the events were
    produced, so any partition of the fleet yields the same file.
    """
    if "ts" not in event:
        return (0, 0.0, "")
    return (1, event["ts"], str(event.get("journey", "")))


def merge_shard_events(
    shard_events: Iterable[Iterable[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """Merge per-shard event streams into one canonical timeline.

    Per-shard ``fleet`` headers are dropped (the caller emits one merged
    header for the whole run); the remaining events are stably sorted by
    :func:`fleet_event_key`.  Shards own disjoint journey-id sets, so
    the key is unambiguous and the merge is deterministic regardless of
    shard count or completion order.
    """
    merged: List[Dict[str, Any]] = []
    for events in shard_events:
        merged.extend(
            event for event in events if event.get("event") != "fleet"
        )
    merged.sort(key=fleet_event_key)
    return merged


def events_to_jsonl(events: Iterable[Dict[str, Any]]) -> str:
    """Serialize events as JSONL (sorted keys, stable floats).

    The single serialization routine every trace file goes through —
    :class:`TraceWriter`, the per-worker event streams of the
    work-stealing scheduler, and the shard merger all produce the same
    bytes for the same events.
    """
    buffer = io.StringIO()
    for event in events:
        json.dump(event, buffer, sort_keys=True, separators=(",", ":"))
        buffer.write("\n")
    return buffer.getvalue()


def append_events(path: str, events: Iterable[Dict[str, Any]]) -> None:
    """Append events to a JSONL stream file.

    Used by pool workers to stream each finished unit's events into
    their per-worker file: serialization happens in the worker (off the
    coordinator's critical path) and the events never cross the result
    channel.  The coordinator truncates the stream files before
    dispatching a run, so appends from consecutive units of the same
    run accumulate and runs never bleed into each other.
    """
    payload = events_to_jsonl(events)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(payload)


def merge_trace_files(
    paths: Iterable[str],
    tolerate_truncated_tail: bool = True,
    losses: Optional[Dict[str, int]] = None,
) -> List[Dict[str, Any]]:
    """Merge shard/worker JSONL files into one canonical event list.

    Reads each file (missing files count as empty streams — a worker
    that never got a traced unit leaves its stream file empty or
    absent) and folds them through :func:`merge_shard_events`.  The
    result is independent of file order: units own disjoint journey-id
    sets, so the canonical key never ties across files.

    Per-worker streams are appended to by processes that can be killed
    mid-write, so by default a torn *final* line in a file is dropped
    rather than fatal; every complete event before it is recovered.
    Pass a ``losses`` dictionary to learn which files lost a tail
    (path → dropped line count) — merging never hides a loss, it
    reports it.  Malformed lines anywhere but the tail still raise:
    those are corruption, not a crash signature.
    """
    import os

    streams = []
    for path in paths:
        if not os.path.exists(path):
            continue
        if tolerate_truncated_tail:
            events, truncated = _read_events_tolerant(path)
            if truncated and losses is not None:
                losses[path] = truncated
        else:
            events = read_trace(path)
        streams.append(events)
    return merge_shard_events(streams)


class TraceWriter:
    """Accumulates trace events and serializes them as JSONL.

    Events are kept in memory (a fleet run is a few thousand small
    dictionaries) and written out in one pass so a crashed run never
    leaves a half-written line behind.
    """

    def __init__(self) -> None:
        self._events: List[Dict[str, Any]] = []

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; ``kind`` becomes the ``event`` field."""
        event = {"event": kind}
        event.update(fields)
        self._events.append(event)
        return event

    @property
    def events(self) -> List[Dict[str, Any]]:
        """All events emitted so far, in order."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def to_jsonl(self, canonical_order: bool = False) -> str:
        """The whole trace as a JSONL string (sorted keys, stable floats).

        With ``canonical_order`` the events are stably sorted by
        :func:`fleet_event_key` first — the order trace *files* use so
        that sharded and single-process runs serialize identically.
        """
        events = self._events
        if canonical_order:
            events = sorted(events, key=fleet_event_key)
        return events_to_jsonl(events)

    def write(self, path: str, canonical_order: bool = False) -> None:
        """Write the trace to ``path`` (overwrites)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl(canonical_order=canonical_order))


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into a list of event dictionaries."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def _read_events_tolerant(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Read a JSONL stream, tolerating a torn final line.

    A process killed mid-append leaves the last line incomplete (or,
    at worst, complete-but-undecodable).  Everything before it is
    intact — appends are sequential — so the tolerant reader recovers
    every complete event and reports how many tail lines it dropped
    (0 or 1).  An undecodable line that is *not* the last one means the
    file is corrupt, not crash-torn, and still raises.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    lines = [line for line in text.split("\n") if line.strip()]
    events: List[Dict[str, Any]] = []
    for position, line in enumerate(lines):
        try:
            events.append(json.loads(line))
        except ValueError:
            if position == len(lines) - 1:
                return events, 1
            raise
    return events, 0


def sanitize_stream_file(
    path: str, drop_journeys: Iterable[str] = ()
) -> Dict[str, int]:
    """Scrub a per-worker stream after its worker crashed.

    Drops a torn final line (the append the crash interrupted) and every
    event belonging to ``drop_journeys`` — the journeys of the unit the
    dead worker held a lease on.  That unit will be re-executed
    elsewhere and append its events again; leaving the partial first
    attempt in place would duplicate them in the merge.  The file is
    rewritten in place.  Returns counters (``events_kept``,
    ``events_dropped``, ``lines_truncated``) for the supervision
    report.
    """
    import os

    if not os.path.exists(path):
        return {"events_kept": 0, "events_dropped": 0, "lines_truncated": 0}
    events, truncated = _read_events_tolerant(path)
    drop = set(drop_journeys)
    kept = [
        event for event in events
        if str(event.get("journey", "")) not in drop
    ]
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(events_to_jsonl(kept))
    return {
        "events_kept": len(kept),
        "events_dropped": len(events) - len(kept),
        "lines_truncated": truncated,
    }


def attack_events(events: Iterable[Dict[str, Any]]
                  ) -> Dict[str, Dict[str, Any]]:
    """Campaign ground truth of a trace: journey id → ``attack`` event."""
    return {
        event["journey"]: event
        for event in events
        if event.get("event") == "attack"
    }


def journey_events(events: Iterable[Dict[str, Any]],
                   journey_id: str) -> List[Dict[str, Any]]:
    """Filter a trace down to one journey's events, in order."""
    return [event for event in events if event.get("journey") == journey_id]


def execution_log_at(events: Iterable[Dict[str, Any]], journey_id: str,
                     hop_index: int) -> Optional[ExecutionLog]:
    """Reconstruct the execution log recorded at one hop of a journey.

    Returns ``None`` when the trace has no matching ``hop`` event.  The
    reconstructed log round-trips through the same canonical form the
    checking framework uses, so trace digests match the live run's.
    """
    for event in events:
        if (event.get("event") == "hop"
                and event.get("journey") == journey_id
                and event.get("hop_index") == hop_index):
            log = event.get("execution_log")
            if log is None:
                return None
            return ExecutionLog.from_canonical(log)
    return None

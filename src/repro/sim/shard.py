"""Sharded multiprocess fleet execution.

A fleet run is shard-decomposable because :class:`~repro.sim.fleet.FleetEngine`
derives all of its randomness from named substreams
(:func:`~repro.sim.fleet.derive_substream`): the topology and arrival
timeline are pure functions of the configuration, and every journey owns
a private stream.  This module exploits that property:

* :func:`split_fleet` partitions the journey-index range of a
  :class:`~repro.sim.fleet.FleetConfig` into ``num_shards`` contiguous,
  disjoint :class:`ShardSpec` ranges with per-shard derived seeds;
* :func:`run_shard` executes one shard in the current process and
  returns a pickle-safe :class:`ShardResult` (plain dataclasses and
  dictionaries only — no hosts, runners, or simulators cross the
  process boundary);
* :func:`run_fleet` fans the shards out over a
  :mod:`multiprocessing` pool and merges the shard outputs into a
  single :class:`~repro.sim.fleet.FleetResult` that is **bit-identical**
  to the single-process run of the same seed — same deterministic
  signature, same merged JSONL trace bytes.

Trace handling is shard-aware: each shard writes its own JSONL file
(``<trace>.shard-K-of-N``) and the coordinator merges them through
:func:`~repro.sim.trace.merge_shard_events`, whose canonical ordering
makes the merged file independent of shard count and completion order.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.exceptions import ConfigurationError
from repro.sim.fleet import (
    FleetConfig,
    FleetEngine,
    FleetResult,
    JourneyOutcome,
    fleet_host_names,
)
from repro.sim.trace import TraceWriter, merge_shard_events, read_trace

__all__ = [
    "ShardSpec",
    "ShardResult",
    "FleetWorkerPool",
    "derive_shard_seed",
    "shard_trace_path",
    "split_fleet",
    "run_shard",
    "warm_worker",
    "merge_shard_results",
    "run_fleet",
]

#: Start method used for worker processes.  ``spawn`` gives every worker
#: a fresh interpreter (same behaviour on Linux, macOS, and Windows, and
#: no inherited state that could differ between pool and in-process
#: execution); determinism never relies on it, only portability does.
DEFAULT_START_METHOD = "spawn"


#: Per-process record of the last :func:`warm_worker` run — the pid,
#: the pinned backend, the wall time the warmup took, and the table
#: cache counters.  Collected across workers by
#: :meth:`FleetWorkerPool.warmup_report`.
_WARM_STATE: Dict[str, Any] = {}


def warm_worker(
    host_names: Sequence[str],
    backend: Optional[str] = None,
    table_cache_dir: Optional[str] = None,
) -> None:
    """Pre-build deterministic crypto state in a (worker) process.

    Used as the :class:`FleetWorkerPool` initializer: host key pairs are
    pure functions of their names, so shipping the *names* ships the
    keys — each worker regenerates them once at pool startup (through
    the process-wide identity memo) instead of inside every shard's
    measured execution, and eagerly builds the fixed-base tables for
    the generator and every host public key.

    ``backend`` pins the crypto backend in the worker (``spawn`` workers
    do not inherit the coordinator's in-process selection, only its
    environment) and ``table_cache_dir`` points the persistent table
    cache at a shared directory so the first process on a host builds
    the tables and every later one loads them.

    Module-level on purpose: ``spawn`` pool initializers are resolved by
    qualified name.
    """
    from repro.crypto.backend import get_backend, set_backend
    from repro.crypto.dsa import PARAMETERS_512
    from repro.crypto.keys import Identity
    from repro.crypto.tablecache import set_table_cache, table_cache_info

    started = time.perf_counter()
    if backend is not None:
        set_backend(backend)
    if table_cache_dir is not None:
        set_table_cache(table_cache_dir)
    PARAMETERS_512.generator_table()
    for name in host_names:
        Identity.generate(name).public_key.precompute()
    _WARM_STATE.clear()
    _WARM_STATE.update(
        pid=os.getpid(),
        backend=get_backend().name,
        hosts_warmed=len(host_names),
        warmup_seconds=time.perf_counter() - started,
        table_cache=table_cache_info(),
    )


def _warmup_probe(_index: int) -> Dict[str, Any]:
    """Return this process's warm state (pool-mapped by the coordinator).

    The tiny sleep keeps one fast worker from draining the whole probe
    queue before its siblings pick up a task.
    """
    time.sleep(0.01)
    return dict(_WARM_STATE)


class FleetWorkerPool:
    """A reusable, pre-warmed multiprocessing pool for sharded fleets.

    ``spawn`` workers pay a real startup tax — interpreter boot, imports,
    and (before this class existed) regenerating every DSA key pair and
    exponentiation table inside the first measured shard.  The pool
    moves all of that into a one-time initializer and **persists across
    runs**: the benchmark harness creates one pool and reuses it for
    every fleet and campaign section instead of spawning fresh workers
    per measurement.

    Use as a context manager, or call :meth:`close` explicitly.
    """

    def __init__(
        self,
        workers: int,
        start_method: str = DEFAULT_START_METHOD,
        warm_config: Optional[FleetConfig] = None,
        backend: Optional[str] = None,
        table_cache_dir: Optional[Union[str, os.PathLike]] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be positive")
        self.workers = workers
        self.start_method = start_method
        self.backend = backend
        self.table_cache_dir = (
            os.fspath(table_cache_dir) if table_cache_dir is not None else None
        )
        host_names = (
            fleet_host_names(warm_config) if warm_config is not None else []
        )
        context = multiprocessing.get_context(start_method)
        self._pool = context.Pool(
            processes=workers,
            initializer=warm_worker,
            initargs=(host_names, backend, self.table_cache_dir),
        )
        self.warmup_seconds: Optional[float] = None
        if warm_config is not None:
            # Warm the coordinator process with the same state the
            # workers build, so single-process comparison runs and the
            # merge path start equally hot.
            started = time.perf_counter()
            warm_worker(host_names, backend, self.table_cache_dir)
            self.warmup_seconds = time.perf_counter() - started

    def map(self, func, iterable):
        """Forward to :meth:`multiprocessing.pool.Pool.map`."""
        return self._pool.map(func, iterable)

    def warmup_report(self) -> Dict[str, Any]:
        """Best-effort per-worker warmup diagnostics.

        Floods the pool with cheap probe tasks and dedupes the answers
        by pid.  Oversubscription plus ``chunksize=1`` makes it very
        likely every worker answers at least once, but a worker that
        never picks up a probe is simply absent — callers must treat
        the list as a sample, not a census.
        """
        probes = self._pool.map(
            _warmup_probe, range(self.workers * 4), chunksize=1
        )
        by_pid: Dict[int, Dict[str, Any]] = {}
        for probe in probes:
            if probe and probe.get("pid") not in by_pid:
                by_pid[probe["pid"]] = probe
        workers = sorted(by_pid.values(), key=lambda w: w["pid"])
        return {
            "workers": workers,
            "workers_reporting": len(workers),
            "coordinator_warmup_seconds": self.warmup_seconds,
            "backend": self.backend or (
                workers[0]["backend"] if workers else None
            ),
            "table_cache_dir": self.table_cache_dir,
        }

    def close(self) -> None:
        """Shut the worker processes down."""
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "FleetWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def derive_shard_seed(seed: int, shard_index: int, num_shards: int) -> int:
    """Deterministic per-shard seed from the master seed and position."""
    material = "shard|%d|%d|%d" % (seed, shard_index, num_shards)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def shard_trace_path(trace_path: str, shard_index: int, num_shards: int) -> str:
    """Per-shard JSONL path derived from the merged trace path."""
    return "%s.shard-%02d-of-%02d" % (trace_path, shard_index, num_shards)


@dataclass(frozen=True)
class ShardSpec:
    """One deterministic slice of a fleet run.

    Attributes
    ----------
    config:
        The full fleet configuration (``trace_path`` stripped — shard
        traces go to :attr:`trace_path` instead).
    shard_index / num_shards:
        Position of this shard in the partition.
    agent_start / agent_stop:
        Journey-index range ``[agent_start, agent_stop)`` this shard
        executes.  Ranges of a partition are contiguous and disjoint.
    seed:
        Per-shard derived seed (:func:`derive_shard_seed`).  Recorded
        for provenance (shard metadata, reports) only — it must never
        feed engine randomness, which flows exclusively from the global
        substreams of ``config.seed``; a shard-local draw would break
        the bit-identity of sharded and single-process runs.
    trace_path:
        Optional path for this shard's own JSONL trace file.
    """

    config: FleetConfig
    shard_index: int
    num_shards: int
    agent_start: int
    agent_stop: int
    seed: int
    trace_path: Optional[str] = None

    @property
    def num_agents(self) -> int:
        """Number of journeys this shard executes."""
        return self.agent_stop - self.agent_start

    def describe(self) -> Dict[str, Any]:
        """Compact metadata dictionary (reports, merged results)."""
        return {
            "shard_index": self.shard_index,
            "num_shards": self.num_shards,
            "agent_start": self.agent_start,
            "agent_stop": self.agent_stop,
            "seed": self.seed,
        }


@dataclass
class ShardResult:
    """Everything one shard sends back to the coordinator.

    Deliberately pickle-safe: journey outcomes, plain dictionaries, and
    numbers only.  Trace events travel through the per-shard JSONL file
    named in ``spec.trace_path`` (when tracing is on), not through the
    pickle channel.
    """

    spec: ShardSpec
    outcomes: List[JourneyOutcome]
    malicious_hosts: Dict[str, str]
    virtual_makespan: float
    events_processed: int
    wall_seconds: float
    verifier_stats: Optional[Dict[str, Any]] = None
    deferred_signature_failures: List[Dict[str, Any]] = field(
        default_factory=list
    )
    #: Journeys of this shard that carried a campaign attack (adversarial
    #: load is range-dependent, so it is worth surfacing per shard).
    campaign_attacked: int = 0


def split_fleet(
    config: FleetConfig,
    num_shards: int,
    trace_path: Optional[str] = None,
) -> List[ShardSpec]:
    """Partition a fleet into ``num_shards`` contiguous shard specs.

    Shard sizes differ by at most one journey (the first
    ``num_agents % num_shards`` shards take the extra one).  More shards
    than journeys is rejected rather than silently producing empty
    shards.  ``trace_path`` is the *merged* trace destination; per-shard
    files are derived from it via :func:`shard_trace_path`.
    """
    config.validate()
    if num_shards < 1:
        raise ConfigurationError("num_shards must be positive")
    if num_shards > config.num_agents:
        raise ConfigurationError(
            "cannot split %d journeys into %d shards"
            % (config.num_agents, num_shards)
        )
    merged_trace = trace_path if trace_path is not None else config.trace_path
    shard_config = replace(config, trace_path=None)
    base, extra = divmod(config.num_agents, num_shards)
    specs: List[ShardSpec] = []
    start = 0
    for index in range(num_shards):
        stop = start + base + (1 if index < extra else 0)
        specs.append(ShardSpec(
            config=shard_config,
            shard_index=index,
            num_shards=num_shards,
            agent_start=start,
            agent_stop=stop,
            seed=derive_shard_seed(config.seed, index, num_shards),
            trace_path=(
                shard_trace_path(merged_trace, index, num_shards)
                if merged_trace else None
            ),
        ))
        start = stop
    return specs


def run_shard(spec: ShardSpec) -> ShardResult:
    """Execute one shard in the current process.

    Module-level on purpose: worker pools resolve it by qualified name
    under the ``spawn`` start method.  When the spec names a trace path,
    the shard's JSONL file is written before returning so the
    coordinator can merge files instead of shipping events through
    pickles.
    """
    engine = FleetEngine(
        spec.config,
        agent_start=spec.agent_start,
        agent_stop=spec.agent_stop,
        shard_index=spec.shard_index,
        num_shards=spec.num_shards,
    )
    result = engine.run()
    if spec.trace_path:
        engine.trace.write(spec.trace_path, canonical_order=True)
    return ShardResult(
        spec=spec,
        outcomes=result.outcomes,
        malicious_hosts=result.malicious_hosts,
        virtual_makespan=result.virtual_makespan,
        events_processed=result.events_processed,
        wall_seconds=result.wall_seconds,
        verifier_stats=result.verifier_stats,
        deferred_signature_failures=result.deferred_signature_failures,
        campaign_attacked=len(result.campaign_journeys),
    )


def _merge_verifier_stats(
    stats: Sequence[Dict[str, Any]],
) -> Optional[Dict[str, Any]]:
    if not stats:
        return None
    merged: Dict[str, Any] = {
        "verified": 0, "failed": 0, "batches": 0,
        "cache": {"hits": 0, "misses": 0, "entries": 0},
        "deferred_failures": 0,
        "shards": len(stats),
    }
    for entry in stats:
        merged["verified"] += entry.get("verified", 0)
        merged["failed"] += entry.get("failed", 0)
        merged["batches"] += entry.get("batches", 0)
        merged["deferred_failures"] += entry.get("deferred_failures", 0)
        cache = entry.get("cache", {})
        for key in ("hits", "misses", "entries"):
            merged["cache"][key] += cache.get(key, 0)
    # Keep the merged cache dict shape-compatible with
    # VerificationCache.stats() so reporting code never has to care
    # whether a result came out of one process or many.
    lookups = merged["cache"]["hits"] + merged["cache"]["misses"]
    merged["cache"]["hit_rate"] = (
        merged["cache"]["hits"] / lookups if lookups else 0.0
    )
    return merged


def merge_shard_results(
    config: FleetConfig,
    shard_results: Sequence[ShardResult],
    wall_seconds: float,
) -> FleetResult:
    """Fold shard outputs into one :class:`FleetResult`.

    The merged result carries the canonical outcome order (completion
    time, then journey id) — the same order a single-process engine
    produces — so its deterministic signature equals the unsharded
    run's.  Shards rebuild the topology independently; a mismatch in
    their malicious-host maps would mean the topology substream leaked
    shard-local state, so it is asserted rather than papered over.
    """
    if not shard_results:
        raise ConfigurationError("cannot merge zero shard results")
    ordered = sorted(shard_results, key=lambda r: r.spec.shard_index)
    covered = [(r.spec.agent_start, r.spec.agent_stop) for r in ordered]
    expected_start = 0
    for start, stop in covered:
        if start != expected_start:
            raise ConfigurationError(
                "shard ranges %r do not tile the agent range" % (covered,)
            )
        expected_start = stop
    if expected_start != config.num_agents:
        raise ConfigurationError(
            "shard ranges %r do not cover %d journeys"
            % (covered, config.num_agents)
        )

    malicious = dict(ordered[0].malicious_hosts)
    for result in ordered[1:]:
        if result.malicious_hosts != malicious:
            raise ConfigurationError(
                "shard %d rebuilt a different topology — the topology "
                "substream is no longer shard-independent"
                % result.spec.shard_index
            )

    outcomes: List[JourneyOutcome] = []
    deferred: List[Dict[str, Any]] = []
    for result in ordered:
        outcomes.extend(result.outcomes)
        deferred.extend(result.deferred_signature_failures)
    outcomes.sort(key=lambda o: (o.completed_at, o.journey_id))

    return FleetResult(
        config=config,
        outcomes=outcomes,
        malicious_hosts=malicious,
        virtual_makespan=max(r.virtual_makespan for r in ordered),
        events_processed=sum(r.events_processed for r in ordered),
        wall_seconds=wall_seconds,
        verifier_stats=_merge_verifier_stats(
            [r.verifier_stats for r in ordered if r.verifier_stats]
        ),
        deferred_signature_failures=deferred,
        shards=[
            dict(r.spec.describe(), wall_seconds=r.wall_seconds,
                 events_processed=r.events_processed,
                 campaign_attacked=r.campaign_attacked)
            for r in ordered
        ],
    )


def _write_merged_trace(
    config: FleetConfig,
    trace_path: str,
    specs: Sequence[ShardSpec],
) -> None:
    """Merge per-shard JSONL files into the canonical merged trace."""
    writer = TraceWriter()
    writer.emit("fleet", config=config.to_canonical())
    for event in merge_shard_events(
        read_trace(spec.trace_path)
        for spec in sorted(specs, key=lambda s: s.shard_index)
        if spec.trace_path
    ):
        writer.emit(event.pop("event"), **event)
    writer.write(trace_path, canonical_order=True)


def run_fleet(
    config: FleetConfig,
    workers: int = 1,
    num_shards: Optional[int] = None,
    start_method: str = DEFAULT_START_METHOD,
    pool: Optional[FleetWorkerPool] = None,
) -> FleetResult:
    """Run a fleet across a multiprocess worker pool and merge the shards.

    Parameters
    ----------
    config:
        The fleet description.  ``config.trace_path`` (if set) receives
        the merged JSONL trace; per-shard files appear next to it.
    workers:
        Worker processes to use.  ``1`` executes the shards sequentially
        in this process — same code path, no pool.
    num_shards:
        Number of shards; defaults to ``workers``.  The merged result is
        bit-identical for every ``(num_shards, workers)`` choice,
        including the unsharded single-process engine.
    start_method:
        :mod:`multiprocessing` start method for the pool (ignored when
        ``pool`` is given).
    pool:
        Optional persistent :class:`FleetWorkerPool`.  Passing one
        amortizes worker spawn and crypto warm-up across many runs —
        the pool is left open for the caller to reuse.  Without it a
        throwaway pool is created per call, exactly as before.  A
        ``workers=1`` call stays single-process even when a pool is
        supplied, so serial baselines remain serial.

    Returns
    -------
    FleetResult
        Merged result with per-shard metadata in ``result.shards``.
    """
    if workers < 1:
        raise ConfigurationError("workers must be positive")
    started = time.perf_counter()
    shards = num_shards if num_shards is not None else workers
    specs = split_fleet(config, min(shards, config.num_agents))

    if workers == 1 or len(specs) == 1:
        shard_results = [run_shard(spec) for spec in specs]
    elif pool is not None:
        shard_results = pool.map(run_shard, specs)
    else:
        context = multiprocessing.get_context(start_method)
        with context.Pool(processes=min(workers, len(specs))) as throwaway:
            shard_results = throwaway.map(run_shard, specs)

    merged = merge_shard_results(
        config, shard_results, wall_seconds=time.perf_counter() - started
    )
    if config.trace_path:
        _write_merged_trace(config, config.trace_path, specs)
    return merged

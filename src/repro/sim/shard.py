"""Sharded multiprocess fleet execution with work-stealing scheduling.

A fleet run is shard-decomposable because :class:`~repro.sim.fleet.FleetEngine`
derives all of its randomness from named substreams
(:func:`~repro.sim.fleet.derive_substream`): the topology and arrival
timeline are pure functions of the configuration, and every journey owns
a private stream.  This module exploits that property:

* :func:`split_fleet` partitions the journey-index range of a
  :class:`~repro.sim.fleet.FleetConfig` into contiguous, disjoint
  :class:`ShardSpec` units with per-unit derived seeds;
* :func:`execute_unit` runs one unit in the current process and returns
  a :class:`ShardResult` with its warmup/compute/serialize timing;
* :class:`FleetWorkerPool` holds persistent ``spawn`` workers that pull
  units from a **shared task queue** — an idle worker steals whatever
  unit is next, so a slow or stalled worker never strands its share of
  the fleet the way the old static ``one shard per worker`` partition
  did;
* :func:`run_fleet` plans the units, dispatches them, and merges the
  outputs into a single :class:`~repro.sim.fleet.FleetResult` that is
  **bit-identical** to the single-process run of the same seed — same
  deterministic signature, same merged JSONL trace bytes.

Determinism under dynamic scheduling
------------------------------------
Bit-identity survives any scheduling interleaving because units carry
their *substream identity* (journey-index range + unit index), never
their schedule order: which worker executes a unit, and when, changes
no random draw.  The unit partition itself is a pure function of
``(config, unit count)``, and the merge orders outcomes and trace
events by content (completion time, journey id), so the merged result
is a pure function of the partition — the schedule is invisible.

Result channel and trace streams
--------------------------------
Unit results return on a per-worker :func:`multiprocessing.Pipe` as
pickle-free JSON frames (:mod:`repro.sim.wire`) instead of through
``Pool.map`` pickling.  Trace events never cross the channel at all:
each worker streams its finished units' events into its own JSONL file
(``<trace>.worker-K-of-N``) and the coordinator merges the streams
after the last unit completes — serialization cost stays in the
workers, off the coordinator's critical path.  Sequential runs
(``workers=1``) keep the classic per-unit ``<trace>.shard-K-of-N``
files.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import queue as _queue
import time
import traceback
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.chaos import (
    WORKER_CRASH_MID_WRITE,
    Fault,
    FaultInjector,
    FaultPlan,
    kill_self,
    torn_prefix,
)
from repro.exceptions import ConfigurationError
from repro.sim.fleet import (
    FleetConfig,
    FleetEngine,
    FleetResult,
    JourneyOutcome,
    fleet_host_names,
    journey_id_for_index,
)
from repro.sim.trace import (
    TraceWriter,
    append_events,
    events_to_jsonl,
    merge_trace_files,
    sanitize_stream_file,
)
from repro.sim.wire import (
    WIRE_VERSION,
    decode_message,
    encode_message,
    outcome_from_wire,
    outcome_to_wire,
)

__all__ = [
    "ShardSpec",
    "ShardResult",
    "FleetWorkerPool",
    "DEFAULT_UNITS_PER_WORKER",
    "derive_shard_seed",
    "shard_trace_path",
    "worker_trace_path",
    "split_fleet",
    "plan_units",
    "execute_unit",
    "run_shard",
    "warm_worker",
    "merge_shard_results",
    "run_fleet",
]

#: Start method used for worker processes.  ``spawn`` gives every worker
#: a fresh interpreter (same behaviour on Linux, macOS, and Windows, and
#: no inherited state that could differ between pool and in-process
#: execution); determinism never relies on it, only portability does.
DEFAULT_START_METHOD = "spawn"

#: Default queue granularity: units per worker when neither
#: ``num_shards`` nor ``unit_size`` is given.  Several units per worker
#: is what makes stealing effective (a worker finishing early picks up
#: another unit instead of idling), while units stay large enough that
#: per-unit topology setup is noise.
DEFAULT_UNITS_PER_WORKER = 4

#: How long the coordinator waits on the result channels before
#: re-checking that its workers are still alive.
_POLL_SECONDS = 5.0


#: Per-process record of the last :func:`warm_worker` run — the pid,
#: the pinned backend, the wall time the warmup took, and the table
#: cache counters.  Every pool worker sends this once on its result
#: channel (before pulling any task), which is what
#: :meth:`FleetWorkerPool.warmup_report` collects.
_WARM_STATE: Dict[str, Any] = {}


def warm_worker(
    host_names: Sequence[str],
    backend: Optional[str] = None,
    table_cache_dir: Optional[str] = None,
) -> None:
    """Pre-build deterministic crypto state in a (worker) process.

    Runs exactly once per worker process, at startup — host key pairs
    are pure functions of their names, so shipping the *names* ships
    the keys: each worker regenerates them once (through the
    process-wide identity memo) instead of inside any measured unit,
    and eagerly builds the fixed-base tables for the generator and
    every host public key.  However many units a worker later steals,
    it never pays warmup again.

    ``backend`` pins the crypto backend in the worker (``spawn`` workers
    do not inherit the coordinator's in-process selection, only its
    environment) and ``table_cache_dir`` points the persistent table
    cache at a shared directory so the first process on a host builds
    the tables and every later one loads them.

    Module-level on purpose: ``spawn`` workers resolve their target by
    qualified name.
    """
    from repro.crypto.backend import get_backend, set_backend
    from repro.crypto.dsa import PARAMETERS_512
    from repro.crypto.keys import Identity
    from repro.crypto.tablecache import set_table_cache, table_cache_info

    started = time.perf_counter()
    if backend is not None:
        set_backend(backend)
    if table_cache_dir is not None:
        set_table_cache(table_cache_dir)
    PARAMETERS_512.generator_table()
    for name in host_names:
        Identity.generate(name).public_key.precompute()
    _WARM_STATE.clear()
    _WARM_STATE.update(
        pid=os.getpid(),
        backend=get_backend().name,
        hosts_warmed=len(host_names),
        warmup_seconds=time.perf_counter() - started,
        table_cache=table_cache_info(),
    )


def derive_shard_seed(seed: int, shard_index: int, num_shards: int) -> int:
    """Deterministic per-shard seed from the master seed and position."""
    material = "shard|%d|%d|%d" % (seed, shard_index, num_shards)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def shard_trace_path(trace_path: str, shard_index: int, num_shards: int) -> str:
    """Per-shard JSONL path derived from the merged trace path."""
    return "%s.shard-%02d-of-%02d" % (trace_path, shard_index, num_shards)


def worker_trace_path(trace_path: str, worker_index: int, workers: int) -> str:
    """Per-worker JSONL stream path derived from the merged trace path.

    Pool workers append every unit they execute to their own stream
    file; which units land in which stream depends on the (dynamic)
    schedule, but the *merged* trace does not — units own disjoint
    journey-id sets, so the canonical event order is schedule-free.
    """
    return "%s.worker-%02d-of-%02d" % (trace_path, worker_index, workers)


@dataclass(frozen=True)
class ShardSpec:
    """One deterministic slice (unit) of a fleet run.

    Attributes
    ----------
    config:
        The full fleet configuration (``trace_path`` stripped — shard
        traces go to :attr:`trace_path` or a per-worker stream instead).
    shard_index / num_shards:
        Position of this unit in the partition.
    agent_start / agent_stop:
        Journey-index range ``[agent_start, agent_stop)`` this unit
        executes.  Ranges of a partition are contiguous and disjoint.
    seed:
        Per-unit derived seed (:func:`derive_shard_seed`).  Recorded
        for provenance (shard metadata, reports) only — it must never
        feed engine randomness, which flows exclusively from the global
        substreams of ``config.seed``; a shard-local draw would break
        the bit-identity of sharded and single-process runs.
    trace_path:
        Optional path for this unit's own JSONL trace file (sequential
        runs; pooled runs stream into per-worker files instead).
    """

    config: FleetConfig
    shard_index: int
    num_shards: int
    agent_start: int
    agent_stop: int
    seed: int
    trace_path: Optional[str] = None

    @property
    def num_agents(self) -> int:
        """Number of journeys this unit executes."""
        return self.agent_stop - self.agent_start

    def describe(self) -> Dict[str, Any]:
        """Compact metadata dictionary (reports, merged results)."""
        return {
            "shard_index": self.shard_index,
            "num_shards": self.num_shards,
            "agent_start": self.agent_start,
            "agent_stop": self.agent_stop,
            "seed": self.seed,
        }


@dataclass
class ShardResult:
    """Everything one unit sends back to the coordinator.

    Crosses the worker boundary as a pickle-free JSON frame
    (:mod:`repro.sim.wire`): journey outcomes, plain dictionaries, and
    numbers only.  Trace events travel through JSONL files (per-unit or
    per-worker streams), never through the result channel.

    The ``compute`` / ``serialize`` seconds are this unit's share of
    the per-worker overhead split; ``compute_cpu_seconds`` uses CPU
    time (:func:`time.process_time`), which is what makes the
    harness's useful-parallel-work utilization honest on oversubscribed
    machines — an engine timesharing one core burns wall time but not
    CPU time.
    """

    spec: ShardSpec
    outcomes: List[JourneyOutcome]
    malicious_hosts: Dict[str, str]
    virtual_makespan: float
    events_processed: int
    wall_seconds: float
    verifier_stats: Optional[Dict[str, Any]] = None
    deferred_signature_failures: List[Dict[str, Any]] = field(
        default_factory=list
    )
    #: Journeys of this unit that carried a campaign attack (adversarial
    #: load is range-dependent, so it is worth surfacing per unit).
    campaign_attacked: int = 0
    #: Which pool worker executed the unit (None when run in process).
    worker_index: Optional[int] = None
    worker_pid: Optional[int] = None
    #: Engine execution wall / CPU time for this unit.
    compute_seconds: float = 0.0
    compute_cpu_seconds: float = 0.0
    #: Trace serialization time for this unit (0 when tracing is off).
    serialize_seconds: float = 0.0
    #: Sample-bearing telemetry snapshot of the unit's engine
    #: (``None`` when observability is disabled).  Merged fleet-wide by
    #: :func:`run_fleet` into ``worker_report["telemetry"]``.
    telemetry: Optional[Dict[str, Any]] = None


def split_fleet(
    config: FleetConfig,
    num_shards: int,
    trace_path: Optional[str] = None,
) -> List[ShardSpec]:
    """Partition a fleet into ``num_shards`` contiguous shard specs.

    Shard sizes differ by at most one journey (the first
    ``num_agents % num_shards`` shards take the extra one).  More shards
    than journeys is rejected rather than silently producing empty
    shards.  ``trace_path`` is the *merged* trace destination; per-shard
    files are derived from it via :func:`shard_trace_path`.
    """
    config.validate()
    if num_shards < 1:
        raise ConfigurationError("num_shards must be positive")
    if num_shards > config.num_agents:
        raise ConfigurationError(
            "cannot split %d journeys into %d shards"
            % (config.num_agents, num_shards)
        )
    merged_trace = trace_path if trace_path is not None else config.trace_path
    shard_config = replace(config, trace_path=None)
    base, extra = divmod(config.num_agents, num_shards)
    specs: List[ShardSpec] = []
    start = 0
    for index in range(num_shards):
        stop = start + base + (1 if index < extra else 0)
        specs.append(ShardSpec(
            config=shard_config,
            shard_index=index,
            num_shards=num_shards,
            agent_start=start,
            agent_stop=stop,
            seed=derive_shard_seed(config.seed, index, num_shards),
            trace_path=(
                shard_trace_path(merged_trace, index, num_shards)
                if merged_trace else None
            ),
        ))
        start = stop
    return specs


def plan_units(
    config: FleetConfig,
    workers: int,
    num_shards: Optional[int] = None,
    unit_size: Optional[int] = None,
) -> int:
    """Unit count for a run: explicit shards, a unit size, or default.

    ``num_shards`` pins the partition exactly (legacy interface);
    ``unit_size`` asks for units of about that many journeys; with
    neither, multi-worker runs get :data:`DEFAULT_UNITS_PER_WORKER`
    units per worker (capped at one journey per unit) so the shared
    queue always holds spare units for an idle worker to steal, and
    single-worker runs stay one unit.
    """
    if num_shards is not None and unit_size is not None:
        raise ConfigurationError(
            "num_shards and unit_size are mutually exclusive"
        )
    config.validate()
    if num_shards is not None:
        return num_shards
    if unit_size is not None:
        if unit_size < 1:
            raise ConfigurationError("unit_size must be positive")
        return -(-config.num_agents // unit_size)
    if workers <= 1:
        return 1
    return min(config.num_agents, workers * DEFAULT_UNITS_PER_WORKER)


def execute_unit(
    spec: ShardSpec,
    trace_path: Optional[str] = None,
    append: bool = False,
    fault: Optional[Fault] = None,
) -> ShardResult:
    """Execute one unit in the current process, timing each phase.

    ``trace_path`` overrides where (and whether) the unit's events are
    serialized; with ``append`` they are appended to an existing stream
    file (the per-worker streaming mode) instead of written as a
    standalone canonical file.  Compute is timed in both wall and CPU
    seconds, serialization separately — the raw material of the
    harness's per-worker overhead split.

    ``fault`` is the chaos hook for the one injury that must fire
    *inside* the serialize phase: a
    :data:`~repro.chaos.WORKER_CRASH_MID_WRITE` appends only a torn
    prefix of the unit's events, fsyncs, and SIGKILLs the process —
    the crash signature the supervisor's stream repair must survive.
    """
    started = time.perf_counter()
    cpu_started = time.process_time()
    engine = FleetEngine(
        spec.config,
        agent_start=spec.agent_start,
        agent_stop=spec.agent_stop,
        shard_index=spec.shard_index,
        num_shards=spec.num_shards,
    )
    result = engine.run()
    compute_seconds = time.perf_counter() - started
    compute_cpu_seconds = time.process_time() - cpu_started
    serialize_started = time.perf_counter()
    if trace_path:
        if append:
            if fault is not None and fault.kind == WORKER_CRASH_MID_WRITE:
                payload = events_to_jsonl(engine.trace.events)
                with open(trace_path, "a", encoding="utf-8") as handle:
                    handle.write(torn_prefix(payload, fault.fraction))
                    handle.flush()
                    os.fsync(handle.fileno())
                kill_self()
            append_events(trace_path, engine.trace.events)
        else:
            engine.trace.write(trace_path, canonical_order=True)
    serialize_seconds = time.perf_counter() - serialize_started
    return ShardResult(
        spec=spec,
        outcomes=result.outcomes,
        malicious_hosts=result.malicious_hosts,
        virtual_makespan=result.virtual_makespan,
        events_processed=result.events_processed,
        wall_seconds=result.wall_seconds,
        verifier_stats=result.verifier_stats,
        deferred_signature_failures=result.deferred_signature_failures,
        campaign_attacked=len(result.campaign_journeys),
        worker_pid=os.getpid(),
        compute_seconds=compute_seconds,
        compute_cpu_seconds=compute_cpu_seconds,
        serialize_seconds=serialize_seconds,
        telemetry=(
            engine.metrics.snapshot(include_samples=True)
            if engine.metrics.enabled else None
        ),
    )


def run_shard(spec: ShardSpec) -> ShardResult:
    """Execute one shard in the current process (classic interface).

    When the spec names a trace path, the shard's JSONL file is written
    before returning so the coordinator can merge files instead of
    shipping events through the result channel.
    """
    return execute_unit(spec, trace_path=spec.trace_path)


def _unit_result_to_wire(result: ShardResult) -> Dict[str, Any]:
    """The JSON frame a worker sends for one finished unit."""
    return {
        "kind": "unit",
        "version": WIRE_VERSION,
        "worker": result.worker_index,
        "pid": result.worker_pid,
        "shard_index": result.spec.shard_index,
        "outcomes": [outcome_to_wire(o) for o in result.outcomes],
        "malicious_hosts": dict(result.malicious_hosts),
        "virtual_makespan": result.virtual_makespan,
        "events_processed": result.events_processed,
        "wall_seconds": result.wall_seconds,
        "verifier_stats": result.verifier_stats,
        "deferred_signature_failures": list(
            result.deferred_signature_failures
        ),
        "campaign_attacked": result.campaign_attacked,
        "compute_seconds": result.compute_seconds,
        "compute_cpu_seconds": result.compute_cpu_seconds,
        "serialize_seconds": result.serialize_seconds,
        "telemetry": result.telemetry,
    }


def _unit_result_from_wire(
    message: Dict[str, Any], spec: ShardSpec
) -> ShardResult:
    """Rebuild a :class:`ShardResult` from its frame and the local spec.

    The coordinator already holds every spec it dispatched, so only the
    unit index crosses the wire and the (config-bearing) spec is
    re-attached locally.
    """
    if message["shard_index"] != spec.shard_index:
        raise RuntimeError(
            "unit frame for shard %r decoded against spec %r"
            % (message["shard_index"], spec.shard_index)
        )
    return ShardResult(
        spec=spec,
        outcomes=[outcome_from_wire(o) for o in message["outcomes"]],
        malicious_hosts=dict(message["malicious_hosts"]),
        virtual_makespan=message["virtual_makespan"],
        events_processed=message["events_processed"],
        wall_seconds=message["wall_seconds"],
        verifier_stats=message["verifier_stats"],
        deferred_signature_failures=list(
            message["deferred_signature_failures"]
        ),
        campaign_attacked=message["campaign_attacked"],
        worker_index=message["worker"],
        worker_pid=message["pid"],
        compute_seconds=message["compute_seconds"],
        compute_cpu_seconds=message["compute_cpu_seconds"],
        serialize_seconds=message["serialize_seconds"],
        telemetry=message.get("telemetry"),
    )


def _unit_worker_main(
    worker_index: int,
    workers: int,
    host_names: Sequence[str],
    backend: Optional[str],
    table_cache_dir: Optional[str],
    tasks: Any,
    channel: Any,
    stall_seconds: float = 0.0,
    faults: Sequence[Fault] = (),
) -> None:
    """Body of one work-stealing pool worker (module-level for spawn).

    Protocol, in order:

    1. warm once (:func:`warm_worker`) and send the warm state as the
       first frame on the dedicated result channel — a bounded,
       deterministic per-worker probe that cannot interleave with unit
       execution because it never touches the shared task queue;
    2. optionally stall (test hook for forcing adversarial schedules);
    3. loop: pull ``(spec, trace_template)`` tasks from the shared
       queue — this *is* the work stealing; whichever worker is idle
       takes the next unit.  Each pull is announced with a ``lease``
       frame *before* execution starts, so the coordinator always
       knows which unit dies with a worker and must be requeued.  Then
       execute, stream trace events to this worker's own JSONL file,
       and send the result back as one pickle-free JSON frame.  A
       ``None`` task is the shutdown sentinel.

    ``faults`` is this worker's share of a chaos plan
    (:meth:`repro.chaos.FaultPlan.for_worker`); the injector applies
    each fault around the lease it targets — including the lethal ones
    that end this function with a SIGKILL.

    Any Python exception is reported as an ``error`` frame instead of a
    silent worker death; process death itself is the supervisor's
    problem.
    """
    injector = FaultInjector(faults)
    try:
        warm_worker(host_names, backend, table_cache_dir)
        warm_frame = {
            "kind": "warm", "version": WIRE_VERSION, "worker": worker_index,
        }
        warm_frame.update(_WARM_STATE)
        channel.send_bytes(encode_message(warm_frame))
        if stall_seconds > 0:
            time.sleep(stall_seconds)
        leases = 0
        while True:
            task = tasks.get()
            if task is None:
                break
            spec, trace_template = task
            channel.send_bytes(encode_message({
                "kind": "lease",
                "version": WIRE_VERSION,
                "worker": worker_index,
                "shard_index": spec.shard_index,
            }))
            fault = injector.fault_for_unit(leases)
            leases += 1
            injector.apply_pre_execution(fault)
            stream = (
                worker_trace_path(trace_template, worker_index, workers)
                if trace_template else None
            )
            result = execute_unit(
                spec, trace_path=stream, append=True, fault=fault
            )
            result.worker_index = worker_index
            injector.apply_post_execution(fault, channel)
            channel.send_bytes(encode_message(_unit_result_to_wire(result)))
    except Exception:
        try:
            channel.send_bytes(encode_message({
                "kind": "error",
                "version": WIRE_VERSION,
                "worker": worker_index,
                "error": traceback.format_exc(),
            }))
        except (OSError, ValueError):
            pass
    finally:
        channel.close()


class FleetWorkerPool:
    """A reusable, pre-warmed pool of work-stealing fleet workers.

    ``spawn`` workers pay a real startup tax — interpreter boot,
    imports, and regenerating every DSA key pair and exponentiation
    table.  The pool moves all of that into a once-per-process warmup
    and **persists across runs**: the benchmark harness creates one pool
    and reuses it for every fleet and campaign section instead of
    spawning fresh workers per measurement.

    Scheduling is dynamic: :meth:`run_units` drops every unit of a run
    onto one shared task queue and idle workers pull from it, so a
    worker that is slow (noisy neighbour, unlucky unit mix) simply
    executes fewer units while its siblings steal the rest — no static
    partition to strand work behind the slowest process.  Results come
    back on per-worker pipe connections as pickle-free JSON frames
    (:mod:`repro.sim.wire`).

    ``stall_seconds`` maps worker index → an artificial delay between
    warmup and the first queue pull.  It exists for tests and
    diagnostics: stalling one worker forces the adversarial schedule in
    which its siblings steal its share, which is exactly the
    interleaving the bit-identity property tests must cover.

    Supervision
    -----------
    The pool is supervised, not fail-fast.  Workers announce every unit
    they lease before executing it; when a worker process dies (EOF or
    a torn frame on its channel), the coordinator joins it, repairs the
    dead worker's trace stream (drops the torn final line and any
    events the crashed unit already appended —
    :func:`repro.sim.trace.sanitize_stream_file`), requeues the leased
    unit, and respawns a replacement at the same index while the
    ``respawn_budget`` (default: one per worker) lasts.  Budget spent,
    the pool degrades to the surviving workers; with *no* survivors the
    coordinator executes the remaining units itself.  Units carry their
    substream identity, so a re-executed unit is bit-identical to the
    first attempt by construction — crashes cost wall time, never bits.
    Deterministic Python exceptions inside a unit still raise (an
    ``error`` frame): those reproduce on retry, so retrying them would
    loop, not heal.

    ``fault_plan`` injects a :class:`repro.chaos.FaultPlan` into the
    workers — each worker applies its own share of the plan to itself.
    Respawned workers never inherit their predecessor's faults (a
    crash-at-unit-k would otherwise loop until the budget drained).

    Use as a context manager, or call :meth:`close` explicitly.
    """

    def __init__(
        self,
        workers: int,
        start_method: str = DEFAULT_START_METHOD,
        warm_config: Optional[FleetConfig] = None,
        backend: Optional[str] = None,
        table_cache_dir: Optional[Union[str, os.PathLike]] = None,
        stall_seconds: Optional[Dict[int, float]] = None,
        fault_plan: Optional[FaultPlan] = None,
        respawn_budget: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be positive")
        if respawn_budget is not None and respawn_budget < 0:
            raise ConfigurationError("respawn_budget must be non-negative")
        if fault_plan is not None:
            fault_plan.validate()
        self.workers = workers
        self.start_method = start_method
        self.backend = backend
        self.table_cache_dir = (
            os.fspath(table_cache_dir) if table_cache_dir is not None else None
        )
        self.respawn_budget = (
            workers if respawn_budget is None else respawn_budget
        )
        self._fault_plan = fault_plan
        self._host_names = (
            fleet_host_names(warm_config) if warm_config is not None else []
        )
        self._stalls = dict(stall_seconds or {})
        self._context = multiprocessing.get_context(start_method)
        self._tasks = self._context.Queue()
        self._processes: List[Any] = []
        self._channels: List[Any] = []
        self._warm_states: Dict[int, Dict[str, Any]] = {}
        self._leases: Dict[int, int] = {}
        self._pending_deaths: List[int] = []
        self._crashes: List[Dict[str, Any]] = []
        self._respawns = 0
        self._degraded_units = 0
        self._leases_observed = 0
        self._trace_losses: Dict[str, int] = {}
        self._closed = False
        for index in range(workers):
            self._spawn_worker(index, initial=True)
        self.warmup_seconds: Optional[float] = None
        if warm_config is not None:
            # Warm the coordinator process with the same state the
            # workers build, so single-process comparison runs and the
            # merge path start equally hot.
            started = time.perf_counter()
            warm_worker(self._host_names, backend, self.table_cache_dir)
            self.warmup_seconds = time.perf_counter() - started

    def _spawn_worker(self, index: int, initial: bool) -> None:
        """Start (or replace) the worker at ``index``.

        Replacements get no stall and no faults: stalls model one slow
        incarnation, and a respawned worker re-suffering its
        predecessor's crash fault would burn the whole respawn budget
        on one injury.
        """
        faults: Tuple[Fault, ...] = ()
        stall = 0.0
        if initial:
            stall = float(self._stalls.get(index, 0.0))
            if self._fault_plan is not None:
                faults = self._fault_plan.for_worker(index)
        receiver, sender = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_unit_worker_main,
            args=(index, self.workers, self._host_names, self.backend,
                  self.table_cache_dir, self._tasks, sender, stall, faults),
            daemon=True,
            name="fleet-worker-%d" % index,
        )
        process.start()
        # The parent's copy of the send end must close so a dead
        # worker surfaces as EOF on its channel instead of a hang.
        sender.close()
        if index < len(self._processes):
            self._processes[index] = process
            self._channels[index] = receiver
        else:
            self._processes.append(process)
            self._channels.append(receiver)

    # -- result channel ---------------------------------------------------------

    def _open_channels(self) -> List[Any]:
        return [channel for channel in self._channels if channel is not None]

    def _receive(self, timeout: Optional[float]) -> List[Dict[str, Any]]:
        """Drain ready channels; returns the unit frames received.

        Warm-state frames are absorbed into :attr:`_warm_states` and
        lease announcements into :attr:`_leases`.  A worker death —
        EOF, or a frame torn mid-transmission — closes that channel and
        queues the index on :attr:`_pending_deaths` for
        :meth:`_service_deaths`; it never raises.  ``error`` frames
        (deterministic Python exceptions inside a unit) still raise:
        those reproduce on re-execution, so supervision cannot heal
        them.
        """
        channels = self._open_channels()
        if not channels:
            return []
        units: List[Dict[str, Any]] = []
        for channel in _connection_wait(channels, timeout=timeout):
            try:
                data = channel.recv_bytes()
            except (EOFError, OSError):
                index = self._channels.index(channel)
                self._channels[index] = None
                channel.close()
                self._pending_deaths.append(index)
                continue
            message = decode_message(data)
            if message.get("version") != WIRE_VERSION:
                raise RuntimeError(
                    "result-channel version mismatch: worker sent %r, "
                    "coordinator speaks %r"
                    % (message.get("version"), WIRE_VERSION)
                )
            kind = message.get("kind")
            if kind == "warm":
                self._warm_states[message["worker"]] = message
            elif kind == "lease":
                self._leases[message["worker"]] = message["shard_index"]
                self._leases_observed += 1
            elif kind == "error":
                raise RuntimeError(
                    "fleet worker %r failed:\n%s"
                    % (message.get("worker"), message.get("error"))
                )
            elif kind == "unit":
                self._leases.pop(message["worker"], None)
                units.append(message)
            else:
                raise RuntimeError("unknown channel frame kind %r" % (kind,))
        return units

    def _service_deaths(
        self,
        outstanding: Optional[Dict[int, ShardSpec]] = None,
        trace_path: Optional[str] = None,
    ) -> None:
        """Supervise every death :meth:`_receive` has detected.

        For each dead worker: join it for the exitcode, repair its
        trace stream and requeue the unit it held a lease on (if any),
        and respawn a replacement at the same index while the budget
        lasts.  The repair must precede both the requeue and the
        respawn — the re-executed unit and the replacement worker
        append to the very bytes being scrubbed.
        """
        while self._pending_deaths:
            index = self._pending_deaths.pop(0)
            process = self._processes[index]
            process.join(timeout=5.0)
            leased = self._leases.pop(index, None)
            crash: Dict[str, Any] = {
                "worker": index,
                "pid": process.pid,
                "exitcode": process.exitcode,
                "leased_unit": leased,
                "requeued": False,
                "respawned": False,
                "trace_repair": None,
            }
            if (leased is not None and outstanding is not None
                    and leased in outstanding):
                spec = outstanding[leased]
                if trace_path:
                    stream = worker_trace_path(
                        trace_path, index, self.workers
                    )
                    crash["trace_repair"] = sanitize_stream_file(
                        stream,
                        drop_journeys=[
                            journey_id_for_index(i)
                            for i in range(spec.agent_start, spec.agent_stop)
                        ],
                    )
                self._tasks.put((spec, trace_path))
                crash["requeued"] = True
            if self._respawns < self.respawn_budget:
                self._respawns += 1
                self._spawn_worker(index, initial=False)
                crash["respawned"] = True
            self._crashes.append(crash)

    def note_trace_losses(self, losses: Dict[str, int]) -> None:
        """Record merge-time torn-tail drops against this pool.

        :func:`run_fleet` merges the per-worker trace streams after
        ``run_units`` returns and reports any dropped tail lines here,
        so :meth:`supervision_report` of a persistent pool carries the
        full loss record, not just the crash record.
        """
        for path, count in losses.items():
            self._trace_losses[path] = (
                self._trace_losses.get(path, 0) + int(count)
            )

    def supervision_report(self) -> Dict[str, Any]:
        """Everything the pool has survived so far."""
        return {
            "respawn_budget": self.respawn_budget,
            "respawns": self._respawns,
            "crashes": [dict(crash) for crash in self._crashes],
            "degraded_units": self._degraded_units,
            "leases": self._leases_observed,
            "trace_losses": dict(self._trace_losses),
        }

    def _collect_warm_states(self, timeout: float) -> None:
        """Wait until every *live* worker's warm frame arrived (bounded).

        Dead, unreplaced slots are not waited on — their absence is the
        diagnostic, and blocking the per-worker report on a worker that
        can never answer would turn every degraded run into a timeout.
        """
        deadline = time.monotonic() + timeout
        while True:
            waiting = [
                index for index in range(self.workers)
                if self._channels[index] is not None
                and index not in self._warm_states
            ]
            if not waiting:
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self._receive(timeout=min(remaining, 0.25))
            self._service_deaths()

    # -- scheduling -------------------------------------------------------------

    def run_units(
        self,
        specs: Sequence[ShardSpec],
        trace_path: Optional[str] = None,
    ) -> Tuple[List[ShardResult], Dict[str, Any]]:
        """Execute units across the pool via the shared task queue.

        Every spec goes onto the queue at once; workers pull (steal)
        whatever is next as they go idle.  Blocks until all results are
        back and returns them (schedule order) together with the
        scheduling report: per-worker units / journeys /
        warmup-compute-serialize split, the supervision record
        (crashes survived, respawns, degraded units), and — when
        ``trace_path`` is set — the trace stream files the caller must
        merge.

        Worker deaths do not fail the run: leased units are requeued
        (after stream repair) and workers respawned while the budget
        lasts; if every worker is gone and the budget is spent, the
        coordinator finishes the remaining units in-process.  The
        returned results are bit-identical to a crash-free run.
        """
        if self._closed:
            raise ConfigurationError("worker pool is closed")
        by_index: Dict[int, ShardSpec] = {}
        for spec in specs:
            if spec.shard_index in by_index:
                raise ConfigurationError(
                    "duplicate unit index %d" % spec.shard_index
                )
            by_index[spec.shard_index] = spec
        trace_files: List[str] = []
        if trace_path:
            # Truncate the streams up front: workers append per unit,
            # and a reused pool must not leak a previous run's events.
            for index in range(self.workers):
                stream = worker_trace_path(trace_path, index, self.workers)
                with open(stream, "w", encoding="utf-8"):
                    pass
                trace_files.append(stream)
        for spec in specs:
            self._tasks.put((spec, trace_path))
        outstanding: Dict[int, ShardSpec] = dict(by_index)
        results: List[ShardResult] = []
        while outstanding:
            if not self._open_channels():
                # Every worker is dead and the respawn budget is spent:
                # degrade to in-process execution of whatever is left.
                results.extend(
                    self._run_degraded(outstanding, trace_path, trace_files)
                )
                break
            frames = self._receive(timeout=_POLL_SECONDS)
            self._service_deaths(outstanding, trace_path)
            for frame in frames:
                spec = by_index.get(frame.get("shard_index"))
                if spec is None:
                    raise RuntimeError(
                        "worker answered for unknown unit %r"
                        % (frame.get("shard_index"),)
                    )
                if spec.shard_index not in outstanding:
                    raise RuntimeError(
                        "duplicate result for unit %d — a requeued unit "
                        "was also completed by its original worker"
                        % spec.shard_index
                    )
                results.append(_unit_result_from_wire(frame, spec))
                del outstanding[spec.shard_index]
        report = {
            "mode": "work-stealing",
            "workers": self._per_worker_report(results),
            "trace_files": trace_files,
            "supervision": self.supervision_report(),
        }
        return results, report

    def _run_degraded(
        self,
        outstanding: Dict[int, ShardSpec],
        trace_path: Optional[str],
        trace_files: List[str],
    ) -> List[ShardResult]:
        """Finish a run with zero live workers, in the coordinator.

        The shared queue is drained (nobody is left to claim it) and
        every not-yet-completed unit executes in-process, streaming
        into a dedicated coordinator trace file.  Forward progress is
        guaranteed whatever the pool survived; only wall time is lost.
        """
        self._drain_tasks()
        stream: Optional[str] = None
        if trace_path:
            stream = "%s.worker-coordinator" % trace_path
            with open(stream, "w", encoding="utf-8"):
                pass
            trace_files.append(stream)
        results: List[ShardResult] = []
        for index in sorted(outstanding):
            results.append(
                execute_unit(outstanding[index], trace_path=stream,
                             append=True)
            )
        self._degraded_units += len(results)
        outstanding.clear()
        return results

    def _drain_tasks(self) -> None:
        try:
            while True:
                self._tasks.get_nowait()
        except (_queue.Empty, OSError, ValueError):
            pass

    def _per_worker_report(
        self, results: Sequence[ShardResult]
    ) -> List[Dict[str, Any]]:
        """Per-worker overhead split covering *all* workers (0-unit ones
        included — a stalled worker showing ``units: 0`` is the
        diagnostic, not a reporting gap)."""
        self._collect_warm_states(timeout=10.0)
        report = []
        for index in range(self.workers):
            warm = self._warm_states.get(index, {})
            mine = [r for r in results if r.worker_index == index]
            report.append({
                "worker": index,
                "pid": warm.get("pid") or (
                    mine[0].worker_pid if mine else None
                ),
                "units": len(mine),
                "journeys": sum(r.spec.num_agents for r in mine),
                "warmup_seconds": warm.get("warmup_seconds"),
                "compute_seconds": round(
                    sum(r.compute_seconds for r in mine), 6
                ),
                "compute_cpu_seconds": round(
                    sum(r.compute_cpu_seconds for r in mine), 6
                ),
                "serialize_seconds": round(
                    sum(r.serialize_seconds for r in mine), 6
                ),
            })
        return report

    # -- diagnostics ------------------------------------------------------------

    def warmup_report(self) -> Dict[str, Any]:
        """Deterministic per-worker warmup diagnostics.

        Every worker sends its warm state exactly once, as the first
        frame on its dedicated result channel — before it ever touches
        the shared task queue, so the probe cannot interleave with (or
        be starved by) real unit work.  The report is a census, not a
        sample: all ``workers`` entries are present, ordered by worker
        index.
        """
        self._collect_warm_states(timeout=120.0)
        if len(self._warm_states) < self.workers:
            raise RuntimeError(
                "only %d of %d workers reported their warm state"
                % (len(self._warm_states), self.workers)
            )
        workers = []
        for index in sorted(self._warm_states):
            state = dict(self._warm_states[index])
            state.pop("kind", None)
            state.pop("version", None)
            workers.append(state)
        return {
            "workers": workers,
            "workers_reporting": len(workers),
            "coordinator_warmup_seconds": self.warmup_seconds,
            "backend": self.backend or (
                workers[0].get("backend") if workers else None
            ),
            "table_cache_dir": self.table_cache_dir,
        }

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._processes:
            try:
                self._tasks.put(None)
            except (OSError, ValueError):
                break
        for process in self._processes:
            process.join(timeout=10.0)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for channel in self._channels:
            if channel is not None:
                channel.close()
        self._channels = [None] * self.workers
        # An abnormal shutdown (worker deaths, an error-frame raise)
        # can leave unclaimed units and our own sentinels on the queue
        # with no worker left to drain them; ``join_thread()`` would
        # then block on the feeder forever.  Drain what we can and
        # never wait on the feeder — the queue dies with the pool.
        self._drain_tasks()
        self._tasks.close()
        self._tasks.cancel_join_thread()

    def __enter__(self) -> "FleetWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _merge_verifier_stats(
    stats: Sequence[Dict[str, Any]],
) -> Optional[Dict[str, Any]]:
    if not stats:
        return None
    merged: Dict[str, Any] = {
        "verified": 0, "failed": 0, "batches": 0,
        "cache": {"hits": 0, "misses": 0, "entries": 0},
        "deferred_failures": 0,
        "shards": len(stats),
    }
    for entry in stats:
        merged["verified"] += entry.get("verified", 0)
        merged["failed"] += entry.get("failed", 0)
        merged["batches"] += entry.get("batches", 0)
        merged["deferred_failures"] += entry.get("deferred_failures", 0)
        cache = entry.get("cache", {})
        for key in ("hits", "misses", "entries"):
            merged["cache"][key] += cache.get(key, 0)
    # Keep the merged cache dict shape-compatible with
    # VerificationCache.stats() so reporting code never has to care
    # whether a result came out of one process or many.
    lookups = merged["cache"]["hits"] + merged["cache"]["misses"]
    merged["cache"]["hit_rate"] = (
        merged["cache"]["hits"] / lookups if lookups else 0.0
    )
    return merged


def merge_shard_results(
    config: FleetConfig,
    shard_results: Sequence[ShardResult],
    wall_seconds: float,
) -> FleetResult:
    """Fold unit outputs into one :class:`FleetResult`.

    The merged result carries the canonical outcome order (completion
    time, then journey id) — the same order a single-process engine
    produces — so its deterministic signature equals the unsharded
    run's, whatever schedule produced the inputs.  Units rebuild the
    topology independently; a mismatch in their malicious-host maps
    would mean the topology substream leaked shard-local state, so it
    is asserted rather than papered over.
    """
    if not shard_results:
        raise ConfigurationError("cannot merge zero shard results")
    ordered = sorted(shard_results, key=lambda r: r.spec.shard_index)
    covered = [(r.spec.agent_start, r.spec.agent_stop) for r in ordered]
    expected_start = 0
    for start, stop in covered:
        if start != expected_start:
            raise ConfigurationError(
                "shard ranges %r do not tile the agent range" % (covered,)
            )
        expected_start = stop
    if expected_start != config.num_agents:
        raise ConfigurationError(
            "shard ranges %r do not cover %d journeys"
            % (covered, config.num_agents)
        )

    malicious = dict(ordered[0].malicious_hosts)
    for result in ordered[1:]:
        if result.malicious_hosts != malicious:
            raise ConfigurationError(
                "shard %d rebuilt a different topology — the topology "
                "substream is no longer shard-independent"
                % result.spec.shard_index
            )

    outcomes: List[JourneyOutcome] = []
    deferred: List[Dict[str, Any]] = []
    for result in ordered:
        outcomes.extend(result.outcomes)
        deferred.extend(result.deferred_signature_failures)
    outcomes.sort(key=lambda o: (o.completed_at, o.journey_id))

    return FleetResult(
        config=config,
        outcomes=outcomes,
        malicious_hosts=malicious,
        virtual_makespan=max(r.virtual_makespan for r in ordered),
        events_processed=sum(r.events_processed for r in ordered),
        wall_seconds=wall_seconds,
        verifier_stats=_merge_verifier_stats(
            [r.verifier_stats for r in ordered if r.verifier_stats]
        ),
        deferred_signature_failures=deferred,
        shards=[
            dict(r.spec.describe(), wall_seconds=r.wall_seconds,
                 events_processed=r.events_processed,
                 campaign_attacked=r.campaign_attacked,
                 worker=r.worker_index)
            for r in ordered
        ],
    )


def _write_merged_trace(
    config: FleetConfig,
    trace_path: str,
    shard_files: Sequence[str],
) -> Dict[str, int]:
    """Merge unit/worker JSONL files into the canonical merged trace.

    Returns the torn-tail losses the tolerant merge absorbed
    (stream path → dropped line count) so callers can surface them in
    the run's ``worker_report`` instead of losing events silently.
    """
    losses: Dict[str, int] = {}
    writer = TraceWriter()
    writer.emit("fleet", config=config.to_canonical())
    for event in merge_trace_files(sorted(shard_files), losses=losses):
        writer.emit(event.pop("event"), **event)
    writer.write(trace_path, canonical_order=True)
    return losses


def _merged_telemetry(
    shard_results: Sequence[ShardResult],
    report: Dict[str, Any],
) -> Optional[Dict[str, Any]]:
    """Fold per-unit engine snapshots plus pool counters into one block.

    Unit snapshots travel sample-bearing over the result channel, so
    the merged histograms report fleet-wide percentiles; the pool's
    supervision record contributes the lease/respawn/crash/degraded
    counters.  Returns ``None`` when observability is disabled (no unit
    carried a snapshot).
    """
    from repro.obs import MetricsRegistry

    snapshots = [r.telemetry for r in shard_results if r.telemetry]
    if not snapshots:
        return None
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    registry.counter("pool.units").inc(len(shard_results))
    supervision = report.get("supervision")
    if supervision is not None:
        registry.counter("pool.leases").inc(
            int(supervision.get("leases") or 0)
        )
        registry.counter("pool.respawns").inc(
            int(supervision.get("respawns") or 0)
        )
        registry.counter("pool.crashes").inc(
            len(supervision.get("crashes") or ())
        )
        registry.counter("pool.degraded_units").inc(
            int(supervision.get("degraded_units") or 0)
        )
    for path, count in (report.get("trace_losses") or {}).items():
        registry.counter("trace.torn_tail_lines_dropped").inc(int(count))
    return registry.snapshot()


def run_fleet(
    config: FleetConfig,
    workers: int = 1,
    num_shards: Optional[int] = None,
    start_method: str = DEFAULT_START_METHOD,
    pool: Optional[FleetWorkerPool] = None,
    unit_size: Optional[int] = None,
) -> FleetResult:
    """Run a fleet across the work-stealing pool and merge the units.

    Parameters
    ----------
    config:
        The fleet description.  ``config.trace_path`` (if set) receives
        the merged JSONL trace; per-unit (sequential) or per-worker
        (pooled) stream files appear next to it.
    workers:
        Worker processes to use.  ``1`` executes the units sequentially
        in this process — same code path, no pool.
    num_shards:
        Pin the unit count exactly.  Defaults to the dynamic plan of
        :func:`plan_units` (several small units per worker).  The
        merged result is bit-identical for every ``(num_shards,
        workers, unit_size)`` choice, including the unsharded
        single-process engine.
    start_method:
        :mod:`multiprocessing` start method for the pool (ignored when
        ``pool`` is given).
    pool:
        Optional persistent :class:`FleetWorkerPool`.  Passing one
        amortizes worker spawn and crypto warm-up across many runs —
        the pool is left open for the caller to reuse.  Without it a
        throwaway pool is created per call.  A ``workers=1`` call stays
        single-process even when a pool is supplied, so serial
        baselines remain serial.
    unit_size:
        Journeys per unit (mutually exclusive with ``num_shards``).
        Smaller units steal better; larger units amortize per-unit
        setup.

    Returns
    -------
    FleetResult
        Merged result with per-unit metadata in ``result.shards`` and
        the scheduling/overhead report in ``result.worker_report``.
    """
    if workers < 1:
        raise ConfigurationError("workers must be positive")
    started = time.perf_counter()
    units = min(
        plan_units(config, workers, num_shards=num_shards,
                   unit_size=unit_size),
        config.num_agents,
    )
    specs = split_fleet(config, units)

    if workers == 1 or len(specs) == 1:
        shard_results = [run_shard(spec) for spec in specs]
        report: Dict[str, Any] = {
            "mode": "sequential",
            "workers": [{
                "worker": 0,
                "pid": os.getpid(),
                "units": len(shard_results),
                "journeys": sum(r.spec.num_agents for r in shard_results),
                "warmup_seconds": 0.0,
                "compute_seconds": round(
                    sum(r.compute_seconds for r in shard_results), 6
                ),
                "compute_cpu_seconds": round(
                    sum(r.compute_cpu_seconds for r in shard_results), 6
                ),
                "serialize_seconds": round(
                    sum(r.serialize_seconds for r in shard_results), 6
                ),
            }],
        }
        trace_files = [s.trace_path for s in specs if s.trace_path]
    else:
        active = pool
        own_pool: Optional[FleetWorkerPool] = None
        if active is None:
            own_pool = FleetWorkerPool(
                min(workers, len(specs)), start_method=start_method
            )
            active = own_pool
        try:
            unit_specs = [replace(s, trace_path=None) for s in specs]
            shard_results, report = active.run_units(
                unit_specs, trace_path=config.trace_path
            )
        finally:
            if own_pool is not None:
                own_pool.close()
        trace_files = report.pop("trace_files", [])

    merge_started = time.perf_counter()
    merged = merge_shard_results(
        config, shard_results, wall_seconds=time.perf_counter() - started
    )
    losses: Dict[str, int] = {}
    if config.trace_path:
        losses = _write_merged_trace(config, config.trace_path, trace_files)
    report["merge_seconds"] = round(time.perf_counter() - merge_started, 6)
    report["num_units"] = len(specs)
    report["trace_losses"] = losses
    if losses:
        supervision = report.get("supervision")
        if supervision is not None:
            supervision["trace_losses"] = dict(losses)
        if pool is not None:
            pool.note_trace_losses(losses)
    report["telemetry"] = _merged_telemetry(shard_results, report)
    merged.worker_report = report
    return merged

"""The paper's generic example agent (Section 6.2).

"The agent can be parametrized by two values.  The first parameter
determines a 'cycle' value, where every cycle means an integer summation
of 1000 values.  This summation cycle emulates the computational parts
of an agent. ... The second parameter determines the number of input
elements to the agent.  Each input element consisted of a 10 byte
string."

The measurement grid of Tables 1 and 2 uses cycles ∈ {1, 10000} and
input elements ∈ {1, 100}; the agent migrates along a path of three
hosts where the first and last are trusted and the middle one is
untrusted.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.agents.agent import MobileAgent, register_agent
from repro.agents.context import ExecutionContext
from repro.core.requesters import (
    InitialStateRequester,
    InputRequester,
    ResultingStateRequester,
)

__all__ = [
    "GenericAgent",
    "ProtectedGenericAgent",
    "INPUT_FEED_SERVICE",
    "make_input_elements",
]

#: Name of the host service that feeds input elements to the agent.
INPUT_FEED_SERVICE = "input-feed"

#: Number of values summed per cycle (fixed by the paper).
VALUES_PER_CYCLE = 1000


def make_input_elements(count: int, width: int = 10) -> tuple:
    """Build ``count`` deterministic input strings of ``width`` bytes.

    These are the "10 byte string" input elements of the paper's
    measurement; hosts expose them through an
    :class:`repro.platform.resources.InputFeedService`.
    """
    return tuple(("elem%06d" % index)[:width].ljust(width, "x")
                 for index in range(count))


@register_agent
class GenericAgent(MobileAgent):
    """Computation cycles plus input consumption, once per host.

    Data-state variables
    --------------------
    ``cycles``
        Number of summation cycles per session.
    ``input_elements``
        Number of input elements fetched per session.
    ``use_fast_cycles``
        When true, each cycle is computed with a C-level ``sum`` instead
        of an interpreted loop — the stand-in for the paper's remark
        that a just-in-time compiler shrinks the cycle cost dramatically.
    ``sum``
        Running total over all cycles on all visited hosts.
    ``inputs_received``
        Every input element received so far, in order.
    ``visits``
        Number of sessions executed so far.
    """

    code_name = "generic-agent"

    def __init__(self, initial_data: Optional[Dict[str, Any]] = None,
                 owner: str = "owner", agent_id: Optional[str] = None) -> None:
        super().__init__(initial_data, owner=owner, agent_id=agent_id)
        self.data.set_default("cycles", 1)
        self.data.set_default("input_elements", 1)
        self.data.set_default("use_fast_cycles", False)
        self.data.set_default("sum", 0)
        self.data.set_default("inputs_received", [])
        self.data.set_default("visits", 0)

    @classmethod
    def configured(cls, cycles: int, input_elements: int,
                   use_fast_cycles: bool = False, owner: str = "owner") -> "GenericAgent":
        """Build an agent for one cell of the measurement grid."""
        return cls(
            {
                "cycles": int(cycles),
                "input_elements": int(input_elements),
                "use_fast_cycles": bool(use_fast_cycles),
            },
            owner=owner,
        )

    # -- behaviour -----------------------------------------------------------------

    def run(self, context: ExecutionContext) -> None:
        total = self.data["sum"]
        cycles = self.data["cycles"]
        fast = self.data["use_fast_cycles"]

        with context.metrics.measure("cycle"):
            if fast:
                # "JIT" mode: the same arithmetic, executed by the C runtime.
                for _cycle in range(cycles):
                    total += sum(range(VALUES_PER_CYCLE))
            else:
                for _cycle in range(cycles):
                    for value in range(VALUES_PER_CYCLE):
                        total += value
        self.data["sum"] = total

        received = list(self.data["inputs_received"])
        for index in range(self.data["input_elements"]):
            element = context.query_service(
                INPUT_FEED_SERVICE, "element-%d" % index
            )
            received.append(element)
        self.data["inputs_received"] = received

        self.data["visits"] = self.data["visits"] + 1
        self.execution["finished"] = context.is_final_hop


@register_agent
class ProtectedGenericAgent(GenericAgent, InitialStateRequester,
                            ResultingStateRequester, InputRequester):
    """The generic agent with requester interfaces declared.

    This is the "second agent ... based on the first one, but protected"
    of Section 6.2: functionally identical, but it declares the
    reference data the checking mechanism of the example protocol needs
    (initial state, resulting state, and session input).
    """

    code_name = "protected-generic-agent"

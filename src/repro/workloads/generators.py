"""Scenario builders and workload generators.

The benchmark harness, the examples, and the integration tests all need
the same kind of fixture: a registry of hosts (some trusted, at most one
malicious), a shared key store, an agent, and an itinerary.  The
builders in this module construct those fixtures for the three
workloads:

* :func:`build_generic_scenario` — the 3-host path of the paper's
  measurement (trusted, untrusted, trusted) running the generic agent;
* :func:`build_shopping_scenario` — a home host plus N shops running the
  shopping agent, with an optional malicious shop;
* :func:`build_survey_scenario` — a home host plus N participant hosts
  running the survey agent with (optionally signed) partner messages.

:func:`paper_parameter_grid` returns the four (cycles × inputs) cells of
Tables 1 and 2 in the paper's row order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.agents.itinerary import Itinerary
from repro.attacks.injector import AttackInjector
from repro.crypto.keys import Identity, KeyStore
from repro.crypto.signing import Signer
from repro.platform.host import Host
from repro.platform.malicious import MaliciousHost
from repro.platform.registry import AgentSystem, HostRegistry
from repro.platform.resources import InputFeedService, PriceQuoteService
from repro.workloads.generic_agent import (
    GenericAgent,
    INPUT_FEED_SERVICE,
    ProtectedGenericAgent,
    make_input_elements,
)
from repro.workloads.shopping import QUOTE_SERVICE, ShoppingAgent
from repro.workloads.survey import SURVEY_MAILBOX, SurveyAgent

__all__ = [
    "Scenario",
    "paper_parameter_grid",
    "build_generic_scenario",
    "build_shopping_scenario",
    "build_survey_scenario",
]


@dataclass
class Scenario:
    """A ready-to-run simulation fixture."""

    registry: HostRegistry
    system: AgentSystem
    itinerary: Itinerary
    keystore: KeyStore
    hosts: Dict[str, Host] = field(default_factory=dict)
    metrics: Optional[Any] = None

    def host(self, name: str) -> Host:
        """Convenience accessor for a host by name."""
        return self.registry.get(name)

    @property
    def trusted_host_names(self) -> Tuple[str, ...]:
        """Names of all trusted hosts in the scenario."""
        return tuple(sorted(
            name for name, host in self.hosts.items() if host.trusted
        ))


def paper_parameter_grid() -> List[Dict[str, Any]]:
    """The four agent configurations of Tables 1 and 2, in paper order."""
    return [
        {"label": "1 input, 1 cycle", "inputs": 1, "cycles": 1},
        {"label": "100 inputs, 1 cycle", "inputs": 100, "cycles": 1},
        {"label": "1 input, 10000 cycles", "inputs": 1, "cycles": 10000},
        {"label": "100 inputs, 10000 cycles", "inputs": 100, "cycles": 10000},
    ]


def _make_host(
    name: str,
    keystore: KeyStore,
    trusted: bool,
    metrics: Optional[Any],
    injectors: Optional[Iterable[AttackInjector]] = None,
    collaborators: Optional[Iterable[str]] = None,
) -> Host:
    """Create an honest or malicious host sharing ``keystore``."""
    if injectors or collaborators:
        return MaliciousHost(
            name,
            keystore=keystore,
            trusted=trusted,
            metrics=metrics,
            injectors=list(injectors or []),
            collaborators=list(collaborators or []),
        )
    return Host(name, keystore=keystore, trusted=trusted, metrics=metrics)


def build_generic_scenario(
    cycles: int = 1,
    input_elements: int = 1,
    protected_agent: bool = False,
    use_fast_cycles: bool = False,
    metrics: Optional[Any] = None,
    middle_host_injectors: Optional[Iterable[AttackInjector]] = None,
    middle_host_collaborators: Optional[Iterable[str]] = None,
    owner: str = "owner",
) -> Tuple[Scenario, GenericAgent]:
    """The paper's measurement scenario: trusted → untrusted → trusted.

    Parameters
    ----------
    cycles / input_elements:
        The two agent parameters of the measurement grid.
    protected_agent:
        Instantiate :class:`ProtectedGenericAgent` (declaring requester
        interfaces) instead of the plain generic agent.
    use_fast_cycles:
        Enable the "JIT" cycle implementation.
    metrics:
        Timing collector shared by all hosts (and thus all sessions).
    middle_host_injectors / middle_host_collaborators:
        Turn the untrusted middle host into a malicious host mounting
        the given attacks / collaborating with the named hosts.
    """
    keystore = KeyStore()
    registry = HostRegistry()
    hosts: Dict[str, Host] = {}

    home = _make_host("home", keystore, trusted=True, metrics=metrics)
    vendor = _make_host(
        "vendor", keystore, trusted=False, metrics=metrics,
        injectors=middle_host_injectors,
        collaborators=middle_host_collaborators,
    )
    archive = _make_host("archive", keystore, trusted=True, metrics=metrics)

    feed_elements = make_input_elements(max(int(input_elements), 1))
    for host in (home, vendor, archive):
        host.add_service(InputFeedService(INPUT_FEED_SERVICE, feed_elements))
        registry.add(host)
        hosts[host.name] = host

    itinerary = Itinerary(hosts=["home", "vendor", "archive"])
    system = AgentSystem(registry, sign_transfers=True)
    scenario = Scenario(
        registry=registry,
        system=system,
        itinerary=itinerary,
        keystore=keystore,
        hosts=hosts,
        metrics=metrics,
    )

    agent_class = ProtectedGenericAgent if protected_agent else GenericAgent
    agent = agent_class.configured(
        cycles=cycles,
        input_elements=input_elements,
        use_fast_cycles=use_fast_cycles,
        owner=owner,
    )
    return scenario, agent


def build_shopping_scenario(
    num_shops: int = 3,
    products: Sequence[str] = ("flight",),
    budget: float = 1000.0,
    prices: Optional[Dict[str, Dict[str, float]]] = None,
    malicious_shop: Optional[int] = None,
    injectors: Optional[Iterable[AttackInjector]] = None,
    collaborating_next_shop: bool = False,
    metrics: Optional[Any] = None,
    owner: str = "owner",
) -> Tuple[Scenario, ShoppingAgent]:
    """Home host plus ``num_shops`` shops; optionally one malicious shop.

    Parameters
    ----------
    prices:
        Optional ``{host_name: {product: price}}`` overrides; otherwise
        the deterministic per-host pseudo prices of
        :class:`~repro.platform.resources.PriceQuoteService` apply.
    malicious_shop:
        1-based index of the shop to make malicious (``None`` for an
        all-honest scenario).
    injectors:
        Attacks mounted on the malicious shop.
    collaborating_next_shop:
        Make the shop *after* the malicious one collaborate with it
        (i.e. skip checking it) — the collaboration attack the example
        protocol cannot detect.
    """
    if malicious_shop is not None and not 1 <= malicious_shop <= num_shops:
        raise ValueError("malicious_shop must be between 1 and num_shops")

    keystore = KeyStore()
    registry = HostRegistry()
    hosts: Dict[str, Host] = {}

    home = _make_host("home", keystore, trusted=True, metrics=metrics)
    # The home host offers the quote service so the agent code runs
    # uniformly on every hop, but it quotes nothing (None), so no home
    # "offer" ever enters the agent's best-offer table.
    home.add_service(PriceQuoteService(
        QUOTE_SERVICE, "home",
        catalog={product: None for product in products},
    ))
    registry.add(home)
    hosts["home"] = home

    shop_names = ["shop-%d" % index for index in range(1, num_shops + 1)]
    malicious_name = (
        shop_names[malicious_shop - 1] if malicious_shop is not None else None
    )

    for index, name in enumerate(shop_names, start=1):
        is_malicious = malicious_shop is not None and index == malicious_shop
        collaborators = None
        if (collaborating_next_shop and malicious_shop is not None
                and index == malicious_shop + 1):
            collaborators = [malicious_name]
        shop = _make_host(
            name, keystore, trusted=False, metrics=metrics,
            injectors=injectors if is_malicious else None,
            collaborators=collaborators,
        )
        shop.add_service(PriceQuoteService(
            QUOTE_SERVICE, name, catalog=(prices or {}).get(name),
        ))
        registry.add(shop)
        hosts[name] = shop

    itinerary = Itinerary(hosts=["home"] + shop_names + ["home"])
    system = AgentSystem(registry, sign_transfers=True)
    scenario = Scenario(
        registry=registry,
        system=system,
        itinerary=itinerary,
        keystore=keystore,
        hosts=hosts,
        metrics=metrics,
    )

    agent = ShoppingAgent.for_products(list(products), budget=budget, owner=owner)
    return scenario, agent


def build_survey_scenario(
    num_participants: int = 3,
    answers: Optional[Sequence[float]] = None,
    sign_answers: bool = True,
    metrics: Optional[Any] = None,
    owner: str = "owner",
) -> Tuple[Scenario, SurveyAgent]:
    """Home host plus participant hosts, each with one deposited answer.

    Participants are independent principals: their identities are
    registered in the shared key store so that the partner-confirmation
    checker can later verify the recorded answers.
    """
    keystore = KeyStore()
    registry = HostRegistry()
    hosts: Dict[str, Host] = {}

    home = _make_host("home", keystore, trusted=True, metrics=metrics)
    registry.add(home)
    hosts["home"] = home

    participant_hosts = []
    values = list(answers or [])
    for index in range(1, num_participants + 1):
        name = "participant-host-%d" % index
        host = _make_host(name, keystore, trusted=False, metrics=metrics)
        host.set_host_data("survey_participant", True)

        participant = Identity.generate("participant-%d" % index)
        keystore.register_identity(participant)
        value = values[index - 1] if index - 1 < len(values) else float(index * 2)
        signer = Signer(participant, keystore) if sign_answers else None
        host.message_board.deposit(
            sender=participant.name,
            mailbox=SURVEY_MAILBOX,
            body=value,
            signer=signer,
        )

        registry.add(host)
        hosts[name] = host
        participant_hosts.append(name)

    itinerary = Itinerary(hosts=["home"] + participant_hosts + ["home"])
    system = AgentSystem(registry, sign_transfers=True)
    scenario = Scenario(
        registry=registry,
        system=system,
        itinerary=itinerary,
        keystore=keystore,
        hosts=hosts,
        metrics=metrics,
    )
    agent = SurveyAgent(owner=owner)
    return scenario, agent

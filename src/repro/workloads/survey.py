"""Survey / data-collection workload with partner communication.

This workload exercises the part of the input model the generic and
shopping agents do not touch: "communication with partners residing on
other hosts".  A :class:`SurveyAgent` visits one host per survey
participant, receives the participant's (optionally signed) answer as a
partner message, and aggregates statistics.

With signed answers the Section 4.3 extension becomes testable: the
:func:`repro.core.checkers.arbitrary.partner_confirmation_program`
checker can confirm that every recorded answer really came from the
claimed participant, which closes the "host lies about input" gap for
this workload.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.agents.agent import MobileAgent, register_agent
from repro.agents.context import ExecutionContext
from repro.core.requesters import (
    ExecutionLogRequester,
    InitialStateRequester,
    InputRequester,
    ResultingStateRequester,
)

__all__ = ["SurveyAgent", "SURVEY_MAILBOX"]

#: Mailbox on each host from which the agent takes the participant answer.
SURVEY_MAILBOX = "survey-answers"


@register_agent
class SurveyAgent(MobileAgent, InitialStateRequester, ResultingStateRequester,
                  InputRequester, ExecutionLogRequester):
    """Collects one numeric answer per host and keeps running statistics.

    Data-state variables
    --------------------
    ``question``
        The survey question (carried for documentation only).
    ``answers``
        ``{host: {"sender": str, "value": float, "signed": bool}}``.
    ``answer_count`` / ``answer_sum`` / ``answer_min`` / ``answer_max``
        Aggregates over the collected answers.
    """

    code_name = "survey-agent"

    def __init__(self, initial_data: Optional[Dict[str, Any]] = None,
                 owner: str = "owner", agent_id: Optional[str] = None) -> None:
        super().__init__(initial_data, owner=owner, agent_id=agent_id)
        self.data.set_default("question", "How many agents does your host run?")
        self.data.set_default("answers", {})
        self.data.set_default("answer_count", 0)
        self.data.set_default("answer_sum", 0.0)
        self.data.set_default("answer_min", None)
        self.data.set_default("answer_max", None)

    # -- behaviour -----------------------------------------------------------------

    def run(self, context: ExecutionContext) -> None:
        # Hosts that host a participant expose the ``survey_participant``
        # flag as host data; the home host (first and last hop) does not,
        # and the agent simply passes through it.
        if not context.get_input("survey_participant"):
            self.execution["finished"] = context.is_final_hop
            return

        message = context.receive_message(SURVEY_MAILBOX)
        answers = dict(self.data["answers"])

        if isinstance(message, dict):
            body = message.get("body")
            sender = message.get("sender", "unknown")
            signed = message.get("signature_envelope") is not None
        else:  # defensive: a malformed mailbox value still gets recorded
            body, sender, signed = message, "unknown", False

        value = float(body) if isinstance(body, (int, float)) else 0.0
        answers[context.host_name] = {
            "sender": sender,
            "value": value,
            "signed": signed,
        }
        self.data["answers"] = answers

        count = self.data["answer_count"] + 1
        total = self.data["answer_sum"] + value
        minimum = self.data["answer_min"]
        maximum = self.data["answer_max"]
        self.data["answer_count"] = count
        self.data["answer_sum"] = round(total, 6)
        self.data["answer_min"] = value if minimum is None else min(minimum, value)
        self.data["answer_max"] = value if maximum is None else max(maximum, value)

        self.execution["finished"] = context.is_final_hop

    # -- derived values ----------------------------------------------------------------

    def average_answer(self) -> Optional[float]:
        """Mean of the collected answers, or ``None`` before any answer."""
        if self.data["answer_count"] == 0:
            return None
        return self.data["answer_sum"] / self.data["answer_count"]

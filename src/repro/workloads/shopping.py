"""Shopping / price-comparison workload.

The introduction of the paper motivates agent protection with electronic
commerce: an agent visits several vendors, collects price quotes,
removes all but the lowest, and commits to a purchase — and "the host
may modify the execution and/or the prices at its will" if nothing
protects the agent.  This workload reproduces that scenario:

* :class:`ShoppingAgent` visits one shop per hop, asks the host's
  ``shop`` service for a quote per product, keeps the running best offer
  and, on the final hop, asks the host to place the order;
* :func:`shopping_rules` states the application-level postconditions a
  state-appraisal / minimal policy can check (budget respected, best
  price among the recorded quotes);
* the detection benchmarks mount the catalogue attacks (price tampering,
  quote lying, ...) on one of the shop hosts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.agents.agent import MobileAgent, register_agent
from repro.agents.context import ExecutionContext
from repro.core.checkers.rules import Rule, var
from repro.core.requesters import (
    InitialStateRequester,
    InputRequester,
    ResultingStateRequester,
)

__all__ = ["ShoppingAgent", "QUOTE_SERVICE", "shopping_rules"]

#: Name of the host service that quotes prices.
QUOTE_SERVICE = "shop"


@register_agent
class ShoppingAgent(MobileAgent, InitialStateRequester, ResultingStateRequester,
                    InputRequester):
    """Collects quotes across hosts and orders from the cheapest one.

    Data-state variables
    --------------------
    ``products``
        Names of the products to price.
    ``budget``
        Maximum total the owner allows the agent to commit to.
    ``quotes``
        ``{product: {host: price}}`` — every quote ever received.
    ``best_offers``
        ``{product: {"price": float, "host": str}}`` — running minimum.
    ``cheapest_total``
        Sum of the current best prices over all products.
    ``order_placed``
        Whether the final-hop purchase action was issued.
    ``order``
        The order summary the agent committed to (final hop only).
    """

    code_name = "shopping-agent"

    def __init__(self, initial_data: Optional[Dict[str, Any]] = None,
                 owner: str = "owner", agent_id: Optional[str] = None) -> None:
        super().__init__(initial_data, owner=owner, agent_id=agent_id)
        self.data.set_default("products", ["flight"])
        self.data.set_default("budget", 1000.0)
        self.data.set_default("quotes", {})
        self.data.set_default("best_offers", {})
        self.data.set_default("cheapest_total", 0.0)
        self.data.set_default("order_placed", False)
        self.data.set_default("order", None)

    @classmethod
    def for_products(cls, products: List[str], budget: float = 1000.0,
                     owner: str = "owner") -> "ShoppingAgent":
        """Build a shopping agent for the given product list."""
        return cls({"products": list(products), "budget": float(budget)},
                   owner=owner)

    # -- behaviour -----------------------------------------------------------------

    def run(self, context: ExecutionContext) -> None:
        products = self.data["products"]
        quotes: Dict[str, Dict[str, float]] = dict(self.data["quotes"])
        best: Dict[str, Dict[str, Any]] = dict(self.data["best_offers"])

        for product in products:
            price = context.query_service(QUOTE_SERVICE, product)
            if price is None:
                continue
            price = float(price)
            product_quotes = dict(quotes.get(product, {}))
            product_quotes[context.host_name] = price
            quotes[product] = product_quotes

            current_best = best.get(product)
            if current_best is None or price < current_best["price"]:
                best[product] = {"price": price, "host": context.host_name}

        self.data["quotes"] = quotes
        self.data["best_offers"] = best
        self.data["cheapest_total"] = round(
            sum(offer["price"] for offer in best.values()), 2
        )

        if context.is_final_hop and not self.data["order_placed"]:
            order = {
                "items": {
                    product: dict(offer) for product, offer in sorted(best.items())
                },
                "total": self.data["cheapest_total"],
                "within_budget": self.data["cheapest_total"] <= self.data["budget"],
            }
            if order["within_budget"]:
                context.act("purchase", order)
                self.data["order_placed"] = True
            self.data["order"] = order

        self.execution["finished"] = context.is_final_hop


def shopping_rules(products: Optional[List[str]] = None) -> List[Rule]:
    """Application-level rules for state appraisal / minimal policies.

    The rules only see the agent state (no input), so they can express
    budget conservation and internal consistency, but — as the paper's
    lowest-price example points out — they cannot tell whether the
    recorded best price really was the lowest quote offered.
    """
    rules = [
        Rule(
            "within-budget",
            var("cheapest_total") <= var("budget"),
            "the committed total must not exceed the owner's budget",
        ),
        Rule(
            "budget-unchanged",
            var("budget") == var("initial.budget"),
            "no host may raise or lower the owner's budget",
        ),
        Rule(
            "total-non-negative",
            var("cheapest_total") >= 0,
            "a negative total indicates a corrupted state",
        ),
    ]
    return rules

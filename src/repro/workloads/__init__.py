"""Workloads: the paper's generic agent plus application-level agents."""

from repro.workloads.generators import (
    Scenario,
    build_generic_scenario,
    build_shopping_scenario,
    build_survey_scenario,
    paper_parameter_grid,
)
from repro.workloads.generic_agent import (
    GenericAgent,
    INPUT_FEED_SERVICE,
    ProtectedGenericAgent,
    make_input_elements,
)
from repro.workloads.shopping import QUOTE_SERVICE, ShoppingAgent, shopping_rules
from repro.workloads.survey import SURVEY_MAILBOX, SurveyAgent

__all__ = [
    "Scenario",
    "build_generic_scenario",
    "build_shopping_scenario",
    "build_survey_scenario",
    "paper_parameter_grid",
    "GenericAgent",
    "INPUT_FEED_SERVICE",
    "ProtectedGenericAgent",
    "make_input_elements",
    "QUOTE_SERVICE",
    "ShoppingAgent",
    "shopping_rules",
    "SURVEY_MAILBOX",
    "SurveyAgent",
]
